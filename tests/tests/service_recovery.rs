//! Service-mode crash recovery, end to end.
//!
//! The property under test is the invariant the whole service design
//! hangs on (DESIGN.md, "Service mode & write-ahead journal"): commands
//! are validated and stamped *before* they are journalled and the
//! platform below is deterministic, therefore replaying a journal's
//! longest valid frame prefix byte-reproduces the transition log of a
//! pristine run over that same prefix — no matter where a crash tore
//! the file.
//!
//! Two layers are exercised:
//!
//! * engine + journal — xorshift-driven command scripts are applied
//!   through a live [`Engine`], then the finished journal is truncated
//!   at random byte offsets and recovered; every cut must yield the
//!   longest valid prefix, flag any torn tail loudly, and replay to
//!   the exact transition log the pristine run had at that prefix;
//! * daemon + socket — concurrent [`DaemonClient`]s drive a live
//!   [`Daemon`], which is then stopped and restarted on the same
//!   journal; the `transitions` query must return byte-identical text
//!   before and after, and the sequence numbering must continue.

use std::path::PathBuf;
use std::sync::mpsc;

use tacc_core::wire::{self, Json};
use tacc_core::{Command, PlatformConfig};
use tacc_taccd::{
    ClockMode, Daemon, DaemonConfig, Engine, EngineConfig, Journal, JournalError, Msg, Query, Reply,
};
use tacc_tcloud::{DaemonClient, RetryPolicy};
use tacc_workload::{GroupId, JobId, TaskSchema};

// ---------------------------------------------------------------------
// xorshift64* script generator
// ---------------------------------------------------------------------

/// The issue-mandated generator: xorshift64*, hand-rolled so the test
/// is reproducible from a single `u64` seed with no external RNG.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1) // xorshift state must be nonzero
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random command script. Some entries are deliberately invalid
/// (cancelling unknown jobs, draining out-of-range nodes): the engine
/// must reject those *without* journalling them, so the journal holds
/// exactly the accepted subsequence.
fn script(rng: &mut XorShift, len: usize) -> Vec<Command> {
    let mut commands = Vec::with_capacity(len);
    for i in 0..len {
        let command = match rng.below(10) {
            0..=3 => Command::Submit {
                schema: TaskSchema::builder(
                    &format!("prop-{i}-{:x}", rng.below(0xFFFF)),
                    GroupId::from_index(rng.below(8) as usize),
                )
                .est_duration_secs(60.0 + rng.below(600) as f64)
                .build()
                .expect("generated schema is valid"),
                service_secs: 30.0 + rng.below(900) as f64,
            },
            4..=5 => Command::Advance {
                secs: 1.0 + rng.below(120) as f64,
            },
            6 => Command::Cancel {
                job: JobId::from_value(rng.below(len as u64)),
            },
            7 => Command::Reserve {
                gpus: 1 + rng.below(64) as u32,
                from_secs: rng.below(5_000) as f64,
                until_secs: 5_000.0 + rng.below(5_000) as f64,
            },
            8 => Command::Drain {
                node: rng.below(40) as u32, // default cluster has 32 nodes
            },
            _ => Command::Undrain {
                node: rng.below(40) as u32,
            },
        };
        commands.push(command);
    }
    commands
}

// ---------------------------------------------------------------------
// Engine plumbing (the same channel protocol the daemon uses)
// ---------------------------------------------------------------------

fn temp(tag: &str, unique: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tacc-{tag}-{unique}-{}", std::process::id()));
    p
}

fn spawn_engine(journal: PathBuf) -> (mpsc::Sender<Msg>, std::thread::JoinHandle<()>) {
    let (engine, _) = Engine::open(EngineConfig {
        journal,
        platform: PlatformConfig::default(),
        clock: ClockMode::Logical,
    })
    .expect("engine opens");
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || engine.run(&rx));
    (tx, handle)
}

fn mutate(tx: &mpsc::Sender<Msg>, command: Command) -> Reply {
    let (rtx, rrx) = mpsc::channel();
    tx.send(Msg::Mutate {
        command,
        reply: rtx,
    })
    .expect("engine alive");
    rrx.recv().expect("reply arrives")
}

fn transitions(tx: &mpsc::Sender<Msg>) -> String {
    let (rtx, rrx) = mpsc::channel();
    tx.send(Msg::Query {
        query: Query::Transitions,
        reply: rtx,
    })
    .expect("engine alive");
    match rrx.recv().expect("reply arrives") {
        Reply::Ok(Json::Str(text)) => text,
        other => panic!("transitions query failed: {other:?}"),
    }
}

fn stop_engine(tx: mpsc::Sender<Msg>, handle: std::thread::JoinHandle<()>) {
    tx.send(Msg::Stop).expect("engine alive");
    handle.join().expect("engine thread exits");
}

// ---------------------------------------------------------------------
// The crash-recovery property
// ---------------------------------------------------------------------

#[test]
fn torn_journals_recover_the_longest_valid_prefix_and_byte_reproduce() {
    let platform_seed = PlatformConfig::default().seed;
    for seed in [11u64, 29, 4242, 0x00C0_FFEE] {
        let mut rng = XorShift::new(seed);
        let pristine = temp("recovery-pristine", &format!("{seed}"));
        std::fs::remove_file(&pristine).ok();

        // Pristine run: apply the script through a live engine,
        // snapshotting the transition log after every *accepted*
        // command. `reference[r]` is the exact log a daemon must
        // reproduce when its journal recovers r command frames.
        let script_len = 24 + rng.below(16) as usize;
        let commands = script(&mut rng, script_len);
        let (tx, handle) = spawn_engine(pristine.clone());
        let mut reference = vec![transitions(&tx)];
        for command in &commands {
            if matches!(mutate(&tx, command.clone()), Reply::Ok(_)) {
                reference.push(transitions(&tx));
            }
        }
        stop_engine(tx, handle);
        let accepted = reference.len() - 1;
        assert!(
            accepted >= 4,
            "seed {seed}: script too timid, only {accepted} commands accepted"
        );

        // Frame boundaries of the finished journal: `boundaries[r]` is
        // the byte length of a journal holding exactly r command frames.
        let bytes = std::fs::read(&pristine).expect("journal bytes");
        let (_, genesis_len) = wire::decode_frame(&bytes).expect("genesis frame decodes");
        let mut boundaries = vec![genesis_len];
        while *boundaries.last().expect("nonempty") < bytes.len() {
            let offset = *boundaries.last().expect("nonempty");
            let (_, used) = wire::decode_frame(&bytes[offset..]).expect("clean journal decodes");
            boundaries.push(offset + used);
        }
        assert_eq!(
            boundaries.len() - 1,
            accepted,
            "seed {seed}: exactly one frame per accepted command"
        );

        for trial in 0..10u64 {
            let cut = rng.below(bytes.len() as u64 + 1) as usize;
            let copy = temp("recovery-cut", &format!("{seed}-{trial}"));
            std::fs::write(&copy, &bytes[..cut]).expect("truncated copy written");

            if cut < genesis_len {
                // The genesis frame itself is torn: there is no valid
                // prefix to keep, and recovery must refuse loudly
                // rather than improvise an empty journal.
                match Journal::recover(&copy, platform_seed) {
                    Err(JournalError::BadGenesis(_)) => {}
                    other => panic!("seed {seed} cut {cut}: expected BadGenesis, got {other:?}"),
                }
                std::fs::remove_file(&copy).ok();
                continue;
            }

            // Longest valid prefix: every whole frame before the cut.
            let full = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            let (journal, records, report) =
                Journal::recover(&copy, platform_seed).expect("recovery succeeds past genesis");
            drop(journal);
            assert_eq!(
                records.len(),
                full,
                "seed {seed} cut {cut}: recovered record count"
            );
            assert_eq!(report.frames, full as u64);
            assert_eq!(report.valid_bytes, boundaries[full] as u64);
            assert_eq!(report.torn_bytes, (cut - boundaries[full]) as u64);
            assert_eq!(
                report.torn(),
                cut != boundaries[full],
                "seed {seed} cut {cut}: a mid-frame cut must be reported torn"
            );
            if report.torn() {
                assert!(
                    report.torn_reason.is_some(),
                    "seed {seed} cut {cut}: torn tails must carry a reason"
                );
            }
            assert_eq!(
                std::fs::metadata(&copy).expect("metadata").len(),
                boundaries[full] as u64,
                "seed {seed} cut {cut}: the torn tail must be truncated away"
            );

            // Replay byte-reproduces the pristine run at that prefix,
            // and the recovered engine keeps numbering where it left off.
            let (tx, handle) = spawn_engine(copy.clone());
            assert_eq!(
                transitions(&tx),
                reference[full],
                "seed {seed} cut {cut}: replayed transition log diverged"
            );
            let Reply::Ok(ack) = mutate(&tx, Command::Advance { secs: 1.0 }) else {
                panic!("seed {seed} cut {cut}: recovered engine refused new work");
            };
            assert_eq!(ack.get("seq").and_then(Json::as_u64), Some(full as u64));
            stop_engine(tx, handle);
            std::fs::remove_file(&copy).ok();
        }
        std::fs::remove_file(&pristine).ok();
    }
}

// ---------------------------------------------------------------------
// Daemon-level restart over a live socket
// ---------------------------------------------------------------------

fn live_submit(client: usize, request: usize) -> Command {
    Command::Submit {
        schema: TaskSchema::builder(
            &format!("live-c{client}-r{request}"),
            GroupId::from_index(0),
        )
        .est_duration_secs(120.0)
        .build()
        .expect("valid schema"),
        service_secs: 90.0,
    }
}

fn text_query(conn: &mut DaemonClient, kind: &str) -> String {
    match conn.query(kind, None).expect("query answered") {
        Json::Str(text) => text,
        other => panic!("{kind} query returned non-text payload: {other:?}"),
    }
}

#[test]
fn daemon_restart_over_a_live_socket_byte_reproduces_the_transition_log() {
    let socket = temp("svc-restart-sock", "a");
    let journal = temp("svc-restart-journal", "a");
    std::fs::remove_file(&socket).ok();
    std::fs::remove_file(&journal).ok();
    let config = DaemonConfig {
        socket: socket.clone(),
        engine: EngineConfig {
            journal: journal.clone(),
            platform: PlatformConfig::default(),
            clock: ClockMode::Logical,
        },
    };

    let (daemon, report) = Daemon::start(config.clone()).expect("daemon starts");
    assert!(report.is_none(), "a fresh journal has nothing to recover");

    // Concurrent clients, each on its own connection.
    let clients = 4usize;
    let per_client = 8usize;
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut conn = DaemonClient::connect(&socket, RetryPolicy::default())
                    .expect("client connects");
                for request in 0..per_client {
                    conn.mutate(&live_submit(client, request))
                        .expect("submit acknowledged");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread exits cleanly");
    }

    // Mix in the other command families, then snapshot the log.
    let mut conn = DaemonClient::connect(&socket, RetryPolicy::none()).expect("connects");
    conn.mutate(&Command::Reserve {
        gpus: 16,
        from_secs: 3_600.0,
        until_secs: 7_200.0,
    })
    .expect("reservation accepted");
    conn.mutate(&Command::Advance { secs: 900.0 })
        .expect("advance accepted");
    let before = text_query(&mut conn, "transitions");
    assert!(!before.is_empty());
    let info = conn.query("info", None).expect("info answered");
    let journalled = (clients * per_client + 2) as u64;
    assert_eq!(
        info.get("journal_seq").and_then(Json::as_u64),
        Some(journalled),
        "every acknowledged command is journalled exactly once"
    );
    drop(conn);
    daemon.stop();

    // Restart on the same journal: clean recovery, identical log,
    // sequence numbering continues where the first life ended.
    let (daemon, report) = Daemon::start(config).expect("daemon restarts");
    let report = report.expect("an existing journal is recovered");
    assert_eq!(report.frames, journalled);
    assert!(!report.torn(), "a cleanly stopped journal has no torn tail");
    let mut conn = DaemonClient::connect(&socket, RetryPolicy::default()).expect("reconnects");
    let after = text_query(&mut conn, "transitions");
    assert_eq!(
        before, after,
        "the restarted daemon must byte-reproduce the transition log"
    );
    let ack = conn
        .mutate(&live_submit(99, 0))
        .expect("recovered daemon accepts new work");
    assert_eq!(ack.get("seq").and_then(Json::as_u64), Some(journalled));
    drop(conn);
    daemon.stop();
    std::fs::remove_file(&journal).ok();
}
