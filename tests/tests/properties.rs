//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, NodeId, ResourceVec};
use tacc_metrics::{jain_index, percentile, StepSeries, Summary};
use tacc_sim::{dist, EventQueue, SeedStream, SimTime};
use tacc_workload::{GenParams, TraceGenerator};

// ---------------------------------------------------------------------
// Cluster allocator
// ---------------------------------------------------------------------

/// One step of a random allocate/release workload.
#[derive(Debug, Clone)]
enum Op {
    Alloc { node: usize, gpus: u32 },
    Release { slot: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, 1u32..=8).prop_map(|(node, gpus)| Op::Alloc { node, gpus }),
        (0usize..16).prop_map(|slot| Op::Release { slot }),
    ]
}

proptest! {
    /// Under any interleaving of allocations and releases, per-node
    /// accounting balances and free never exceeds capacity.
    #[test]
    fn allocator_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut cluster = Cluster::new(ClusterSpec::uniform(2, 4, GpuModel::A100, 8));
        let mut live: Vec<tacc_cluster::LeaseId> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { node, gpus } => {
                    let shares = [(NodeId::from_index(node), ResourceVec::gpus_only(gpus))];
                    if let Ok(lease) = cluster.allocate(0, &shares) {
                        live.push(lease.id());
                    }
                }
                Op::Release { slot } => {
                    if !live.is_empty() {
                        let id = live.swap_remove(slot % live.len());
                        cluster.release(id).expect("live lease releases");
                    }
                }
            }
            prop_assert!(cluster.check_invariants());
            prop_assert!(cluster.free_gpus() <= cluster.total_gpus());
        }
        // Releasing everything restores the empty cluster.
        for id in live {
            cluster.release(id).expect("live lease releases");
        }
        prop_assert_eq!(cluster.free_gpus(), cluster.total_gpus());
        prop_assert_eq!(cluster.lease_count(), 0);
    }

    /// Fragmentation is always a fraction and zero for chunk size 1.
    #[test]
    fn fragmentation_bounds(allocs in prop::collection::vec((0usize..8, 1u32..=8), 0..8)) {
        let mut cluster = Cluster::new(ClusterSpec::uniform(2, 4, GpuModel::A100, 8));
        for (node, gpus) in allocs {
            let _ = cluster.allocate(0, &[(NodeId::from_index(node), ResourceVec::gpus_only(gpus))]);
        }
        for chunk in [1u32, 2, 4, 8] {
            let f = cluster.fragmentation(chunk);
            prop_assert!((0.0..=1.0).contains(&f));
        }
        prop_assert_eq!(cluster.fragmentation(1), 0.0);
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 1..100),
                           p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        xs.iter_mut().for_each(|x| *x = x.trunc()); // avoid float-compare noise
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b);
        let s = Summary::from_samples(&xs);
        prop_assert!(s.min() <= a && b <= s.max());
    }

    /// A step series' time-weighted mean lies within the value range seen
    /// (plus the implicit leading zero).
    #[test]
    fn step_series_mean_bounded(values in prop::collection::vec(0.0f64..100.0, 1..50)) {
        let mut series = StepSeries::new();
        for (i, &v) in values.iter().enumerate() {
            series.set(i as f64, v);
        }
        let end = values.len() as f64;
        let mean = series.time_weighted_mean(0.0, end);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(mean >= 0.0 && mean <= max + 1e-9);
    }

    /// Jain's index is scale-invariant and within (0, 1].
    #[test]
    fn jain_bounds_and_scale(xs in prop::collection::vec(0.0f64..1e6, 1..40), k in 0.001f64..1000.0) {
        let j = jain_index(&xs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Simulation engine
// ---------------------------------------------------------------------

proptest! {
    /// The event queue pops in nondecreasing time order with FIFO ties,
    /// regardless of insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u32..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(f64::from(t)), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (_, i))) = q.pop() {
            if let Some((prev_at, prev_i)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(i > prev_i, "same-time events must pop FIFO");
                }
            }
            last = Some((at, i));
        }
    }

    /// Distribution samplers respect their supports for any seed.
    #[test]
    fn samplers_respect_supports(seed in any::<u64>()) {
        let mut rng = SeedStream::new(seed).stream("prop");
        for _ in 0..50 {
            prop_assert!(dist::exponential(&mut rng, 2.0) >= 0.0);
            prop_assert!(dist::log_normal(&mut rng, 1.0, 1.0) > 0.0);
            let u = dist::uniform(&mut rng, -3.0, 9.0);
            prop_assert!((-3.0..9.0).contains(&u));
            let p = dist::bounded_pareto(&mut rng, 1.5, 2.0, 50.0);
            prop_assert!((2.0..=50.0).contains(&p));
            let w = dist::weighted_index(&mut rng, &[0.2, 0.0, 0.8]);
            prop_assert!(w == 0 || w == 2);
        }
    }
}

// ---------------------------------------------------------------------
// Workload generator
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// For any seed and moderate load, every generated schema validates,
    /// submissions are time-ordered, and gangs are node-shaped.
    #[test]
    fn generator_produces_valid_traces(seed in any::<u64>(), load in 0.2f64..3.0) {
        let params = GenParams::default().with_load_factor(load);
        let trace = TraceGenerator::new(params, seed).generate_days(0.3);
        let mut last = 0.0;
        for r in trace.records() {
            prop_assert!(r.submit_secs >= last);
            last = r.submit_secs;
            prop_assert!(r.schema.validate().is_ok());
            prop_assert!(r.service_secs > 0.0);
            if r.schema.workers > 1 {
                prop_assert_eq!(r.schema.resources.gpus, 8);
            }
        }
        // Serde round-trip preserves the trace exactly.
        let json = trace.to_json().expect("serializes");
        prop_assert_eq!(tacc_workload::Trace::from_json(&json).expect("parses"), trace);
    }
}
