//! End-to-end integration tests: trace → compile → schedule → execute →
//! report, across all four layers.

use tacc_core::Platform;
use tacc_sched::QuotaMode;
use tacc_tests::{config_with, small_trace};
use tacc_workload::JobState;

/// Every submission must end in exactly one terminal state, the cluster
/// must drain completely, and per-node accounting must balance.
#[test]
fn conservation_across_the_stack() {
    let trace = small_trace(77, 2.0, 3.0);
    for quota in [QuotaMode::Disabled, QuotaMode::Static, QuotaMode::Borrowing] {
        let mut platform = Platform::new(config_with(|c| {
            c.scheduler.quota = quota;
        }));
        let report = platform.run_trace(&trace);
        assert_eq!(report.submitted, trace.len(), "{quota}: submissions lost");
        assert_eq!(
            report.completed + (report.failed + report.rejected + report.cancelled) as usize,
            trace.len(),
            "{quota}: jobs leaked in non-terminal states"
        );
        for id in platform.job_ids() {
            let state = platform.job(id).expect("listed job exists").state();
            assert!(state.is_terminal(), "{quota}: {id} stuck in {state}");
        }
        assert_eq!(platform.cluster().free_gpus(), 256, "{quota}: GPUs leaked");
        assert!(platform.cluster().check_invariants());
        assert_eq!(platform.scheduler().queue_len(), 0);
        assert_eq!(platform.scheduler().running_len(), 0);
    }
}

/// The same configuration and trace must reproduce bit-identical reports.
#[test]
fn end_to_end_determinism() {
    let trace = small_trace(78, 1.0, 3.0);
    let run = || {
        Platform::new(config_with(|c| {
            c.scheduler.quota = QuotaMode::Borrowing;
            c.node_mtbf_secs = Some(20.0 * 86_400.0);
        }))
        .run_trace(&trace)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Static partitioning strands capacity a single shared pool would use:
/// utilization under static quotas never exceeds the shared pool's.
#[test]
fn static_partitioning_strands_capacity() {
    let trace = small_trace(79, 3.0, 4.0);
    let shared = Platform::new(config_with(|_| {})).run_trace(&trace);
    let partitioned = Platform::new(config_with(|c| {
        c.scheduler.quota = QuotaMode::Static;
    }))
    .run_trace(&trace);
    assert!(
        partitioned.mean_utilization <= shared.mean_utilization + 0.02,
        "static {:.3} vs shared {:.3}",
        partitioned.mean_utilization,
        shared.mean_utilization
    );
    assert_eq!(shared.preemptions, 0);
    assert_eq!(partitioned.preemptions, 0);
}

/// Borrowing produces reclaim preemptions under contention, and the waste
/// they cause stays small when jobs checkpoint.
#[test]
fn borrowing_reclaims_with_bounded_waste() {
    let trace = small_trace(80, 3.0, 4.0);
    let report = Platform::new(config_with(|c| {
        c.scheduler.quota = QuotaMode::Borrowing;
    }))
    .run_trace(&trace);
    assert!(report.preemptions > 0, "contended borrowing must reclaim");
    assert!(
        report.goodput > 0.95,
        "checkpointed preemption should waste little: {}",
        report.goodput
    );
}

/// Jobs preempted mid-run still finish, and their completion records carry
/// the preemption counts.
#[test]
fn preempted_jobs_complete_eventually() {
    let trace = small_trace(81, 3.0, 4.0);
    let report = Platform::new(config_with(|c| {
        c.scheduler.quota = QuotaMode::Borrowing;
    }))
    .run_trace(&trace);
    let preempted: Vec<_> = report.jobs.iter().filter(|j| j.preemptions > 0).collect();
    assert!(!preempted.is_empty());
    for j in &preempted {
        assert!(j.jct_secs > 0.0);
        assert!(j.wasted_secs >= 0.0);
    }
}

/// With failure injection and fail-safe switching on, no job dies and every
/// fault is absorbed.
#[test]
fn failover_absorbs_every_fault() {
    let trace = small_trace(82, 2.0, 2.0);
    let report = Platform::new(config_with(|c| {
        c.node_mtbf_secs = Some(5.0 * 86_400.0);
    }))
    .run_trace(&trace);
    assert!(report.faults > 0, "MTBF of 5 days must fault something");
    assert_eq!(report.failed, 0);
    assert_eq!(report.failovers, report.faults);
}

/// Elastic traces behave like rigid ones on the conservation invariant
/// and never waste goodput on shrink alone.
#[test]
fn elastic_trace_conserves_jobs() {
    use tacc_workload::{GenParams, TraceGenerator};
    let params = GenParams {
        elastic_fraction: 1.0,
        best_effort_fraction: 0.6,
        ..GenParams::default()
            .with_load_factor(2.0)
            .with_multi_node_fraction(0.3)
    };
    let trace = TraceGenerator::new(params, 301).generate_days(2.0);
    let mut platform = Platform::new(config_with(|_| {}));
    let report = platform.run_trace(&trace);
    assert_eq!(
        report.completed + (report.failed + report.rejected + report.cancelled) as usize,
        trace.len()
    );
    assert_eq!(platform.cluster().free_gpus(), 256);
    assert!(platform.cluster().check_invariants());
}

/// Draining nodes mid-run never corrupts accounting; undraining restores
/// full capacity to the scheduler.
#[test]
fn maintenance_drain_mid_trace() {
    let trace = small_trace(302, 1.0, 2.0);
    let mut platform = Platform::new(config_with(|_| {}));
    platform.load_trace(&trace);
    platform.run_until(tacc_sim::SimTime::from_hours(4.0));
    // Drain a whole rack (nodes 0..8).
    for i in 0..8 {
        assert!(platform.drain_node(tacc_cluster::NodeId::from_index(i)));
    }
    platform.run_until(tacc_sim::SimTime::from_hours(12.0));
    for i in 0..8 {
        let node = platform
            .cluster()
            .node(tacc_cluster::NodeId::from_index(i))
            .expect("exists");
        assert!(!node.is_schedulable());
    }
    for i in 0..8 {
        assert!(platform.undrain_node(tacc_cluster::NodeId::from_index(i)));
    }
    platform.run_until_idle();
    let report = platform.report();
    assert_eq!(
        report.completed + (report.failed + report.rejected + report.cancelled) as usize,
        trace.len()
    );
    assert!(platform.cluster().check_invariants());
    assert_eq!(platform.cluster().free_gpus(), 256);
}

/// Interactive submission interleaves with a background trace.
#[test]
fn interactive_submission_over_live_cluster() {
    let trace = small_trace(83, 0.5, 2.0);
    let mut platform = Platform::new(config_with(|_| {}));
    platform.load_trace(&trace);
    platform.run_until(tacc_sim::SimTime::from_hours(6.0));
    let schema = tacc_workload::TaskSchema::builder(
        "interactive-probe",
        tacc_workload::GroupId::from_index(3),
    )
    .est_duration_secs(1200.0)
    .build()
    .expect("valid");
    let id = platform.submit_schema(schema, 1200.0);
    platform.run_until_idle();
    assert_eq!(
        platform.job(id).expect("submitted").state(),
        JobState::Completed
    );
    // The interleaved job is included in the final report.
    let report = platform.report();
    assert_eq!(report.submitted, trace.len() + 1);
}
