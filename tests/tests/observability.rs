//! Integration tests for the structured telemetry layer: the event bus,
//! the operational metrics registry, and scheduler decision tracing, all
//! observed through the full platform stack.

use tacc_core::Platform;
use tacc_obs::{conservation, EventBus};
use tacc_sched::QuotaMode;
use tacc_tcloud::TcloudClient;
use tacc_tests::{config_with, small_trace};

/// The conservation invariant, recounted from the event stream alone:
/// every submitted job ends in exactly one of completed / failed /
/// rejected / cancelled — and the counts agree with the report, under
/// every quota mode and with failure injection on.
#[test]
fn event_stream_recounts_the_report() {
    let trace = small_trace(41, 1.0, 3.0);
    for quota in [QuotaMode::Disabled, QuotaMode::Static, QuotaMode::Borrowing] {
        let mut platform = Platform::new(config_with(|c| {
            c.scheduler.quota = quota;
            c.node_mtbf_secs = Some(30.0 * 86_400.0);
        }));
        let report = platform.run_trace(&trace);
        let records: Vec<_> = platform.events().records().cloned().collect();
        let check = conservation(&records);
        assert!(
            check.balanced(),
            "{quota}: unbalanced event stream {check:?}"
        );
        assert_eq!(check.submitted as usize, report.submitted, "{quota}");
        assert_eq!(check.completed as usize, report.completed, "{quota}");
        assert_eq!(check.failed, report.failed, "{quota}");
        assert_eq!(check.rejected, report.rejected, "{quota}");
        assert_eq!(check.cancelled, report.cancelled, "{quota}");

        if tacc_workload::serde_json_functional() {
            // The JSONL export carries the same stream losslessly.
            let parsed = EventBus::parse_jsonl(&platform.events().to_jsonl()).expect("valid JSONL");
            let reparsed = conservation(&parsed);
            assert_eq!(reparsed, check, "{quota}: JSONL round-trip changed counts");
        }

        // Timestamps on the bus never go backwards.
        for pair in records.windows(2) {
            assert!(
                pair[0].at_secs <= pair[1].at_secs,
                "{quota}: time went backwards"
            );
            assert!(pair[0].seq < pair[1].seq, "{quota}: seq not monotone");
        }
    }
}

/// Metrics registered by all layers agree with the report's own counts.
#[test]
fn metrics_agree_with_report() {
    let trace = small_trace(42, 1.0, 3.0);
    let mut platform = Platform::new(config_with(|c| {
        c.scheduler.quota = QuotaMode::Borrowing;
    }));
    let report = platform.run_trace(&trace);
    let snap = platform.metrics();
    assert_eq!(
        snap.counter("tacc_core_jobs_submitted_total"),
        Some(report.submitted as u64)
    );
    assert_eq!(
        snap.counter("tacc_core_jobs_completed_total"),
        Some(report.completed as u64)
    );
    assert_eq!(
        snap.counter("tacc_sched_preemptions_total"),
        Some(report.preemptions)
    );
    assert_eq!(
        snap.counter("tacc_sched_backfill_starts_total"),
        Some(report.backfill_starts)
    );
    assert_eq!(snap.counter("tacc_sched_rounds_total"), Some(report.rounds));
    assert_eq!(
        snap.counter("tacc_compiler_cache_hits_total"),
        Some(report.cache_hits)
    );
    // Every placement produced exactly one execution plan.
    assert_eq!(
        snap.counter("tacc_exec_plans_total"),
        Some(platform.events().kind_count("placed"))
    );
    // All GPUs free after the run drains.
    assert_eq!(snap.gauge("tacc_cluster_free_gpus"), Some(256.0));
    // The queue-delay histogram saw every completion.
    let delay = snap
        .histogram("tacc_core_queue_delay_seconds")
        .expect("queue delay histogram");
    assert_eq!(delay.count, report.completed as u64);
    // Round latency is real measured wall time.
    assert!(report.round_latency.count > 0);
    assert!(report.round_latency.sum >= 0.0);
}

/// `tcloud why` surfaces the scheduler's concrete skip reason for a job
/// stuck behind a quota, straight from the decision trace.
#[test]
fn tcloud_why_names_the_quota() {
    let mut client = TcloudClient::with_profile(
        "campus",
        config_with(|c| {
            c.scheduler.quota = QuotaMode::Static;
            c.scheduler.quotas = vec![32; 8];
            c.scheduler.group_count = 8;
        }),
    );
    // Saturate group 0's 32-GPU static quota, then ask for 8 more.
    let hog = tacc_workload::TaskSchema::builder("hog", tacc_workload::GroupId::from_index(0))
        .workers(4)
        .resources(tacc_cluster::ResourceVec::gpus_only(8))
        .est_duration_secs(1e6)
        .build()
        .expect("valid");
    client.submit(hog, 1e6).expect("submits");
    client.advance(2000.0);
    let over = tacc_workload::TaskSchema::builder("over", tacc_workload::GroupId::from_index(0))
        .resources(tacc_cluster::ResourceVec::gpus_only(8))
        .est_duration_secs(600.0)
        .build()
        .expect("valid");
    let id = client.submit(over, 600.0).expect("submits");
    client.advance(2000.0);
    let why = client.why(id).expect("known job");
    assert!(why.contains("quota exhausted"), "why: {why}");
    assert!(why.contains("32/32"), "why: {why}");
}
