//! Layer-boundary integration: schema JSON through tcloud, compiler cache
//! behaviour across realistic submission streams, and execution-model
//! crossovers the paper's figures depend on.

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, NodeId};
use tacc_compiler::{Compiler, CompilerConfig};
use tacc_core::PlatformConfig;
use tacc_exec::{comm, ExecConfig, ExecModel};
use tacc_tcloud::TcloudClient;
use tacc_tests::small_trace;
use tacc_workload::{GroupId, ModelProfile, RuntimePreference, TaskSchema};

/// A schema serialized on one "machine" drives a full tcloud session on
/// another — the paper's reproducibility story.
#[test]
fn schema_json_round_trips_through_tcloud() {
    if !tacc_workload::serde_json_functional() {
        return; // typecheck-only serde_json stub: JSON round-trip needs the real crate
    }
    let schema = TaskSchema::builder("portable", GroupId::from_index(2))
        .workers(2)
        .resources(tacc_cluster::ResourceVec::gpus_only(8))
        .est_duration_secs(900.0)
        .build()
        .expect("valid");
    let json = serde_json::to_string(&schema).expect("serializes");

    let mut client = TcloudClient::with_profile("a", PlatformConfig::default());
    client.add_profile("b", PlatformConfig::default());
    for profile in ["a", "b"] {
        client.use_profile(profile).expect("exists");
        let out = client
            .run_command(&["submit", &json, "--service", "900"])
            .expect("valid");
        assert!(out.text().contains("submitted job"));
        let wait = client.run_command(&["wait", "0"]).expect("wait");
        assert!(wait.text().contains("completed"), "{}", wait.text());
    }
}

/// Replaying a real trace's schemas through the compiler: the warm half of
/// the stream must transfer far less than the cold half.
#[test]
fn cache_warms_over_a_real_stream() {
    let trace = small_trace(201, 2.0, 1.0);
    let schemas: Vec<_> = trace.records().iter().map(|r| &r.schema).collect();
    let mut compiler = Compiler::new(CompilerConfig::default());
    let half = schemas.len() / 2;
    let mut cold = 0.0;
    for s in &schemas[..half] {
        cold += compiler
            .compile(s)
            .expect("valid")
            .provisioning
            .transferred_mb;
    }
    let mut warm = 0.0;
    for s in &schemas[half..] {
        warm += compiler
            .compile(s)
            .expect("valid")
            .provisioning
            .transferred_mb;
    }
    assert!(
        warm < cold * 0.5,
        "warm half moved {warm:.0} MiB vs cold {cold:.0} MiB"
    );
    assert!(compiler.cache().stats().hit_rate() > 0.5);
}

/// The execution model's headline crossovers: ring beats PS at scale,
/// hierarchical beats flat across nodes, RDMA beats TCP.
#[test]
fn execution_model_crossovers() {
    let rdma = Cluster::new(ClusterSpec::uniform(2, 4, GpuModel::A100, 8));
    let tcp = Cluster::new(
        ClusterSpec::builder()
            .pool(GpuModel::A100, 2, 4, 8)
            .speeds(tacc_cluster::LinkSpeeds::tcp_legacy())
            .build(),
    );
    let model = ExecModel::new(ExecConfig::default());
    let profile = ModelProfile::gpt2_like();
    let nodes: Vec<NodeId> = (0..4).map(NodeId::from_index).collect();

    let ar = model.plan_training(
        &rdma,
        RuntimePreference::AllReduce,
        &nodes,
        32,
        GpuModel::A100,
        &profile,
    );
    let ps = model.plan_training(
        &rdma,
        RuntimePreference::ParameterServer,
        &nodes,
        32,
        GpuModel::A100,
        &profile,
    );
    assert!(
        ar.efficiency > ps.efficiency,
        "ring must beat PS at 32 GPUs"
    );

    let tcp_ar = model.plan_training(
        &tcp,
        RuntimePreference::AllReduce,
        &nodes,
        32,
        GpuModel::A100,
        &profile,
    );
    assert!(ar.efficiency > tcp_ar.efficiency, "RDMA must beat TCP");

    // Raw model sanity at both extremes.
    assert!(
        comm::ring_allreduce_secs(1500.0, 64, 100.0)
            < comm::parameter_server_secs(1500.0, 64, 4, 100.0)
    );
    assert!(comm::ring_allreduce_secs(1500.0, 2, 100.0) > 0.0);
}

/// Heterogeneous pools: the same job runs slower on the consumer pool.
#[test]
fn heterogeneous_pools_change_runtime() {
    let spec = ClusterSpec::builder()
        .pool(GpuModel::A100, 1, 2, 8)
        .pool(GpuModel::Rtx3090, 1, 2, 8)
        .build();
    let cluster = Cluster::new(spec);
    let model = ExecModel::new(ExecConfig::default());
    let profile = ModelProfile::resnet50_like();
    let on = |node: usize, gpu| {
        model
            .plan_training(
                &cluster,
                RuntimePreference::AllReduce,
                &[NodeId::from_index(node)],
                8,
                gpu,
                &profile,
            )
            .slowdown
    };
    let a100 = on(0, GpuModel::A100);
    let consumer = on(2, GpuModel::Rtx3090);
    assert!(
        consumer > a100 * 2.0,
        "consumer pool should be >2x slower: {consumer:.2} vs {a100:.2}"
    );
}

/// tcloud distributed monitoring: logs from a multi-node job arrive merged
/// and ordered.
#[test]
fn tcloud_aggregates_distributed_logs() {
    let mut client = TcloudClient::with_profile("campus", PlatformConfig::default());
    let schema = TaskSchema::builder("dist", GroupId::from_index(0))
        .workers(4)
        .resources(tacc_cluster::ResourceVec::gpus_only(8))
        .est_duration_secs(600.0)
        .build()
        .expect("valid");
    let job = client.submit(schema, 600.0).expect("valid");
    client.wait(job).expect("exists");
    let logs = client.logs(job).expect("exists");
    assert!(logs.iter().any(|l| l.contains("4 node(s)")));
    // Timestamps are non-decreasing (merged view is ordered).
    let times: Vec<f64> = logs
        .iter()
        .map(|l| {
            l.trim_start_matches("[t=")
                .split('s')
                .next()
                .expect("format")
                .parse::<f64>()
                .expect("numeric timestamp")
        })
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}
