//! Cross-crate behavioural tests of the scheduling policy suite: the
//! orderings the experiment tables rely on must hold on fresh seeds.

use tacc_core::Platform;
use tacc_sched::{BackfillMode, PlacementStrategy, PolicyKind};
use tacc_tests::{config_with, small_trace};
use tacc_workload::{GenParams, TraceGenerator};

/// SJF (even on noisy estimates) beats FIFO on mean JCT under contention.
#[test]
fn sjf_beats_fifo_on_mean_jct() {
    let trace = small_trace(101, 3.0, 4.0);
    let fifo =
        Platform::new(config_with(|c| c.scheduler.policy = PolicyKind::Fifo)).run_trace(&trace);
    let sjf =
        Platform::new(config_with(|c| c.scheduler.policy = PolicyKind::Sjf)).run_trace(&trace);
    assert!(
        sjf.jct.mean() < fifo.jct.mean(),
        "sjf {:.0}s vs fifo {:.0}s",
        sjf.jct.mean(),
        fifo.jct.mean()
    );
}

/// EASY backfill recovers utilization lost to head-of-line blocking when
/// multi-node gangs are common.
#[test]
fn backfill_recovers_utilization() {
    let params = GenParams::default()
        .with_load_factor(1.5)
        .with_multi_node_fraction(0.4);
    let trace = TraceGenerator::new(params, 102).generate_days(3.0);
    let none = Platform::new(config_with(|c| {
        c.scheduler.backfill = BackfillMode::None;
    }))
    .run_trace(&trace);
    let easy = Platform::new(config_with(|c| {
        c.scheduler.backfill = BackfillMode::Easy;
    }))
    .run_trace(&trace);
    assert!(easy.backfill_starts > 0);
    assert_eq!(none.backfill_starts, 0);
    assert!(
        easy.mean_utilization >= none.mean_utilization,
        "easy {:.3} vs none {:.3}",
        easy.mean_utilization,
        none.mean_utilization
    );
    assert!(
        easy.queue_delay.p95() <= none.queue_delay.p95(),
        "easy p95 {:.0}s vs none {:.0}s",
        easy.queue_delay.p95(),
        none.queue_delay.p95()
    );
}

/// Conservative backfill is never more aggressive than EASY.
#[test]
fn conservative_backfills_no_more_than_easy() {
    let params = GenParams::default()
        .with_load_factor(1.5)
        .with_multi_node_fraction(0.3);
    let trace = TraceGenerator::new(params, 103).generate_days(2.0);
    let easy = Platform::new(config_with(|c| {
        c.scheduler.backfill = BackfillMode::Easy;
    }))
    .run_trace(&trace);
    let conservative = Platform::new(config_with(|c| {
        c.scheduler.backfill = BackfillMode::Conservative;
    }))
    .run_trace(&trace);
    // Both backfill; EASY's single-reservation rule admits at least as much
    // as checking every reservation.
    assert!(conservative.backfill_starts > 0);
    assert!(
        easy.mean_utilization + 0.03 >= conservative.mean_utilization,
        "easy {:.3} vs conservative {:.3}",
        easy.mean_utilization,
        conservative.mean_utilization
    );
}

/// Topology-aware placement gives distributed jobs lower execution
/// slowdown than spreading.
#[test]
fn topology_placement_beats_spread_on_comm() {
    let params = GenParams::default()
        .with_load_factor(1.2)
        .with_multi_node_fraction(0.25);
    let trace = TraceGenerator::new(params, 104).generate_days(3.0);
    let exec_slowdown = |strategy| {
        let report = Platform::new(config_with(|c| {
            c.scheduler.placement = strategy;
        }))
        .run_trace(&trace);
        let xs: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.gpus >= 16)
            .map(|j| ((j.jct_secs - j.queue_delay_secs) / j.service_secs).max(1.0))
            .collect();
        assert!(!xs.is_empty());
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let topo = exec_slowdown(PlacementStrategy::TopologyAware);
    let spread = exec_slowdown(PlacementStrategy::Spread);
    assert!(topo <= spread, "topo {topo:.3} vs spread {spread:.3}");
}

/// Fair-share keeps the light groups' waits bounded relative to FIFO under
/// heavy load from the big groups.
#[test]
fn fair_share_protects_small_groups() {
    let trace = small_trace(105, 3.0, 4.0);
    let worst_wait = |policy| {
        let report = Platform::new(config_with(|c| {
            c.scheduler.policy = policy;
        }))
        .run_trace(&trace);
        report
            .groups
            .iter()
            .map(|g| g.mean_queue_delay_secs)
            .fold(0.0f64, f64::max)
    };
    let fifo = worst_wait(PolicyKind::Fifo);
    let fair = worst_wait(PolicyKind::FairShare);
    // Weak form (seeds vary): fair-share must not make the worst group
    // dramatically worse than FIFO does.
    assert!(
        fair <= fifo * 1.5,
        "fair-share worst-group wait {fair:.0}s vs fifo {fifo:.0}s"
    );
}
