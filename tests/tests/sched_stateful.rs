//! Stateful property test: the scheduler + cluster pair under arbitrary
//! interleavings of submissions, completions, rotations and reclaims must
//! never corrupt accounting.

use proptest::prelude::*;

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, ResourceVec};
use tacc_sched::{BackfillMode, PolicyKind, QuotaMode, Scheduler, SchedulerConfig, TaskRequest};
use tacc_workload::{GroupId, JobId, QosClass};

#[derive(Debug, Clone)]
enum Action {
    /// Submit a job with the given shape.
    Submit {
        group: usize,
        workers: u32,
        gpus: u32,
        qos_best_effort: bool,
        elastic: bool,
        est: f64,
    },
    /// Finish the k-th currently running job (mod running count).
    Finish { k: usize },
    /// Run a scheduling round.
    Round,
    /// Attempt a time-slice rotation.
    Rotate,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0usize..4, 1u32..=4, 1u32..=8, any::<bool>(), any::<bool>(), 60.0f64..7200.0)
            .prop_map(|(group, workers, gpus, qos_best_effort, elastic, est)| Action::Submit {
                group,
                workers,
                gpus,
                qos_best_effort,
                elastic,
                est,
            }),
        3 => (0usize..64).prop_map(|k| Action::Finish { k }),
        2 => Just(Action::Round),
        1 => Just(Action::Rotate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn scheduler_never_corrupts_accounting(
        actions in prop::collection::vec(action_strategy(), 1..120),
        quota_mode in prop_oneof![
            Just(QuotaMode::Disabled),
            Just(QuotaMode::Static),
            Just(QuotaMode::Borrowing),
        ],
    ) {
        let mut cluster = Cluster::new(ClusterSpec::uniform(2, 4, GpuModel::A100, 8));
        let total = cluster.total_gpus();
        let mut sched = Scheduler::new(SchedulerConfig {
            policy: PolicyKind::MultiFactor,
            backfill: BackfillMode::Easy,
            quota: quota_mode,
            quotas: vec![16, 16, 16, 16],
            group_count: 4,
            time_slice_secs: Some(600.0),
            ..SchedulerConfig::default()
        });
        let mut next_id: u64 = 0;
        let mut now = 0.0f64;
        let mut submitted = 0usize;
        let mut finished = 0usize;

        for action in actions {
            now += 1.0;
            match action {
                Action::Submit { group, workers, gpus, qos_best_effort, elastic, est } => {
                    // Keep requests physically feasible so they are not a
                    // quota/fit dead letter for the whole run.
                    let request = TaskRequest {
                        id: JobId::from_value(next_id),
                        group: GroupId::from_index(group),
                        qos: if qos_best_effort { QosClass::BestEffort } else { QosClass::Guaranteed },
                        workers,
                        per_worker: ResourceVec::gpus_only(gpus),
                        est_secs: est,
                        submit_secs: now,
                        elastic,
                    };
                    next_id += 1;
                    submitted += 1;
                    sched.submit(request);
                }
                Action::Finish { k } => {
                    let running: Vec<JobId> =
                        sched.running().map(|t| t.request.id).collect();
                    if !running.is_empty() {
                        let victim = running[k % running.len()];
                        let done = sched.task_finished(victim, &mut cluster);
                        prop_assert!(done.is_some());
                        finished += 1;
                    }
                }
                Action::Round => {
                    let _ = sched.schedule(now, &mut cluster);
                }
                Action::Rotate => {
                    let _ = sched.rotate(now, &mut cluster);
                }
            }
            // Invariants after every step.
            prop_assert!(cluster.check_invariants());
            prop_assert!(cluster.free_gpus() <= total);
            prop_assert_eq!(cluster.lease_count(), sched.running_len());
            // Quota usage never exceeds physically allocated GPUs.
            let quota_used: u32 = (0..4)
                .map(|g| sched.quota_table().total_used(GroupId::from_index(g)))
                .sum();
            prop_assert_eq!(quota_used, total - cluster.free_gpus());
        }

        // Drain: finish everything that runs, then rounds start the rest
        // or leave them legitimately queued; accounting stays balanced.
        for _ in 0..2 * submitted {
            let running: Vec<JobId> = sched.running().map(|t| t.request.id).collect();
            if running.is_empty() {
                break;
            }
            sched.task_finished(running[0], &mut cluster);
            finished += 1;
            now += 1.0;
            let _ = sched.schedule(now, &mut cluster);
        }
        prop_assert!(cluster.check_invariants());
        prop_assert!(finished <= submitted);
        prop_assert_eq!(cluster.lease_count(), sched.running_len());
        // Everything still in the system is queued or running, not lost.
        prop_assert_eq!(
            sched.queue_len() + sched.running_len() + finished,
            submitted
        );
    }
}
