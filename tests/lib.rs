//! Workspace integration tests for `tacc-rs`.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! shared helpers.

#![forbid(unsafe_code)]

use tacc_core::PlatformConfig;
use tacc_workload::{GenParams, Trace, TraceGenerator};

/// A small, fast canonical trace for integration tests.
pub fn small_trace(seed: u64, days: f64, load: f64) -> Trace {
    TraceGenerator::new(GenParams::default().with_load_factor(load), seed).generate_days(days)
}

/// The default 256-GPU platform with one field tweaked by the caller.
pub fn config_with(customize: impl FnOnce(&mut PlatformConfig)) -> PlatformConfig {
    let mut config = PlatformConfig::default();
    customize(&mut config);
    config
}
