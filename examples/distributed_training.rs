//! Distributed-training scaling on the execution layer.
//!
//! Plans the same two models (ResNet-50-like and GPT-2-like) at 1–64 GPUs
//! under the all-reduce and parameter-server runtimes, on the RDMA fabric
//! and on a legacy TCP fabric, and prints the scaling-efficiency series —
//! the data behind experiment F6.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, LinkSpeeds, NodeId};
use tacc_exec::{ExecConfig, ExecModel};
use tacc_metrics::Table;
use tacc_workload::{ModelProfile, RuntimePreference};

fn cluster_with(speeds: LinkSpeeds) -> Cluster {
    Cluster::new(
        ClusterSpec::builder()
            .pool(GpuModel::A100, 2, 4, 8)
            .speeds(speeds)
            .build(),
    )
}

/// Nodes a packed gang of `gpus` GPUs occupies (8 per node).
fn placement(gpus: u32) -> Vec<NodeId> {
    let nodes = gpus.div_ceil(8).max(1);
    (0..nodes as usize).map(NodeId::from_index).collect()
}

fn main() {
    let model = ExecModel::new(ExecConfig::default());
    let rdma = cluster_with(LinkSpeeds::campus_default());
    let tcp = cluster_with(LinkSpeeds::tcp_legacy());

    for (name, profile) in [
        (
            "ResNet-50-like (100 MiB grads)",
            ModelProfile::resnet50_like(),
        ),
        ("GPT-2-like (1.5 GiB grads)", ModelProfile::gpt2_like()),
    ] {
        let mut table = Table::new(
            &format!("scaling efficiency — {name}"),
            &[
                "GPUs",
                "allreduce/RDMA",
                "allreduce/TCP",
                "param-server/RDMA",
            ],
        );
        for gpus in [1u32, 2, 4, 8, 16, 32, 64] {
            let nodes = placement(gpus);
            let eff = |cluster: &Cluster, runtime| {
                let plan =
                    model.plan_training(cluster, runtime, &nodes, gpus, GpuModel::A100, &profile);
                plan.efficiency * 100.0
            };
            table.row(vec![
                (gpus as usize).into(),
                eff(&rdma, RuntimePreference::AllReduce).into(),
                eff(&tcp, RuntimePreference::AllReduce).into(),
                eff(&rdma, RuntimePreference::ParameterServer).into(),
            ]);
        }
        println!("{table}");
    }
    println!("efficiency = compute / (compute + communication) per iteration, %");
}
