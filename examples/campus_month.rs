//! Two weeks of campus workload, replayed under three sharing regimes.
//!
//! This is the paper's core operational story in miniature: static
//! per-group partitions strand idle GPUs, borrowing recovers them, and
//! preemption keeps guarantees intact while borrowers absorb the slack.
//!
//! ```sh
//! cargo run --release --example campus_month
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use tacc_core::{Platform, PlatformConfig};
use tacc_metrics::Table;
use tacc_sched::QuotaMode;
use tacc_workload::{GenParams, TraceGenerator};

fn main() {
    let days = 14.0;
    let trace =
        TraceGenerator::new(GenParams::default().with_load_factor(3.0), 2024).generate_days(days);
    println!(
        "replaying {} submissions over {days} days on 256 GPUs (load factor 3)\n",
        trace.len()
    );

    let mut table = Table::new(
        "campus fortnight: sharing regimes",
        &[
            "regime",
            "util %",
            "mean JCT (h)",
            "p95 wait (h)",
            "preempts",
            "goodput %",
        ],
    );

    for quota in [QuotaMode::Disabled, QuotaMode::Static, QuotaMode::Borrowing] {
        let mut config = PlatformConfig::default();
        config.scheduler.quota = quota;
        let mut platform = Platform::new(config);
        let report = platform.run_trace(&trace);
        table.row(vec![
            quota.to_string().into(),
            (report.mean_utilization * 100.0).into(),
            (report.jct.mean() / 3600.0).into(),
            (report.queue_delay.p95() / 3600.0).into(),
            report.preemptions.into(),
            (report.goodput * 100.0).into(),
        ]);
    }
    println!("{table}");
    println!("(\"disabled\" = one shared pool, no isolation; \"static\" = hard partitions;");
    println!(" \"borrowing\" = quotas with best-effort borrowing + reclaim preemption)");
}
