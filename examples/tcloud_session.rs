//! A scripted `tcloud` terminal session against two cluster profiles.
//!
//! Mirrors the workflow in paper §4: submit from a laptop, watch the
//! aggregated distributed logs, kill a job mid-run, and retarget a second
//! cluster by switching one line of configuration.
//!
//! ```sh
//! cargo run --release --example tcloud_session
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use tacc_cluster::{ClusterSpec, GpuModel, ResourceVec};
use tacc_core::PlatformConfig;
use tacc_tcloud::TcloudClient;
use tacc_workload::{GroupId, GroupRoster, TaskSchema};

fn small_cluster(seed: u64) -> PlatformConfig {
    PlatformConfig {
        cluster: ClusterSpec::uniform(1, 4, GpuModel::A100, 8),
        roster: GroupRoster::campus_default(32),
        seed,
        ..PlatformConfig::default()
    }
}

fn run(client: &mut TcloudClient, argv: &[&str]) {
    println!("$ tcloud {}", argv.join(" "));
    match client.run_command(argv) {
        Ok(out) => {
            for line in &out.lines {
                println!("{line}");
            }
        }
        Err(e) => println!("error: {e}"),
    }
    println!();
}

fn main() {
    let mut client = TcloudClient::with_profile("campus", small_cluster(1));
    client.add_profile("lab-cluster", small_cluster(2));

    let training = TaskSchema::builder("cifar-train", GroupId::from_index(0))
        .workers(2)
        .resources(ResourceVec::gpus_only(8))
        .est_duration_secs(1800.0)
        .build()
        .expect("valid schema");
    let training_json = serde_json::to_string(&training).expect("serializes");

    let runaway = TaskSchema::builder("runaway-sweep", GroupId::from_index(1))
        .resources(ResourceVec::gpus_only(4))
        .est_duration_secs(20.0 * 3600.0)
        .build()
        .expect("valid schema");
    let runaway_json = serde_json::to_string(&runaway).expect("serializes");

    run(&mut client, &["info"]);
    run(
        &mut client,
        &["submit", &training_json, "--service", "1800"],
    );
    run(
        &mut client,
        &["submit", &runaway_json, "--service", "72000"],
    );
    run(&mut client, &["ps"]);

    // Let the cluster work for an hour, then look again.
    client.advance(3600.0);
    run(&mut client, &["ps"]);

    // The distributed job's logs, aggregated across its nodes.
    run(&mut client, &["wait", "0"]);
    run(&mut client, &["logs", "0"]);

    // Pull its checkpoint and per-worker logs off the nodes.
    run(&mut client, &["get", "0"]);

    // Operator views: per-node occupancy and per-group quota usage.
    run(&mut client, &["top"]);
    run(&mut client, &["quota"]);

    // Take a node out for maintenance and put it back.
    run(&mut client, &["drain", "2"]);
    run(&mut client, &["undrain", "2"]);

    // That sweep is a mistake — kill it everywhere at once.
    run(&mut client, &["kill", "1"]);
    run(&mut client, &["ps"]);

    // Same workflow, different cluster: one line of configuration.
    run(&mut client, &["use", "lab-cluster"]);
    run(&mut client, &["info"]);
    run(
        &mut client,
        &["submit", &training_json, "--service", "1800"],
    );
    run(&mut client, &["wait", "0"]);
}
