//! Quickstart: stand up a platform, submit three tasks, read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use tacc_cluster::{ClusterSpec, GpuModel, ResourceVec};
use tacc_core::{Platform, PlatformConfig};
use tacc_workload::{GroupId, GroupRoster, ModelProfile, QosClass, TaskSchema};

fn main() {
    // A small shared cluster: 2 racks x 4 nodes x 8 A100s, 4 groups.
    let config = PlatformConfig {
        cluster: ClusterSpec::uniform(2, 4, GpuModel::A100, 8),
        roster: GroupRoster::new(vec![
            ("vision".to_owned(), 24, 2.0),
            ("nlp".to_owned(), 24, 2.0),
            ("systems".to_owned(), 8, 1.0),
            ("robotics".to_owned(), 8, 1.0),
        ]),
        ..PlatformConfig::default()
    };
    let mut platform = Platform::new(config);

    // 1. A single-GPU fine-tuning run (the everyday case).
    let fine_tune = TaskSchema::builder("bert-finetune", GroupId::from_index(1))
        .resources(ResourceVec::gpus_only(1))
        .est_duration_secs(2.0 * 3600.0)
        .model(ModelProfile::resnet50_like())
        .build()
        .expect("valid schema");
    let j1 = platform.submit_schema(fine_tune, 2.0 * 3600.0);

    // 2. A 16-GPU distributed training gang (2 nodes x 8 GPUs).
    let pretrain = TaskSchema::builder("gpt2-pretrain", GroupId::from_index(0))
        .workers(2)
        .resources(ResourceVec::gpus_only(8))
        .est_duration_secs(6.0 * 3600.0)
        .model(ModelProfile::gpt2_like())
        .build()
        .expect("valid schema");
    let j2 = platform.submit_schema(pretrain, 6.0 * 3600.0);

    // 3. A best-effort hyperparameter sweep that borrows idle capacity.
    let sweep = TaskSchema::builder("hparam-sweep", GroupId::from_index(2))
        .resources(ResourceVec::gpus_only(4))
        .qos(QosClass::BestEffort)
        .est_duration_secs(3600.0)
        .build()
        .expect("valid schema");
    let j3 = platform.submit_schema(sweep, 3600.0);

    platform.run_until_idle();

    println!("== quickstart: three tasks through the full stack ==\n");
    for (label, id) in [("fine-tune", j1), ("pretrain", j2), ("sweep", j3)] {
        let job = platform.job(id).expect("submitted above");
        println!(
            "{label:>10}: state={} queue-delay={:.0}s jct={:.0}s",
            job.state(),
            job.queueing_delay_secs().unwrap_or(0.0),
            job.jct_secs().unwrap_or(0.0),
        );
        for (t, line) in platform.job_log(id) {
            println!("             [t={t:>8.1}s] {line}");
        }
        println!();
    }

    let report = platform.report();
    println!(
        "cluster: {} jobs completed, mean JCT {:.0}s, mean utilization {:.1}%",
        report.completed,
        report.jct.mean(),
        report.mean_utilization * 100.0
    );
}
