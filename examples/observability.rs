//! Observability tour: the event bus, `tcloud why`, and the operational
//! metrics registry, driven through a deliberately congested cluster.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use tacc_cluster::{ClusterSpec, GpuModel, ResourceVec};
use tacc_core::PlatformConfig;
use tacc_sched::QuotaMode;
use tacc_tcloud::TcloudClient;
use tacc_workload::{GroupId, GroupRoster, QosClass, TaskSchema};

fn main() {
    // A small cluster with tight static quotas so jobs visibly wait.
    let mut client = TcloudClient::with_profile(
        "campus",
        PlatformConfig {
            cluster: ClusterSpec::uniform(1, 4, GpuModel::A100, 8),
            roster: GroupRoster::campus_default(32),
            scheduler: tacc_sched::SchedulerConfig {
                quota: QuotaMode::Static,
                quotas: vec![16, 16, 0, 0, 0, 0, 0, 0],
                group_count: 8,
                ..Default::default()
            },
            ..PlatformConfig::default()
        },
    );

    // Group 0 saturates its 16-GPU quota with one long gang...
    let hog = TaskSchema::builder("hog", GroupId::from_index(0))
        .workers(2)
        .resources(ResourceVec::gpus_only(8))
        .est_duration_secs(40_000.0)
        .build()
        .expect("valid");
    let hog_id = client.submit(hog, 40_000.0).expect("submits");
    client.advance(600.0);

    // ...then asks for more: this job queues behind the quota.
    let starved = TaskSchema::builder("starved", GroupId::from_index(0))
        .resources(ResourceVec::gpus_only(8))
        .est_duration_secs(1_200.0)
        .build()
        .expect("valid");
    let starved_id = client.submit(starved, 1_200.0).expect("submits");

    // A neighbouring group's best-effort job runs fine meanwhile.
    let neighbour = TaskSchema::builder("neighbour", GroupId::from_index(1))
        .resources(ResourceVec::gpus_only(4))
        .qos(QosClass::BestEffort)
        .est_duration_secs(3_600.0)
        .build()
        .expect("valid");
    client.submit(neighbour, 3_600.0).expect("submits");
    client.advance(7_200.0);

    println!("== tcloud why: the scheduler explains a waiting job ==\n");
    for id in [hog_id, starved_id] {
        let out = client
            .run_command(&["why", &id.value().to_string()])
            .expect("why works");
        println!("$ tcloud why {}\n{}\n", id.value(), out.text());
    }

    println!("== tcloud events: the typed event stream of the stuck job ==\n");
    let out = client
        .run_command(&["events", &starved_id.value().to_string()])
        .expect("events work");
    println!("$ tcloud events {}\n{}\n", starved_id.value(), out.text());

    // Let everything drain, then inspect the telemetry.
    while client.platform_mut().step().is_some() {}

    println!("== decision trace: the last scheduling rounds ==\n");
    let platform = client.platform();
    for round in platform.scheduler().decision_trace().recent(5) {
        println!(
            "round {:>4} t={:>7.0}s wall={:>4}us queue={} started={:?} skips={}",
            round.round,
            round.at_secs,
            round.wall_micros,
            round.queue_len,
            round.started,
            round.skips.len()
        );
        for skip in &round.skips {
            println!("    {}: {}", skip.job, skip.reason);
        }
    }

    println!("\n== tcloud metrics: Prometheus exposition (excerpt) ==\n");
    let text = client.metrics_text();
    for line in text.lines().filter(|l| {
        l.starts_with("# TYPE")
            || l.starts_with("tacc_core_jobs")
            || l.starts_with("tacc_sched_rounds")
            || l.starts_with("tacc_cluster_")
            || l.starts_with("tacc_compiler_cache")
    }) {
        println!("{line}");
    }

    let report = client.platform().report();
    println!(
        "\nrun: {} rounds, {} events recorded ({} dropped), \
         round latency p50 ~{:.0}us over {} rounds",
        report.rounds,
        report.events_recorded,
        report.events_dropped,
        report.round_latency.quantile(0.5) * 1e6,
        report.round_latency.count
    );
}
