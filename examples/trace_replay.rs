//! Reproducibility: save a trace to JSON, reload it elsewhere, replay it
//! twice, and verify the reports are bit-identical.
//!
//! The paper's schema layer "guarantees consistent and reproducible task
//! execution"; this example extends that guarantee to whole experiments.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout)]

use tacc_core::{Platform, PlatformConfig};
use tacc_workload::{GenParams, Trace, TraceGenerator};

fn main() {
    // 1. Generate a trace and characterize it.
    let trace = TraceGenerator::new(GenParams::default(), 7).generate_days(2.0);
    let stats = trace.stats();
    println!(
        "generated {} submissions / {:.0} GPU-hours (median job {:.0}s, p95 {:.0}s)",
        trace.len(),
        stats.total_gpu_hours,
        stats.duration_summary.p50(),
        stats.duration_summary.p95()
    );

    // 2. Serialize — this is the artifact you would commit or share.
    let json = trace.to_json().expect("traces always serialize");
    println!("serialized to {} KiB of JSON", json.len() / 1024);

    // 3. A colleague reloads it and replays on their own machine.
    let reloaded = Trace::from_json(&json).expect("round-trips");
    assert_eq!(reloaded, trace, "byte-exact trace round-trip");

    let report_a = Platform::new(PlatformConfig::default()).run_trace(&reloaded);
    let report_b = Platform::new(PlatformConfig::default()).run_trace(&reloaded);
    assert_eq!(report_a, report_b, "same config + trace ⇒ identical report");

    println!(
        "replayed twice: {} completed, mean JCT {:.2} h, util {:.1}% — identical both times",
        report_a.completed,
        report_a.jct.mean() / 3600.0,
        report_a.mean_utilization * 100.0
    );

    // 4. The same trace under a different regime is a one-line change.
    let mut alt = PlatformConfig::default();
    alt.scheduler.quota = tacc_sched::QuotaMode::Borrowing;
    let report_c = Platform::new(alt).run_trace(&reloaded);
    println!(
        "same trace under borrowing quotas: mean JCT {:.2} h, {} preemptions",
        report_c.jct.mean() / 3600.0,
        report_c.preemptions
    );
}
