//! ML Productivity Goodput: how much of the fleet's GPU time became
//! forward training progress, and an itemized account of where the rest
//! went.
//!
//! Following the decomposition popularized for large TPU/GPU fleets,
//!
//! ```text
//! goodput = availability × throughput_efficiency × (1 − badput)
//! ```
//!
//! * **availability** — the fraction of fleet capacity
//!   (`total_gpus × horizon`) that was allocated to jobs (running,
//!   restoring or checkpointing on nodes);
//! * **throughput efficiency** — of the wall GPU-time spent in `Running`
//!   spans, the fraction that was forward progress (the rest is slowdown
//!   from interference, elastic shrink, re-executed lost work, staging);
//! * **badput** — the fraction of fleet capacity lost to itemized
//!   causes: queue wait, compilation, checkpoint write overhead, restart
//!   rework (restore + recovery), preemption gaps and idle reserved
//!   capacity.
//!
//! Everything derives from the span timelines of a [`SpanBook`] plus one
//! [`JobGoodputInput`] per job (GPU weight and useful service seconds),
//! so the report is a pure function of sim-time data — byte-stable
//! across replays.
//!
//! The badput itemization obeys a machine-checked conservation law
//! ([`goodput_conservation`]): every span lands in exactly one bucket
//! and the bucket sums partition the total span GPU-time **exactly**
//! under [`Dyadic`] rational arithmetic. Every finite `f64` is a dyadic
//! rational (`m × 2^e`), so sums and products of span durations can be
//! compared with zero tolerance — any float-drift shortcut in the
//! decomposition fails the law outright.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use tacc_workload::JobId;

use crate::events::push_json_f64;
use crate::span::{SpanBook, SpanPhase};

/// Gauge: composite goodput ratio in `[0, 1]`.
pub const GOODPUT_RATIO_METRIC: &str = "tacc_obs_goodput_ratio";
/// Gauge: availability factor of the goodput decomposition.
pub const GOODPUT_AVAILABILITY_METRIC: &str = "tacc_obs_goodput_availability";
/// Gauge: throughput-efficiency factor of the goodput decomposition.
pub const GOODPUT_EFFICIENCY_METRIC: &str = "tacc_obs_goodput_throughput_efficiency";
/// Gauge: total badput fraction of fleet capacity.
pub const GOODPUT_BADPUT_METRIC: &str = "tacc_obs_goodput_badput_ratio";
/// Counter: platform events evicted from the bounded event-bus ring.
pub const DROPPED_EVENTS_METRIC: &str = "tacc_obs_dropped_events_total";
/// Counter: lifecycle transitions evicted from the bounded transition
/// ring (a nonzero value means span timelines reconstructed from the
/// exported stream are incomplete).
pub const DROPPED_TRANSITIONS_METRIC: &str = "tacc_obs_dropped_transitions_total";

/// An itemized cause of badput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BadputCause {
    /// Time queued waiting for resources.
    QueueWait,
    /// Time in compilation/provisioning before first enqueue.
    Compile,
    /// Amortized checkpoint-write stalls while running.
    CheckpointOverhead,
    /// Restart rework: checkpoint restores plus post-fault recovery.
    RestartRework,
    /// Off-node gaps after quota-reclaim preemptions.
    Preemption,
    /// Fleet capacity no job was occupying.
    IdleReserved,
}

impl BadputCause {
    /// Every cause, in report order.
    pub const ALL: [BadputCause; 6] = [
        BadputCause::QueueWait,
        BadputCause::Compile,
        BadputCause::CheckpointOverhead,
        BadputCause::RestartRework,
        BadputCause::Preemption,
        BadputCause::IdleReserved,
    ];

    /// Stable snake_case name used in JSON reports and tables.
    pub fn name(self) -> &'static str {
        match self {
            BadputCause::QueueWait => "queue_wait",
            BadputCause::Compile => "compile",
            BadputCause::CheckpointOverhead => "checkpoint_overhead",
            BadputCause::RestartRework => "restart_rework",
            BadputCause::Preemption => "preemption",
            BadputCause::IdleReserved => "idle_reserved",
        }
    }
}

impl fmt::Display for BadputCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which badput bucket a span phase is charged to (`None` for phases
/// that are not badput: `Running` progress and the zero-width
/// `Scheduled` marker). This single function defines the partition the
/// conservation law checks.
pub fn badput_cause_of(phase: SpanPhase) -> Option<BadputCause> {
    match phase {
        SpanPhase::Queued => Some(BadputCause::QueueWait),
        SpanPhase::Compiling => Some(BadputCause::Compile),
        SpanPhase::Checkpointing => Some(BadputCause::CheckpointOverhead),
        SpanPhase::Restoring | SpanPhase::Recovering => Some(BadputCause::RestartRework),
        SpanPhase::Preempted => Some(BadputCause::Preemption),
        SpanPhase::Running | SpanPhase::Scheduled => None,
    }
}

/// Per-job inputs the span timelines cannot carry: the job's GPU weight
/// and how much useful service it accumulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobGoodputInput {
    /// GPUs the job occupies when running (weight for GPU-seconds).
    pub gpus: f64,
    /// Useful service seconds accumulated (service demand minus
    /// remaining). Jobs missing from the input map weigh 1 GPU with
    /// zero useful seconds.
    pub useful_secs: f64,
}

/// GPU-seconds of badput by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BadputBreakdown {
    /// GPU-seconds queued waiting for resources.
    pub queue_wait_gpu_secs: f64,
    /// GPU-seconds in compilation/provisioning.
    pub compile_gpu_secs: f64,
    /// GPU-seconds of amortized checkpoint-write stalls.
    pub checkpoint_overhead_gpu_secs: f64,
    /// GPU-seconds of restart rework (restore + recovery).
    pub restart_rework_gpu_secs: f64,
    /// GPU-seconds of off-node preemption gaps.
    pub preemption_gpu_secs: f64,
    /// GPU-seconds of unoccupied fleet capacity.
    pub idle_reserved_gpu_secs: f64,
}

impl BadputBreakdown {
    /// The value for one cause.
    pub fn get(&self, cause: BadputCause) -> f64 {
        match cause {
            BadputCause::QueueWait => self.queue_wait_gpu_secs,
            BadputCause::Compile => self.compile_gpu_secs,
            BadputCause::CheckpointOverhead => self.checkpoint_overhead_gpu_secs,
            BadputCause::RestartRework => self.restart_rework_gpu_secs,
            BadputCause::Preemption => self.preemption_gpu_secs,
            BadputCause::IdleReserved => self.idle_reserved_gpu_secs,
        }
    }

    fn add(&mut self, cause: BadputCause, gpu_secs: f64) {
        match cause {
            BadputCause::QueueWait => self.queue_wait_gpu_secs += gpu_secs,
            BadputCause::Compile => self.compile_gpu_secs += gpu_secs,
            BadputCause::CheckpointOverhead => self.checkpoint_overhead_gpu_secs += gpu_secs,
            BadputCause::RestartRework => self.restart_rework_gpu_secs += gpu_secs,
            BadputCause::Preemption => self.preemption_gpu_secs += gpu_secs,
            BadputCause::IdleReserved => self.idle_reserved_gpu_secs += gpu_secs,
        }
    }

    /// `(cause, gpu_secs)` pairs in report order.
    pub fn items(&self) -> [(BadputCause, f64); 6] {
        let mut out = [(BadputCause::QueueWait, 0.0); 6];
        for (slot, &cause) in out.iter_mut().zip(BadputCause::ALL.iter()) {
            *slot = (cause, self.get(cause));
        }
        out
    }

    /// Total badput GPU-seconds: by definition the sum of the itemized
    /// causes in report order, so itemization always sums to the total.
    pub fn total_gpu_secs(&self) -> f64 {
        BadputCause::ALL
            .iter()
            .fold(0.0, |acc, &cause| acc + self.get(cause))
    }
}

/// The ML Productivity Goodput decomposition of one platform run.
/// Derived entirely from sim-time quantities; equality is strict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputReport {
    /// Horizon the open spans were closed at, sim seconds.
    pub horizon_secs: f64,
    /// Fleet GPU count the capacity is computed from.
    pub total_gpus: f64,
    /// Fleet capacity: `total_gpus × horizon` GPU-seconds.
    pub capacity_gpu_secs: f64,
    /// GPU-seconds allocated to jobs on nodes (running + restoring +
    /// checkpointing).
    pub allocated_gpu_secs: f64,
    /// GPU-seconds of `Running` spans (wall time making progress).
    pub running_gpu_secs: f64,
    /// GPU-seconds of useful service accumulated across jobs.
    pub productive_gpu_secs: f64,
    /// `allocated / capacity` (1 when capacity is zero).
    pub availability: f64,
    /// `productive / running`, capped at 1 (1 when nothing ran).
    pub throughput_efficiency: f64,
    /// Waste share of accounted GPU-time:
    /// `badput total / (badput total + productive)`, 0 when nothing is
    /// accounted. The denominator is demand, not capacity: queue wait
    /// accrues GPU-time *off* capacity, so a contended cluster can owe
    /// more badput than it has GPU-seconds and a capacity ratio would
    /// saturate at 1.
    pub badput_fraction: f64,
    /// `availability × throughput_efficiency × (1 − badput_fraction)`.
    pub goodput: f64,
    /// Itemized badput GPU-seconds.
    pub badput: BadputBreakdown,
}

impl GoodputReport {
    /// Computes the decomposition from folded span timelines.
    ///
    /// `inputs` supplies each job's GPU weight and useful seconds; jobs
    /// absent from the map weigh 1 GPU with zero useful seconds.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_secs` or `total_gpus` is negative or
    /// non-finite.
    pub fn compute(
        book: &SpanBook,
        horizon_secs: f64,
        total_gpus: f64,
        inputs: &BTreeMap<JobId, JobGoodputInput>,
    ) -> GoodputReport {
        assert!(
            horizon_secs.is_finite() && horizon_secs >= 0.0,
            "horizon must be finite and nonnegative"
        );
        assert!(
            total_gpus.is_finite() && total_gpus >= 0.0,
            "total_gpus must be finite and nonnegative"
        );
        let capacity_gpu_secs = total_gpus * horizon_secs;
        let mut badput = BadputBreakdown::default();
        let mut running_gpu_secs = 0.0;
        let mut productive_gpu_secs = 0.0;
        let mut on_node_overhead_gpu_secs = 0.0;
        for (job, spans) in book.timelines(horizon_secs) {
            let input = inputs.get(&job).copied().unwrap_or(JobGoodputInput {
                gpus: 1.0,
                useful_secs: 0.0,
            });
            productive_gpu_secs += input.gpus * input.useful_secs;
            for span in spans {
                let gpu_secs = input.gpus * span.duration_secs();
                match badput_cause_of(span.phase) {
                    None => running_gpu_secs += gpu_secs,
                    Some(cause) => {
                        badput.add(cause, gpu_secs);
                        if matches!(span.phase, SpanPhase::Checkpointing | SpanPhase::Restoring) {
                            on_node_overhead_gpu_secs += gpu_secs;
                        }
                    }
                }
            }
        }
        let allocated_gpu_secs = running_gpu_secs + on_node_overhead_gpu_secs;
        badput.idle_reserved_gpu_secs = (capacity_gpu_secs - allocated_gpu_secs).max(0.0);
        let availability = if capacity_gpu_secs > 0.0 {
            (allocated_gpu_secs / capacity_gpu_secs).min(1.0)
        } else {
            1.0
        };
        let throughput_efficiency = if running_gpu_secs > 0.0 {
            (productive_gpu_secs / running_gpu_secs).min(1.0)
        } else {
            1.0
        };
        // Waste over demand (productive work + every itemized cause),
        // which keeps the ratio in [0, 1] even when queue-wait GPU-time
        // exceeds fleet capacity on a contended cluster.
        let accounted = badput.total_gpu_secs() + productive_gpu_secs;
        let badput_fraction = if accounted > 0.0 {
            badput.total_gpu_secs() / accounted
        } else {
            0.0
        };
        let goodput = (availability * throughput_efficiency * (1.0 - badput_fraction)).max(0.0);
        GoodputReport {
            horizon_secs,
            total_gpus,
            capacity_gpu_secs,
            allocated_gpu_secs,
            running_gpu_secs,
            productive_gpu_secs,
            availability,
            throughput_efficiency,
            badput_fraction,
            goodput,
            badput,
        }
    }

    /// Byte-deterministic compact JSON: fixed key order, shortest
    /// round-trip floats, dependency-free.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let field = |out: &mut String, key: &str, v: f64| {
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            push_json_f64(out, v);
        };
        out.push('{');
        field(&mut out, "horizon_secs", self.horizon_secs);
        out.push(',');
        field(&mut out, "total_gpus", self.total_gpus);
        out.push(',');
        field(&mut out, "capacity_gpu_secs", self.capacity_gpu_secs);
        out.push(',');
        field(&mut out, "allocated_gpu_secs", self.allocated_gpu_secs);
        out.push(',');
        field(&mut out, "running_gpu_secs", self.running_gpu_secs);
        out.push(',');
        field(&mut out, "productive_gpu_secs", self.productive_gpu_secs);
        out.push(',');
        field(&mut out, "availability", self.availability);
        out.push(',');
        field(
            &mut out,
            "throughput_efficiency",
            self.throughput_efficiency,
        );
        out.push(',');
        field(&mut out, "badput_fraction", self.badput_fraction);
        out.push(',');
        field(&mut out, "goodput", self.goodput);
        out.push_str(",\"badput_gpu_secs\":{");
        for (i, (cause, v)) in self.badput.items().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            field(&mut out, cause.name(), *v);
        }
        out.push_str("}}");
        out
    }
}

/// Machine-checks the badput conservation law: recomputed in exact
/// [`Dyadic`] arithmetic over the same spans, the itemized span-derived
/// badput buckets plus running time sum to the total span GPU-time —
/// i.e. [`badput_cause_of`] is a true partition and no GPU-second is
/// double-counted or lost. (`IdleReserved` is defined as
/// `capacity − allocated`, not span-derived, so it is outside this law.)
pub fn goodput_conservation(
    book: &SpanBook,
    horizon_secs: f64,
    inputs: &BTreeMap<JobId, JobGoodputInput>,
) -> Result<(), String> {
    let mut buckets: BTreeMap<&'static str, Dyadic> = BTreeMap::new();
    let mut running = Dyadic::ZERO;
    let mut total = Dyadic::ZERO;
    for (job, spans) in book.timelines(horizon_secs) {
        let gpus = inputs.get(&job).map(|i| i.gpus).unwrap_or(1.0);
        let weight = Dyadic::from_f64(gpus);
        for span in spans {
            let d = Dyadic::from_f64(span.end_secs) - Dyadic::from_f64(span.start_secs);
            let gpu_secs = weight * d;
            total = total + gpu_secs;
            match badput_cause_of(span.phase) {
                None => running = running + gpu_secs,
                Some(cause) => {
                    let entry = buckets.entry(cause.name()).or_insert(Dyadic::ZERO);
                    *entry = *entry + gpu_secs;
                }
            }
        }
    }
    let mut recombined = running;
    for v in buckets.values() {
        recombined = recombined + *v;
    }
    if recombined != total {
        return Err(
            "badput itemization does not partition total span GPU-time exactly".to_string(),
        );
    }
    Ok(())
}

/// An exact dyadic rational `num × 2^exp`. Every finite `f64` is one,
/// and sums/differences/products of dyadics are again dyadics, so span
/// accounting identities can be checked with **zero** tolerance — no
/// epsilon to hide a leak in. Arithmetic panics on (astronomically
/// unlikely) `i128` mantissa overflow rather than silently rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dyadic {
    num: i128,
    exp: i32,
}

impl Dyadic {
    /// Exact zero.
    pub const ZERO: Dyadic = Dyadic { num: 0, exp: 0 };

    /// Exact conversion of a finite `f64`.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(v: f64) -> Dyadic {
        assert!(v.is_finite(), "dyadic conversion of non-finite {v}");
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i128 } else { 1i128 };
        let biased = ((bits >> 52) & 0x7ff) as i32;
        let frac = (bits & ((1u64 << 52) - 1)) as i128;
        let (mant, exp) = if biased == 0 {
            (frac, -1074) // subnormal (or zero)
        } else {
            (frac | (1i128 << 52), biased - 1075)
        };
        Dyadic {
            num: sign * mant,
            exp,
        }
        .normalized()
    }

    fn normalized(mut self) -> Dyadic {
        if self.num == 0 {
            return Dyadic::ZERO;
        }
        while self.num % 2 == 0 {
            self.num /= 2;
            self.exp += 1;
        }
        self
    }

    /// Nearest `f64` (for diagnostics only — may round).
    pub fn to_f64_lossy(self) -> f64 {
        self.num as f64 * (self.exp as f64).exp2()
    }
}

/// Exact sum.
///
/// # Panics
///
/// Panics if the aligned mantissa overflows `i128`.
impl std::ops::Add for Dyadic {
    type Output = Dyadic;

    fn add(self, other: Dyadic) -> Dyadic {
        let (lo, hi) = if self.exp <= other.exp {
            (self, other)
        } else {
            (other, self)
        };
        let shift = u32::try_from(hi.exp - lo.exp).expect("dyadic exponent gap");
        let hi_num = hi
            .num
            .checked_shl(shift)
            .filter(|n| n >> shift == hi.num)
            .expect("dyadic mantissa overflow in add");
        Dyadic {
            num: lo.num.checked_add(hi_num).expect("dyadic overflow in add"),
            exp: lo.exp,
        }
        .normalized()
    }
}

/// Exact difference.
///
/// # Panics
///
/// Panics if the aligned mantissa overflows `i128`.
impl std::ops::Sub for Dyadic {
    type Output = Dyadic;

    fn sub(self, other: Dyadic) -> Dyadic {
        self + Dyadic {
            num: -other.num,
            exp: other.exp,
        }
    }
}

/// Exact product.
///
/// # Panics
///
/// Panics if the mantissa product overflows `i128`.
impl std::ops::Mul for Dyadic {
    type Output = Dyadic;

    // Exponents of a product add: (a·2^x)(b·2^y) = ab·2^(x+y).
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, other: Dyadic) -> Dyadic {
        Dyadic {
            num: self
                .num
                .checked_mul(other.num)
                .expect("dyadic overflow in mul"),
            exp: self.exp + other.exp,
        }
        .normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanConfig, TransitionEvent};
    use tacc_workload::{JobEventKind as K, JobState as S};

    fn ev(at: f64, job: u64, from: S, to: S, event: K) -> TransitionEvent {
        TransitionEvent {
            at_secs: at,
            job: JobId::from_value(job),
            from,
            to,
            event,
        }
    }

    fn one_job_book() -> SpanBook {
        let mut book = SpanBook::new(SpanConfig {
            restore_secs: 0.0,
            checkpoint_overhead_fraction: 0.25,
        });
        for r in [
            ev(0.0, 1, S::Submitted, S::Submitted, K::Submit),
            ev(10.0, 1, S::Submitted, S::Queued, K::Enqueue),
            ev(50.0, 1, S::Queued, S::Running, K::Start),
            ev(450.0, 1, S::Running, S::Completed, K::Complete),
        ] {
            book.observe(r);
        }
        book
    }

    #[test]
    fn decomposition_of_a_single_job() {
        let book = one_job_book();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            JobId::from_value(1),
            JobGoodputInput {
                gpus: 8.0,
                useful_secs: 240.0,
            },
        );
        // Fleet: 16 GPUs over 500 s. Job: 8 GPUs, wall run 400 s of
        // which 100 s is checkpoint writes, 300 s running, 240 s useful.
        let r = GoodputReport::compute(&book, 500.0, 16.0, &inputs);
        assert_eq!(r.capacity_gpu_secs, 8000.0);
        assert!((r.running_gpu_secs - 2400.0).abs() < 1e-6);
        assert!((r.allocated_gpu_secs - 3200.0).abs() < 1e-6);
        assert_eq!(r.productive_gpu_secs, 1920.0);
        assert!((r.availability - 0.4).abs() < 1e-9);
        assert!((r.throughput_efficiency - 0.8).abs() < 1e-9);
        assert!((r.badput.queue_wait_gpu_secs - 320.0).abs() < 1e-6);
        assert!((r.badput.compile_gpu_secs - 80.0).abs() < 1e-6);
        assert!((r.badput.checkpoint_overhead_gpu_secs - 800.0).abs() < 1e-6);
        assert_eq!(r.badput.preemption_gpu_secs, 0.0);
        assert!((r.badput.idle_reserved_gpu_secs - 4800.0).abs() < 1e-6);
        // Itemization sums to the total by definition.
        let total = r.badput.total_gpu_secs();
        assert_eq!(total, r.badput.items().iter().map(|(_, v)| v).sum::<f64>());
        assert!((r.badput_fraction - total / (total + 1920.0)).abs() < 1e-12);
        assert!(
            (r.goodput - r.availability * r.throughput_efficiency * (1.0 - r.badput_fraction))
                .abs()
                < 1e-12
        );
        goodput_conservation(&book, 500.0, &inputs).unwrap();
    }

    #[test]
    fn empty_book_is_all_idle() {
        let book = SpanBook::new(SpanConfig::plain());
        let r = GoodputReport::compute(&book, 100.0, 4.0, &BTreeMap::new());
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.throughput_efficiency, 1.0);
        assert_eq!(r.badput.idle_reserved_gpu_secs, 400.0);
        assert_eq!(r.badput_fraction, 1.0);
        assert_eq!(r.goodput, 0.0);
        goodput_conservation(&book, 100.0, &BTreeMap::new()).unwrap();
    }

    #[test]
    fn json_is_byte_stable_and_ordered() {
        let book = one_job_book();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            JobId::from_value(1),
            JobGoodputInput {
                gpus: 8.0,
                useful_secs: 240.0,
            },
        );
        let a = GoodputReport::compute(&book, 500.0, 16.0, &inputs).to_json();
        let b = GoodputReport::compute(&book, 500.0, 16.0, &inputs).to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"horizon_secs\":500,"), "{a}");
        let keys = [
            "queue_wait",
            "compile",
            "checkpoint_overhead",
            "restart_rework",
            "preemption",
            "idle_reserved",
        ];
        let mut last = 0;
        for key in keys {
            let at = a.find(&format!("\"{key}\":")).expect(key);
            assert!(at > last, "badput keys out of order: {a}");
            last = at;
        }
    }

    #[test]
    fn dyadic_arithmetic_is_exact() {
        // 0.1 + 0.2 != 0.3 in f64, but each value is an exact dyadic and
        // the identity (a + b) - b == a holds exactly.
        let a = Dyadic::from_f64(0.1);
        let b = Dyadic::from_f64(0.2);
        assert_eq!(a + b - b, a);
        assert_ne!(a + b, Dyadic::from_f64(0.3));
        assert_eq!(
            Dyadic::from_f64(0.5) * Dyadic::from_f64(8.0),
            Dyadic::from_f64(4.0)
        );
        assert_eq!(Dyadic::from_f64(0.0), Dyadic::ZERO);
        assert_eq!(Dyadic::from_f64(-1.5) + Dyadic::from_f64(1.5), Dyadic::ZERO);
        assert!((Dyadic::from_f64(0.1).to_f64_lossy() - 0.1).abs() < 1e-18);
    }

    #[test]
    fn every_phase_has_exactly_one_bucket() {
        // The partition property behind the conservation law: each phase
        // maps to exactly one bucket (badput cause or running/none).
        for phase in SpanPhase::ALL {
            let cause = badput_cause_of(phase);
            match phase {
                SpanPhase::Running | SpanPhase::Scheduled => assert!(cause.is_none()),
                _ => assert!(cause.is_some(), "{phase} unbucketed"),
            }
        }
    }
}
