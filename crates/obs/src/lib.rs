//! # tacc-obs
//!
//! Structured telemetry for the `tacc-rs` platform: the observability
//! substrate the operational sections of the paper lean on ("why is my
//! job not running", per-layer counters, scheduler decision latency).
//!
//! Three pillars:
//!
//! * **Typed event bus** ([`EventBus`], [`PlatformEvent`]): every job
//!   lifecycle transition (submitted, compiled, queued, placed,
//!   preempted, completed, ...) is recorded as a typed event stamped
//!   with simulated time and a monotonically increasing sequence
//!   number. The bus is a bounded ring — old records are dropped, never
//!   new ones lost silently (a drop counter is kept) — and exports to
//!   JSONL for offline analysis.
//! * **Operational metrics registry** ([`MetricsRegistry`]): counters,
//!   gauges and log-scale histograms keyed by name + labels, with a
//!   [`MetricsRegistry::snapshot`] API and Prometheus-style text
//!   exposition. Metric names follow the `tacc_<layer>_<name>`
//!   convention.
//! * **Scheduler decision tracing** ([`RoundTrace`], [`SkipReason`],
//!   [`DecisionTraceLog`]): every scheduling round records what
//!   started, what was preempted and — crucially — *why each queued
//!   job was skipped*, plus the wall-clock latency of the round.
//! * **Span timelines and goodput** ([`SpanBook`], [`GoodputReport`]):
//!   the lifecycle transition stream folds into per-job span timelines
//!   whose durations partition each job's makespan exactly, and
//!   aggregates into the ML Productivity Goodput decomposition
//!   `availability × throughput_efficiency × (1 − badput)` with badput
//!   itemized by cause — both replayable byte-identically from an
//!   exported transition stream.
//!
//! ## Example
//!
//! ```
//! use tacc_obs::{EventBus, MetricsRegistry, PlatformEvent};
//! use tacc_workload::{GroupId, JobId};
//!
//! let mut bus = EventBus::new(1024);
//! bus.record(0.0, PlatformEvent::Submitted {
//!     job: JobId::from_value(1),
//!     group: GroupId::from_index(0),
//!     name: "train-llm".to_string(),
//! });
//! assert_eq!(bus.len(), 1);
//!
//! let reg = MetricsRegistry::new();
//! let jobs = reg.counter("tacc_core_jobs_submitted_total", &[]);
//! jobs.inc();
//! assert!(reg.expose().contains("tacc_core_jobs_submitted_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod goodput;
mod metrics;
mod span;
mod trace;

pub use events::{
    conservation, ConservationCheck, EventBus, EventRecord, PlatformEvent, RejectReason,
};
pub use goodput::{
    badput_cause_of, goodput_conservation, BadputBreakdown, BadputCause, Dyadic, GoodputReport,
    JobGoodputInput, DROPPED_EVENTS_METRIC, DROPPED_TRANSITIONS_METRIC,
    GOODPUT_AVAILABILITY_METRIC, GOODPUT_BADPUT_METRIC, GOODPUT_EFFICIENCY_METRIC,
    GOODPUT_RATIO_METRIC,
};
pub use metrics::{
    BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    ScrapedCounter, ScrapedGauge, ScrapedHistogram,
};
pub use span::{
    span_conservation, JobTimeline, Span, SpanBook, SpanConfig, SpanPhase, TransitionEvent,
};
pub use trace::{DecisionTraceLog, JobSkip, RoundTrace, SkipReason};
