//! Operational metrics: counters, gauges and log-scale histograms keyed
//! by name + labels, with snapshot and Prometheus-style text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of a
//! shared cell, so instrumented layers hold their handles directly and
//! never touch the registry on the hot path. All metric names follow the
//! `tacc_<layer>_<name>` convention enforced (in debug builds) at
//! registration time.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log-2 histogram buckets: bounds `1e-6 * 2^i` seconds for
/// `i in 0..46`, spanning one microsecond to roughly 400 days. Values
/// above the last bound land in the implicit `+Inf` overflow bucket.
const HIST_BUCKETS: usize = 46;

fn bucket_bound(i: usize) -> f64 {
    1e-6 * (1u64 << i) as f64
}

fn bucket_index(v: f64) -> usize {
    let mut i = 0;
    while i < HIST_BUCKETS - 1 && v > bucket_bound(i) {
        i += 1;
    }
    i
}

/// Monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// New free-standing counter at zero (registry-less use in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value that may go up or down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<Mutex<f64>>);

impl Gauge {
    /// New free-standing gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        *self.0.lock().expect("gauge lock") = v;
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        *self.0.lock().expect("gauge lock") += delta;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        *self.0.lock().expect("gauge lock")
    }
}

#[derive(Debug, Default)]
struct HistInner {
    counts: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Log-scale (base-2) histogram of nonnegative samples, typically
/// latencies in seconds.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistInner>>);

impl Histogram {
    /// New free-standing histogram with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Negative samples are clamped to zero.
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let mut h = self.0.lock().expect("histogram lock");
        if h.counts.is_empty() {
            h.counts = vec![0; HIST_BUCKETS];
        }
        if v > bucket_bound(HIST_BUCKETS - 1) {
            h.overflow += 1;
        } else {
            let i = bucket_index(v);
            h.counts[i] += 1;
        }
        if h.count == 0 {
            h.min = v;
            h.max = v;
        } else {
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        h.count += 1;
        h.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram lock").count
    }

    /// Immutable snapshot of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0.lock().expect("histogram lock");
        // Trim trailing empty buckets so snapshots (and exposition) stay
        // proportional to the observed range, not the full 46 bounds.
        let last = h
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        let buckets = (0..last)
            .map(|i| BucketCount {
                le: bucket_bound(i),
                count: h.counts[i],
            })
            .collect();
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0.0 } else { h.min },
            max: if h.count == 0 { 0.0 } else { h.max },
            buckets,
        }
    }
}

/// One histogram bucket: number of samples `<= le` (non-cumulative count
/// for this bucket alone; exposition accumulates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Upper bound of the bucket (seconds).
    pub le: f64,
    /// Samples that fell in this bucket.
    pub count: u64,
}

/// Serializable view of a [`Histogram`] at a point in time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Per-bucket counts, trimmed after the last non-empty bucket.
    /// Samples above the last listed bound are in the implicit overflow
    /// bucket (`count - sum of bucket counts`).
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q in [0, 1]`: the upper bound of the bucket
    /// containing the `q`-th sample (`max` for the overflow bucket,
    /// 0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= target {
                return b.le.min(self.max);
            }
        }
        self.max
    }
}

/// Metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        debug_assert!(valid_metric_name(name), "invalid metric name: {name}");
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        render_series(&self.name, &self.labels, &[])
    }
}

fn render_series(name: &str, labels: &[(String, String)], extra: &[(&str, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{v}\"")));
    format!("{name}{{{}}}", parts.join(","))
}

/// True when `name` is a valid `tacc_<layer>_<name>` metric name:
/// lowercase ASCII, digits and underscores only, `tacc_` prefix.
pub(crate) fn valid_metric_name(name: &str) -> bool {
    name.starts_with("tacc_")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, Histogram>,
}

/// Shared registry of named metrics. Cloning shares the underlying map;
/// `counter`/`gauge`/`histogram` are get-or-create, so the same
/// name + labels always yields a handle to the same cell.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry(Arc<Mutex<RegistryInner>>);

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the counter `name{labels}`, created at zero on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        self.0
            .lock()
            .expect("registry lock")
            .counters
            .entry(id)
            .or_default()
            .clone()
    }

    /// Handle to the gauge `name{labels}`, created at zero on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        self.0
            .lock()
            .expect("registry lock")
            .gauges
            .entry(id)
            .or_default()
            .clone()
    }

    /// Handle to the histogram `name{labels}`, created empty on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        self.0
            .lock()
            .expect("registry lock")
            .histograms
            .entry(id)
            .or_default()
            .clone()
    }

    /// Serializable snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.0.lock().expect("registry lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| ScrapedCounter {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| ScrapedGauge {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| ScrapedHistogram {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    hist: h.snapshot(),
                })
                .collect(),
        }
    }

    /// Prometheus-style text exposition of every registered metric.
    pub fn expose(&self) -> String {
        let inner = self.0.lock().expect("registry lock");
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut typed = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (id, c) in &inner.counters {
            typed(&mut out, &id.name, "counter");
            out.push_str(&format!("{} {}\n", id.render(), c.get()));
        }
        for (id, g) in &inner.gauges {
            typed(&mut out, &id.name, "gauge");
            out.push_str(&format!("{} {}\n", id.render(), g.get()));
        }
        for (id, h) in &inner.histograms {
            typed(&mut out, &id.name, "histogram");
            let snap = h.snapshot();
            let mut cum = 0u64;
            for b in &snap.buckets {
                cum += b.count;
                let series = render_series(
                    &format!("{}_bucket", id.name),
                    &id.labels,
                    &[("le", format!("{}", b.le))],
                );
                out.push_str(&format!("{series} {cum}\n"));
            }
            let inf = render_series(
                &format!("{}_bucket", id.name),
                &id.labels,
                &[("le", "+Inf".to_string())],
            );
            out.push_str(&format!("{inf} {}\n", snap.count));
            out.push_str(&format!(
                "{} {}\n",
                render_series(&format!("{}_sum", id.name), &id.labels, &[]),
                snap.sum
            ));
            out.push_str(&format!(
                "{} {}\n",
                render_series(&format!("{}_count", id.name), &id.labels, &[]),
                snap.count
            ));
        }
        out
    }
}

/// Scraped value of one counter series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrapedCounter {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Counter value at scrape time.
    pub value: u64,
}

/// Scraped value of one gauge series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrapedGauge {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Gauge value at scrape time.
    pub value: f64,
}

/// Scraped distribution of one histogram series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrapedHistogram {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Distribution at scrape time.
    pub hist: HistogramSnapshot,
}

/// Point-in-time view of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name then labels.
    pub counters: Vec<ScrapedCounter>,
    /// All gauges, sorted by name then labels.
    pub gauges: Vec<ScrapedGauge>,
    /// All histograms, sorted by name then labels.
    pub histograms: Vec<ScrapedHistogram>,
}

impl MetricsSnapshot {
    /// Value of the counter `name` with no labels, if scraped.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels.is_empty())
            .map(|c| c.value)
    }

    /// Value of the gauge `name` with no labels, if scraped.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// Distribution of the histogram `name` with no labels, if scraped.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.labels.is_empty())
            .map(|h| &h.hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("tacc_test_hits_total", &[]);
        let b = reg.counter("tacc_test_hits_total", &[]);
        a.inc();
        b.inc_by(4);
        // Same name + labels -> same underlying cell.
        assert_eq!(a.get(), 5);
        let other = reg.counter("tacc_test_hits_total", &[("layer", "sched")]);
        other.inc();
        assert_eq!(other.get(), 1);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_semantics() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("tacc_test_depth", &[]);
        g.set(7.5);
        g.add(-2.5);
        assert!((g.get() - 5.0).abs() < 1e-12);
        assert!((reg.gauge("tacc_test_depth", &[]).get() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0.0, 1e-6, 1e-3, 1e-3, 0.5, 2.0, 1000.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert!((s.sum - 1002.502001).abs() < 1e-6);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1000.0);
        assert!((s.mean() - s.sum / 7.0).abs() < 1e-12);
        // Bucket counts account for every sample (no overflow here).
        let total: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 7);
        // Median is on the order of the 1e-3 samples.
        let q50 = s.quantile(0.5);
        assert!((1e-3..1e-2).contains(&q50), "q50 = {q50}");
        assert_eq!(s.quantile(1.0), 1000.0);
        // Negative samples clamp to zero instead of panicking.
        h.observe(-3.0);
        assert_eq!(h.snapshot().min, 0.0);
    }

    #[test]
    fn histogram_empty_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn bucket_bounds_are_log2() {
        assert!((bucket_bound(0) - 1e-6).abs() < 1e-18);
        assert!((bucket_bound(1) - 2e-6).abs() < 1e-18);
        assert!((bucket_bound(10) - 1024e-6).abs() < 1e-12);
        for i in 1..HIST_BUCKETS {
            assert!((bucket_bound(i) / bucket_bound(i - 1) - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exposition_format() {
        let reg = MetricsRegistry::new();
        reg.counter("tacc_sched_rounds_total", &[]).inc_by(3);
        reg.gauge("tacc_cluster_free_gpus", &[]).set(128.0);
        let h = reg.histogram("tacc_sched_round_latency_seconds", &[]);
        h.observe(1e-4);
        h.observe(1e-4);
        let text = reg.expose();
        assert!(text.contains("# TYPE tacc_sched_rounds_total counter\n"));
        assert!(text.contains("tacc_sched_rounds_total 3\n"));
        assert!(text.contains("# TYPE tacc_cluster_free_gpus gauge\n"));
        assert!(text.contains("tacc_cluster_free_gpus 128\n"));
        assert!(text.contains("# TYPE tacc_sched_round_latency_seconds histogram\n"));
        assert!(text.contains("tacc_sched_round_latency_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("tacc_sched_round_latency_seconds_count 2\n"));
        // Cumulative bucket lines end at the total count.
        assert!(text.contains("_bucket{le=\"0.000128\"} 2\n"), "{text}");
    }

    #[test]
    fn exposition_labels_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter(
            "tacc_exec_faults_total",
            &[("runtime", "mpi"), ("kind", "node")],
        )
        .inc();
        let text = reg.expose();
        assert!(
            text.contains("tacc_exec_faults_total{kind=\"node\",runtime=\"mpi\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_lookup() {
        let reg = MetricsRegistry::new();
        reg.counter("tacc_core_jobs_submitted_total", &[]).inc_by(9);
        reg.gauge("tacc_cluster_fragmentation", &[]).set(0.25);
        reg.histogram("tacc_core_queue_delay_seconds", &[])
            .observe(3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("tacc_core_jobs_submitted_total"), Some(9));
        assert_eq!(snap.gauge("tacc_cluster_fragmentation"), Some(0.25));
        assert_eq!(
            snap.histogram("tacc_core_queue_delay_seconds")
                .map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.counter("tacc_core_nope"), None);
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("tacc_sched_rounds_total"));
        assert!(!valid_metric_name("sched_rounds_total"));
        assert!(!valid_metric_name("tacc_Sched_rounds"));
        assert!(!valid_metric_name("tacc_sched-rounds"));
    }
}
