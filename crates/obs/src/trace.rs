//! Scheduler decision tracing: per-round records of what started, what
//! was preempted, and *why every examined job was skipped*, plus the
//! wall-clock latency of the round. This is the substrate behind
//! `tcloud why <job>`.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use tacc_workload::{GroupId, JobId};

/// Why the scheduler passed over a queued job in one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SkipReason {
    /// The owning group's quota (plus any borrowable headroom) cannot
    /// cover the request right now.
    QuotaExhausted {
        /// Owning group.
        group: GroupId,
        /// GPUs the group is currently using.
        used: u32,
        /// The group's guaranteed GPU quota.
        quota: u32,
        /// GPUs this request would add.
        demand: u32,
    },
    /// No placement exists on the current free capacity.
    NoFeasiblePlacement {
        /// Workers requested.
        workers: u32,
        /// GPUs per worker requested.
        gpus_per_worker: u32,
        /// Total free GPUs cluster-wide.
        free_gpus: u32,
        /// Largest contiguous free block on any single node.
        largest_free_block: u32,
    },
    /// A backfill start would overrun a blocked job's reservation.
    BackfillBlocked {
        /// Simulated time this job would end if started now (absolute).
        est_end_secs: f64,
        /// Expected start of the blocked job holding the reservation
        /// (absolute simulated time).
        shadow_secs: f64,
    },
    /// Strict FIFO (no backfill): a job ahead in the queue is stuck, so
    /// everything behind it waits.
    HeadOfLineBlocked {
        /// The job blocking the head of the queue.
        behind: JobId,
    },
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::QuotaExhausted {
                group,
                used,
                quota,
                demand,
            } => write!(
                f,
                "quota exhausted: {group} using {used}/{quota} GPUs, +{demand} requested"
            ),
            SkipReason::NoFeasiblePlacement {
                workers,
                gpus_per_worker,
                free_gpus,
                largest_free_block,
            } => write!(
                f,
                "no feasible placement: needs {workers}x{gpus_per_worker} GPUs, \
                 {free_gpus} free (largest block {largest_free_block})"
            ),
            SkipReason::BackfillBlocked {
                est_end_secs,
                shadow_secs,
            } => write!(
                f,
                "backfill window blocked: would run until t={est_end_secs:.0}s, \
                 past the reservation shadow at t={shadow_secs:.0}s"
            ),
            SkipReason::HeadOfLineBlocked { behind } => {
                write!(
                    f,
                    "head-of-line blocked behind {behind} (backfill disabled)"
                )
            }
        }
    }
}

/// One skipped job in a round, with the reason.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSkip {
    /// The skipped job.
    pub job: JobId,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Everything one scheduling round decided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Scheduler round counter at the time of the trace.
    pub round: u64,
    /// Simulated time of the round, seconds.
    pub at_secs: f64,
    /// Wall-clock latency of the round, microseconds (real time spent
    /// deciding, the T4 measurement).
    pub wall_micros: u64,
    /// Queue depth when the round began.
    pub queue_len: u64,
    /// Jobs started this round.
    pub started: Vec<JobId>,
    /// Jobs preempted this round.
    pub preempted: Vec<JobId>,
    /// Jobs examined and skipped this round, with reasons.
    pub skips: Vec<JobSkip>,
}

/// Bounded log of [`RoundTrace`]s plus the latest skip reason per job
/// (kept even after the round itself ages out of the ring), so
/// "why is my job not running" always has an answer.
#[derive(Debug)]
pub struct DecisionTraceLog {
    capacity: usize,
    rounds: VecDeque<RoundTrace>,
    dropped: u64,
    latest_skip: BTreeMap<JobId, (f64, SkipReason)>,
}

impl DecisionTraceLog {
    /// New log retaining at most `capacity` round traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        DecisionTraceLog {
            capacity: capacity.max(1),
            rounds: VecDeque::new(),
            dropped: 0,
            latest_skip: BTreeMap::new(),
        }
    }

    /// Records a round. Jobs that started stop being "skipped"; jobs in
    /// `trace.skips` get their latest reason updated.
    ///
    /// Returns the round evicted to make room, if the ring was full — hot
    /// callers recycle its vector allocations for the next round's buffers
    /// (its latest-skip contributions are already folded in and survive).
    pub fn push(&mut self, trace: RoundTrace) -> Option<RoundTrace> {
        for id in &trace.started {
            self.latest_skip.remove(id);
        }
        for s in &trace.skips {
            self.latest_skip.insert(s.job, (trace.at_secs, s.reason));
        }
        let evicted = if self.rounds.len() == self.capacity {
            self.dropped += 1;
            self.rounds.pop_front()
        } else {
            None
        };
        self.rounds.push_back(trace);
        evicted
    }

    /// Forgets a job's latest skip reason (terminal state reached).
    pub fn forget_job(&mut self, job: JobId) {
        self.latest_skip.remove(&job);
    }

    /// Most recent skip reason for `job`, with the simulated time it
    /// was recorded.
    pub fn latest_skip(&self, job: JobId) -> Option<(f64, SkipReason)> {
        self.latest_skip.get(&job).copied()
    }

    /// Retained round traces, oldest first.
    pub fn rounds(&self) -> impl Iterator<Item = &RoundTrace> {
        self.rounds.iter()
    }

    /// The `n` most recent round traces, oldest first.
    pub fn recent(&self, n: usize) -> Vec<&RoundTrace> {
        let skip = self.rounds.len().saturating_sub(n);
        self.rounds.iter().skip(skip).collect()
    }

    /// Round traces evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained round traces.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when no round has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(n: u64) -> JobId {
        JobId::from_value(n)
    }

    fn round(n: u64, at: f64, started: Vec<JobId>, skips: Vec<JobSkip>) -> RoundTrace {
        RoundTrace {
            round: n,
            at_secs: at,
            wall_micros: 10,
            queue_len: skips.len() as u64,
            started,
            preempted: vec![],
            skips,
        }
    }

    #[test]
    fn latest_skip_tracks_and_clears() {
        let mut log = DecisionTraceLog::new(8);
        let reason = SkipReason::QuotaExhausted {
            group: GroupId::from_index(3),
            used: 40,
            quota: 32,
            demand: 8,
        };
        log.push(round(
            1,
            10.0,
            vec![],
            vec![JobSkip {
                job: job(1),
                reason,
            }],
        ));
        let (at, r) = log.latest_skip(job(1)).expect("skip recorded");
        assert_eq!(at, 10.0);
        assert!(r.to_string().contains("using 40/32 GPUs"));
        // The job starts in a later round: no longer skipped.
        log.push(round(2, 20.0, vec![job(1)], vec![]));
        assert!(log.latest_skip(job(1)).is_none());
    }

    #[test]
    fn ring_bounds_rounds_but_keeps_latest_skip() {
        let mut log = DecisionTraceLog::new(2);
        let reason = SkipReason::HeadOfLineBlocked { behind: job(9) };
        log.push(round(
            1,
            1.0,
            vec![],
            vec![JobSkip {
                job: job(5),
                reason,
            }],
        ));
        log.push(round(2, 2.0, vec![], vec![]));
        log.push(round(3, 3.0, vec![], vec![]));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        // The skip from the evicted round is still queryable.
        assert!(log.latest_skip(job(5)).is_some());
        log.forget_job(job(5));
        assert!(log.latest_skip(job(5)).is_none());
    }

    #[test]
    fn skip_reason_rendering() {
        let r = SkipReason::NoFeasiblePlacement {
            workers: 4,
            gpus_per_worker: 8,
            free_gpus: 12,
            largest_free_block: 6,
        };
        assert_eq!(
            r.to_string(),
            "no feasible placement: needs 4x8 GPUs, 12 free (largest block 6)"
        );
        let r = SkipReason::BackfillBlocked {
            est_end_secs: 3600.0,
            shadow_secs: 1200.0,
        };
        assert!(r.to_string().contains("reservation shadow at t=1200s"));
    }

    #[test]
    fn recent_returns_tail() {
        let mut log = DecisionTraceLog::new(8);
        for n in 1..=5 {
            log.push(round(n, n as f64, vec![], vec![]));
        }
        let tail = log.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].round, 4);
        assert_eq!(tail[1].round, 5);
    }
}
