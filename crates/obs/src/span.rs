//! Causal job-span timelines folded from the lifecycle transition stream.
//!
//! A [`SpanBook`] consumes applied lifecycle transitions — the
//! `(at_secs, job, from, to, event)` records the core engine's single
//! state-write site emits — and folds them, per job, into a contiguous
//! sequence of [`Span`]s: `Compiling`, `Queued`, `Scheduled`, `Running`,
//! `Checkpointing`, `Restoring`, `Preempted`, `Recovering`. Each span
//! carries its sim-time bounds, the lifecycle event that opened it, and
//! a human-readable attribution tag.
//!
//! The fold is a pure function of the transition stream plus a static
//! [`SpanConfig`], so a timeline reconstructed from an exported
//! transition JSONL (via [`SpanBook::from_transitions_jsonl`]) is
//! byte-identical to the one folded live. Records that do not name an
//! edge of the workload transition matrix are counted and ignored —
//! rejected (illegal) events can never open or close a span.
//!
//! ## Span derivation rules
//!
//! | Event                | Effect on the open span                        |
//! |----------------------|------------------------------------------------|
//! | `submit`             | opens `Compiling` (timeline anchor)            |
//! | `enqueue`            | closes the open span, opens `Queued`           |
//! | `start`              | closes `Queued`, emits a zero-width            |
//! |                      | `Scheduled` marker, opens a running interval   |
//! | `preempt`            | closes the running interval, opens `Preempted` |
//! | `interrupt`          | closes the running interval, opens `Recovering`|
//! | terminal events      | close the open span                            |
//!
//! Closing a running interval `[t0, t1]` splits it deterministically:
//! a leading `Restoring` span of `min(restore_secs, t1 - t0)` when the
//! run resumed after an interruption, a trailing `Checkpointing` span
//! of `checkpoint_overhead_fraction` of the remainder (the amortized
//! checkpoint-write stretch), and `Running` in between. Adjacent spans
//! share their boundary values bitwise, so per-job span durations
//! partition the job's makespan *exactly* — see [`span_conservation`]
//! and the `Dyadic` arithmetic in the goodput module.

use std::collections::BTreeMap;
use std::fmt;

use tacc_workload::{JobEventKind, JobId, JobState, TRANSITION_MATRIX};

use crate::events::push_json_f64;
use crate::goodput::Dyadic;

/// The phase a job-span timeline attributes an interval of sim time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanPhase {
    /// Admission accepted the job; the compiler/provisioner owns it.
    Compiling,
    /// Waiting in the scheduler queue for resources.
    Queued,
    /// Zero-width marker: the instant a placement was committed.
    Scheduled,
    /// On nodes, making forward progress (includes any slowdown).
    Running,
    /// On nodes, stalled writing periodic checkpoints (amortized).
    Checkpointing,
    /// On nodes, restoring the previous checkpoint after a resume.
    Restoring,
    /// Off nodes after a quota reclaim, waiting to re-queue.
    Preempted,
    /// Off nodes after a fault, waiting to re-queue.
    Recovering,
}

impl SpanPhase {
    /// Every phase, in display order.
    pub const ALL: [SpanPhase; 8] = [
        SpanPhase::Compiling,
        SpanPhase::Queued,
        SpanPhase::Scheduled,
        SpanPhase::Running,
        SpanPhase::Checkpointing,
        SpanPhase::Restoring,
        SpanPhase::Preempted,
        SpanPhase::Recovering,
    ];

    fn name(self) -> &'static str {
        match self {
            SpanPhase::Compiling => "Compiling",
            SpanPhase::Queued => "Queued",
            SpanPhase::Scheduled => "Scheduled",
            SpanPhase::Running => "Running",
            SpanPhase::Checkpointing => "Checkpointing",
            SpanPhase::Restoring => "Restoring",
            SpanPhase::Preempted => "Preempted",
            SpanPhase::Recovering => "Recovering",
        }
    }

    /// The static attribution tag for spans of this phase: which part of
    /// the platform the interval is charged to.
    pub fn attribution(self) -> &'static str {
        match self {
            SpanPhase::Compiling => "compiler provisioning",
            SpanPhase::Queued => "scheduler backlog",
            SpanPhase::Scheduled => "placement commit",
            SpanPhase::Running => "useful execution",
            SpanPhase::Checkpointing => "checkpoint write overhead (amortized)",
            SpanPhase::Restoring => "checkpoint restore",
            SpanPhase::Preempted => "quota reclaim",
            SpanPhase::Recovering => "node failure recovery",
        }
    }
}

impl fmt::Display for SpanPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One attributed interval of a job's timeline. Half-open `[start, end)`;
/// zero-width spans (`start == end`) mark instantaneous phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// What the interval is attributed to.
    pub phase: SpanPhase,
    /// Interval start, sim seconds.
    pub start_secs: f64,
    /// Interval end, sim seconds.
    pub end_secs: f64,
    /// The lifecycle event that opened this span (for the split parts of
    /// a running interval, the `start` event that opened the interval).
    pub cause: JobEventKind,
}

impl Span {
    /// Interval width in sim seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }

    /// The static attribution tag (delegates to the phase).
    pub fn attribution(&self) -> &'static str {
        self.phase.attribution()
    }

    fn write_json(&self, out: &mut String, job: JobId) {
        out.push_str(&format!("{{\"job\":{},\"phase\":\"", job.value()));
        out.push_str(self.phase.name());
        out.push_str("\",\"start_secs\":");
        push_json_f64(out, self.start_secs);
        out.push_str(",\"end_secs\":");
        push_json_f64(out, self.end_secs);
        out.push_str(&format!(
            ",\"cause\":\"{}\",\"attribution\":\"{}\"}}",
            self.cause,
            self.attribution()
        ));
    }
}

/// One applied lifecycle transition, as the span fold consumes it. The
/// core engine feeds these from its transition log; the JSONL parser
/// reconstructs them from an exported stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionEvent {
    /// Simulated time of the transition, seconds.
    pub at_secs: f64,
    /// The job that transitioned.
    pub job: JobId,
    /// State before the event.
    pub from: JobState,
    /// State after the event.
    pub to: JobState,
    /// The event kind that drove the transition.
    pub event: JobEventKind,
}

impl TransitionEvent {
    /// Whether `(from, event, to)` is an edge of the workload transition
    /// matrix. The span fold ignores records that are not: a corrupted or
    /// adversarial stream cannot open or close spans.
    pub fn is_legal(&self) -> bool {
        TRANSITION_MATRIX
            .iter()
            .any(|&(f, k, t)| f == self.from && k == self.event && t == self.to)
    }
}

/// Static parameters of the span fold, fixed for a whole platform run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanConfig {
    /// One-time restore cost a resumed run pays first (sim seconds);
    /// carved off the front of resumed running intervals as `Restoring`.
    pub restore_secs: f64,
    /// Fraction of each running interval's wall time spent writing
    /// periodic checkpoints; carved off the back as `Checkpointing`.
    /// Must lie in `[0, 1)`.
    pub checkpoint_overhead_fraction: f64,
}

impl SpanConfig {
    /// A config that never splits running intervals (no checkpointing).
    pub fn plain() -> Self {
        SpanConfig {
            restore_secs: 0.0,
            checkpoint_overhead_fraction: 0.0,
        }
    }
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig::plain()
    }
}

#[derive(Debug, Clone, Copy)]
enum OpenSpan {
    Simple {
        phase: SpanPhase,
        start_secs: f64,
        cause: JobEventKind,
    },
    RunningInterval {
        start_secs: f64,
        resumed: bool,
    },
}

impl OpenSpan {
    fn start_secs(&self) -> f64 {
        match *self {
            OpenSpan::Simple { start_secs, .. } | OpenSpan::RunningInterval { start_secs, .. } => {
                start_secs
            }
        }
    }
}

/// One job's folded timeline: closed spans plus the currently open one.
#[derive(Debug, Clone)]
pub struct JobTimeline {
    spans: Vec<Span>,
    open: Option<OpenSpan>,
    interruptions: u64,
}

impl JobTimeline {
    fn new() -> Self {
        JobTimeline {
            spans: Vec::new(),
            open: None,
            interruptions: 0,
        }
    }

    fn close_open(&mut self, at_secs: f64, config: &SpanConfig) {
        match self.open.take() {
            None => {}
            Some(OpenSpan::Simple {
                phase,
                start_secs,
                cause,
            }) => {
                let end_secs = at_secs.max(start_secs);
                self.spans.push(Span {
                    phase,
                    start_secs,
                    end_secs,
                    cause,
                });
            }
            Some(OpenSpan::RunningInterval {
                start_secs,
                resumed,
            }) => {
                let end_secs = at_secs.max(start_secs);
                // Split [start, end] into Restoring | Running |
                // Checkpointing. Boundary values are computed once and
                // shared, so adjacent spans abut bitwise and the three
                // durations telescope to exactly `end - start`.
                let restore_end = if resumed {
                    (start_secs + config.restore_secs).min(end_secs)
                } else {
                    start_secs
                };
                let ck_len = (end_secs - restore_end) * config.checkpoint_overhead_fraction;
                let ck_start = (end_secs - ck_len).clamp(restore_end, end_secs);
                if resumed {
                    self.spans.push(Span {
                        phase: SpanPhase::Restoring,
                        start_secs,
                        end_secs: restore_end,
                        cause: JobEventKind::Start,
                    });
                }
                self.spans.push(Span {
                    phase: SpanPhase::Running,
                    start_secs: restore_end,
                    end_secs: ck_start,
                    cause: JobEventKind::Start,
                });
                if ck_start < end_secs {
                    self.spans.push(Span {
                        phase: SpanPhase::Checkpointing,
                        start_secs: ck_start,
                        end_secs,
                        cause: JobEventKind::Start,
                    });
                }
            }
        }
    }

    fn observe(&mut self, rec: &TransitionEvent, config: &SpanConfig) {
        let at = rec.at_secs;
        match rec.event {
            JobEventKind::Submit => {
                // The timeline anchor: compilation/provisioning starts at
                // submission. Only meaningful as the first record.
                if self.open.is_none() && self.spans.is_empty() {
                    self.open = Some(OpenSpan::Simple {
                        phase: SpanPhase::Compiling,
                        start_secs: at,
                        cause: JobEventKind::Submit,
                    });
                }
            }
            JobEventKind::Enqueue => {
                self.close_open(at, config);
                self.open = Some(OpenSpan::Simple {
                    phase: SpanPhase::Queued,
                    start_secs: at,
                    cause: JobEventKind::Enqueue,
                });
            }
            JobEventKind::Start => {
                self.close_open(at, config);
                self.spans.push(Span {
                    phase: SpanPhase::Scheduled,
                    start_secs: at,
                    end_secs: at,
                    cause: JobEventKind::Start,
                });
                self.open = Some(OpenSpan::RunningInterval {
                    start_secs: at,
                    resumed: self.interruptions > 0,
                });
            }
            JobEventKind::Preempt => {
                self.close_open(at, config);
                self.interruptions += 1;
                self.open = Some(OpenSpan::Simple {
                    phase: SpanPhase::Preempted,
                    start_secs: at,
                    cause: JobEventKind::Preempt,
                });
            }
            JobEventKind::Interrupt => {
                self.close_open(at, config);
                self.interruptions += 1;
                self.open = Some(OpenSpan::Simple {
                    phase: SpanPhase::Recovering,
                    start_secs: at,
                    cause: JobEventKind::Interrupt,
                });
            }
            JobEventKind::Reject
            | JobEventKind::Complete
            | JobEventKind::Fail
            | JobEventKind::Cancel => {
                self.close_open(at, config);
            }
        }
    }

    /// The finalized spans as of `horizon_secs`: closed spans plus the
    /// open one virtually closed at `max(horizon, its start)`. Pure —
    /// calling twice with the same horizon yields identical spans.
    pub fn spans_at(&self, horizon_secs: f64, config: &SpanConfig) -> Vec<Span> {
        let mut snap = self.clone();
        if let Some(open) = snap.open {
            snap.close_open(horizon_secs.max(open.start_secs()), config);
        }
        snap.spans
    }

    /// Interruptions (preemptions + faults) observed so far.
    pub fn interruptions(&self) -> u64 {
        self.interruptions
    }
}

/// Per-job span timelines folded from a lifecycle transition stream.
#[derive(Debug, Clone)]
pub struct SpanBook {
    config: SpanConfig,
    jobs: BTreeMap<JobId, JobTimeline>,
    observed: u64,
    ignored: u64,
}

impl SpanBook {
    /// An empty book with the given fold parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `restore_secs >= 0` and the checkpoint overhead
    /// fraction lies in `[0, 1)`.
    pub fn new(config: SpanConfig) -> Self {
        assert!(
            config.restore_secs >= 0.0,
            "restore_secs must be nonnegative"
        );
        assert!(
            (0.0..1.0).contains(&config.checkpoint_overhead_fraction),
            "checkpoint overhead fraction must be in [0, 1)"
        );
        SpanBook {
            config,
            jobs: BTreeMap::new(),
            observed: 0,
            ignored: 0,
        }
    }

    /// The fold parameters.
    pub fn config(&self) -> SpanConfig {
        self.config
    }

    /// Folds one applied transition into the owning job's timeline.
    /// Records that are not an edge of the workload transition matrix
    /// are counted in [`ignored`](Self::ignored) and change nothing.
    pub fn observe(&mut self, rec: TransitionEvent) {
        if !rec.is_legal() {
            self.ignored += 1;
            return;
        }
        self.observed += 1;
        let config = self.config;
        self.jobs
            .entry(rec.job)
            .or_insert_with(JobTimeline::new)
            .observe(&rec, &config);
    }

    /// Legal transitions folded so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Records rejected because they name no transition-matrix edge.
    pub fn ignored(&self) -> u64 {
        self.ignored
    }

    /// Jobs with at least one folded transition, ascending by id.
    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.jobs.keys().copied()
    }

    /// One job's finalized spans as of `horizon_secs` (empty if the job
    /// was never observed).
    pub fn timeline(&self, job: JobId, horizon_secs: f64) -> Vec<Span> {
        self.jobs
            .get(&job)
            .map(|t| t.spans_at(horizon_secs, &self.config))
            .unwrap_or_default()
    }

    /// All finalized timelines as of `horizon_secs`, ascending by job id.
    pub fn timelines(&self, horizon_secs: f64) -> Vec<(JobId, Vec<Span>)> {
        self.jobs
            .iter()
            .map(|(&id, t)| (id, t.spans_at(horizon_secs, &self.config)))
            .collect()
    }

    /// Byte-deterministic JSONL export of every finalized span, jobs
    /// ascending, spans in fold order:
    /// `{"job":N,"phase":"...","start_secs":T,"end_secs":T,"cause":"...","attribution":"..."}`.
    pub fn to_jsonl(&self, horizon_secs: f64) -> String {
        let mut out = String::new();
        for (id, spans) in self.timelines(horizon_secs) {
            for span in spans {
                span.write_json(&mut out, id);
                out.push('\n');
            }
        }
        out
    }

    /// Reconstructs a book from a transition stream exported by the core
    /// engine's `transitions_jsonl` (one
    /// `{"at_secs":T,"job":N,"from":"State","to":"State","event":"kind"}`
    /// object per line). Dependency-free hand-rolled parse, the inverse
    /// of the hand-rolled writer. Blank lines are skipped; a malformed
    /// line is an error naming its 1-based number.
    pub fn from_transitions_jsonl(text: &str, config: SpanConfig) -> Result<SpanBook, String> {
        let mut book = SpanBook::new(config);
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = parse_transition_line(line)
                .ok_or_else(|| format!("transition line {}: malformed record: {line}", i + 1))?;
            book.observe(rec);
        }
        Ok(book)
    }
}

/// Extracts the raw text of `"key":<value>` from a single-line JSON
/// object: quoted values are returned unquoted, scalars up to the next
/// `,` or `}`. Sufficient for the transition stream, whose strings are
/// state/event names with no escapes.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(quoted) = rest.strip_prefix('"') {
        let end = quoted.find('"')?;
        Some(&quoted[..end])
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim())
    }
}

fn parse_transition_line(line: &str) -> Option<TransitionEvent> {
    let at_secs: f64 = json_field(line, "at_secs")?.parse().ok()?;
    if !at_secs.is_finite() {
        return None;
    }
    let job: u64 = json_field(line, "job")?.parse().ok()?;
    let from = JobState::parse_name(json_field(line, "from")?)?;
    let to = JobState::parse_name(json_field(line, "to")?)?;
    let event = JobEventKind::parse_name(json_field(line, "event")?)?;
    Some(TransitionEvent {
        at_secs,
        job: JobId::from_value(job),
        from,
        to,
        event,
    })
}

/// Machine-checks the span conservation law for every job in the book:
/// spans are contiguous (each span starts bitwise where the previous one
/// ended — hence non-overlapping and gap-free), durations are
/// nonnegative, and their sum partitions the job's makespan **exactly**
/// under dyadic-rational arithmetic (no float drift tolerated).
pub fn span_conservation(book: &SpanBook, horizon_secs: f64) -> Result<(), String> {
    for (id, spans) in book.timelines(horizon_secs) {
        let Some(first) = spans.first() else {
            continue;
        };
        let last = spans.last().expect("non-empty");
        let mut sum = Dyadic::ZERO;
        let mut prev_end = first.start_secs;
        for (i, span) in spans.iter().enumerate() {
            if span.start_secs.to_bits() != prev_end.to_bits() {
                return Err(format!(
                    "job {}: span {i} ({}) starts at {} but the previous span ended at {prev_end}",
                    id.value(),
                    span.phase,
                    span.start_secs
                ));
            }
            if span.end_secs < span.start_secs {
                return Err(format!(
                    "job {}: span {i} ({}) has negative duration",
                    id.value(),
                    span.phase
                ));
            }
            sum = sum + (Dyadic::from_f64(span.end_secs) - Dyadic::from_f64(span.start_secs));
            prev_end = span.end_secs;
        }
        let makespan = Dyadic::from_f64(last.end_secs) - Dyadic::from_f64(first.start_secs);
        if sum != makespan {
            return Err(format!(
                "job {}: span durations do not partition the makespan exactly",
                id.value()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: f64, job: u64, from: JobState, to: JobState, event: JobEventKind) -> TransitionEvent {
        TransitionEvent {
            at_secs: at,
            job: JobId::from_value(job),
            from,
            to,
            event,
        }
    }

    fn feed(book: &mut SpanBook, recs: &[TransitionEvent]) {
        for &r in recs {
            book.observe(r);
        }
    }

    use JobEventKind as K;
    use JobState as S;

    fn happy_path(job: u64) -> Vec<TransitionEvent> {
        vec![
            ev(0.0, job, S::Submitted, S::Submitted, K::Submit),
            ev(30.0, job, S::Submitted, S::Queued, K::Enqueue),
            ev(100.0, job, S::Queued, S::Running, K::Start),
            ev(500.0, job, S::Running, S::Completed, K::Complete),
        ]
    }

    #[test]
    fn happy_path_phases_in_order() {
        let mut book = SpanBook::new(SpanConfig::plain());
        feed(&mut book, &happy_path(1));
        let spans = book.timeline(JobId::from_value(1), 500.0);
        let phases: Vec<SpanPhase> = spans.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                SpanPhase::Compiling,
                SpanPhase::Queued,
                SpanPhase::Scheduled,
                SpanPhase::Running
            ]
        );
        assert_eq!(spans[0].start_secs, 0.0);
        assert_eq!(spans[0].end_secs, 30.0);
        assert_eq!(spans[2].duration_secs(), 0.0);
        assert_eq!(spans[3].end_secs, 500.0);
        span_conservation(&book, 500.0).unwrap();
    }

    #[test]
    fn checkpoint_overhead_carved_from_running() {
        let config = SpanConfig {
            restore_secs: 0.0,
            checkpoint_overhead_fraction: 0.25,
        };
        let mut book = SpanBook::new(config);
        feed(&mut book, &happy_path(1));
        let spans = book.timeline(JobId::from_value(1), 500.0);
        let running = spans
            .iter()
            .find(|s| s.phase == SpanPhase::Running)
            .unwrap();
        let ck = spans
            .iter()
            .find(|s| s.phase == SpanPhase::Checkpointing)
            .unwrap();
        // 400 s of wall running, a quarter of it checkpoint writes.
        assert!((ck.duration_secs() - 100.0).abs() < 1e-9);
        assert!((running.duration_secs() - 300.0).abs() < 1e-9);
        assert_eq!(running.end_secs.to_bits(), ck.start_secs.to_bits());
        assert_eq!(ck.end_secs, 500.0);
        span_conservation(&book, 500.0).unwrap();
    }

    #[test]
    fn resume_carves_restoring_and_preempt_gap_is_preempted() {
        let config = SpanConfig {
            restore_secs: 60.0,
            checkpoint_overhead_fraction: 0.0,
        };
        let mut book = SpanBook::new(config);
        feed(
            &mut book,
            &[
                ev(0.0, 7, S::Submitted, S::Submitted, K::Submit),
                ev(10.0, 7, S::Submitted, S::Queued, K::Enqueue),
                ev(20.0, 7, S::Queued, S::Running, K::Start),
                ev(200.0, 7, S::Running, S::Preempted, K::Preempt),
                ev(200.0, 7, S::Preempted, S::Queued, K::Enqueue),
                ev(300.0, 7, S::Queued, S::Running, K::Start),
                ev(900.0, 7, S::Running, S::Completed, K::Complete),
            ],
        );
        let spans = book.timeline(JobId::from_value(7), 900.0);
        let phases: Vec<SpanPhase> = spans.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                SpanPhase::Compiling,
                SpanPhase::Queued,
                SpanPhase::Scheduled,
                SpanPhase::Running,   // first run: not resumed, no restore
                SpanPhase::Preempted, // zero-width: re-queued instantly
                SpanPhase::Queued,
                SpanPhase::Scheduled,
                SpanPhase::Restoring, // second run resumed: 60 s restore
                SpanPhase::Running,
            ]
        );
        assert_eq!(spans[4].duration_secs(), 0.0);
        let restoring = &spans[7];
        assert_eq!(restoring.start_secs, 300.0);
        assert_eq!(restoring.end_secs, 360.0);
        span_conservation(&book, 900.0).unwrap();
    }

    #[test]
    fn fault_opens_recovering() {
        let mut book = SpanBook::new(SpanConfig::plain());
        feed(
            &mut book,
            &[
                ev(0.0, 3, S::Submitted, S::Submitted, K::Submit),
                ev(0.0, 3, S::Submitted, S::Queued, K::Enqueue),
                ev(5.0, 3, S::Queued, S::Running, K::Start),
                ev(50.0, 3, S::Running, S::Preempted, K::Interrupt),
            ],
        );
        // Still recovering at the horizon: the open span closes there.
        let spans = book.timeline(JobId::from_value(3), 80.0);
        let rec = spans.last().unwrap();
        assert_eq!(rec.phase, SpanPhase::Recovering);
        assert_eq!(rec.start_secs, 50.0);
        assert_eq!(rec.end_secs, 80.0);
        assert_eq!(rec.attribution(), "node failure recovery");
        span_conservation(&book, 80.0).unwrap();
    }

    #[test]
    fn illegal_records_are_ignored() {
        let mut book = SpanBook::new(SpanConfig::plain());
        // Not a matrix edge: Completed never starts.
        book.observe(ev(5.0, 9, S::Completed, S::Running, K::Start));
        // Legal kind, wrong endpoints: also ignored.
        book.observe(ev(6.0, 9, S::Queued, S::Queued, K::Start));
        assert_eq!(book.ignored(), 2);
        assert_eq!(book.observed(), 0);
        assert!(book.timeline(JobId::from_value(9), 10.0).is_empty());
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        let config = SpanConfig {
            restore_secs: 60.0,
            checkpoint_overhead_fraction: 15.0 / 615.0,
        };
        let mut book = SpanBook::new(config);
        feed(&mut book, &happy_path(1));
        feed(
            &mut book,
            &[
                ev(1.5, 2, S::Submitted, S::Submitted, K::Submit),
                ev(2.25, 2, S::Submitted, S::Queued, K::Enqueue),
                ev(7.125, 2, S::Queued, S::Running, K::Start),
                ev(100.0, 2, S::Running, S::Preempted, K::Preempt),
                ev(100.0, 2, S::Preempted, S::Queued, K::Enqueue),
            ],
        );
        // Export the transition stream the way the core engine does...
        let mut stream = String::new();
        for recs in [happy_path(1)] {
            for r in recs {
                stream.push_str(&format!(
                    "{{\"at_secs\":{},\"job\":{},\"from\":\"{}\",\"to\":\"{}\",\"event\":\"{}\"}}\n",
                    r.at_secs,
                    r.job.value(),
                    r.from,
                    r.to,
                    r.event
                ));
            }
        }
        for r in [
            ev(1.5, 2, S::Submitted, S::Submitted, K::Submit),
            ev(2.25, 2, S::Submitted, S::Queued, K::Enqueue),
            ev(7.125, 2, S::Queued, S::Running, K::Start),
            ev(100.0, 2, S::Running, S::Preempted, K::Preempt),
            ev(100.0, 2, S::Preempted, S::Queued, K::Enqueue),
        ] {
            stream.push_str(&format!(
                "{{\"at_secs\":{},\"job\":{},\"from\":\"{}\",\"to\":\"{}\",\"event\":\"{}\"}}\n",
                r.at_secs,
                r.job.value(),
                r.from,
                r.to,
                r.event
            ));
        }
        // ...and reconstruct: timelines must match byte for byte.
        let rebuilt = SpanBook::from_transitions_jsonl(&stream, config).unwrap();
        assert_eq!(rebuilt.observed(), book.observed());
        assert_eq!(book.to_jsonl(512.0), rebuilt.to_jsonl(512.0));
        assert!(book.to_jsonl(512.0).contains("\"phase\":\"Checkpointing\""));
    }

    #[test]
    fn malformed_jsonl_is_an_error() {
        let bad =
            "{\"at_secs\":1,\"job\":2,\"from\":\"Nope\",\"to\":\"Queued\",\"event\":\"enqueue\"}\n";
        // Unknown state name -> parse failure naming the line, not a
        // silent skip.
        let err = SpanBook::from_transitions_jsonl(bad, SpanConfig::plain()).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn horizon_before_last_event_never_truncates_closed_spans() {
        let mut book = SpanBook::new(SpanConfig::plain());
        feed(&mut book, &happy_path(1));
        // Open spans close at max(horizon, start); closed spans are kept
        // as folded even when the horizon precedes them.
        let spans = book.timeline(JobId::from_value(1), 0.0);
        assert_eq!(spans.last().unwrap().end_secs, 500.0);
    }
}
