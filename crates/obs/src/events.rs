//! Typed platform events: the single source of truth for job lifecycle
//! telemetry. Human-readable job logs are *rendered* from these events
//! (via `Display`), so the log strings and the structured record can
//! never drift apart.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use tacc_workload::{GroupId, JobId};

/// Why the platform refused a job at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The gang shape can never fit the cluster, even when empty.
    GangNeverFits,
    /// The request exceeds the owning group's quota and can never be
    /// admitted under the active quota mode.
    ExceedsGroupQuota,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::GangNeverFits => f.write_str("gang can never fit this cluster"),
            RejectReason::ExceedsGroupQuota => f.write_str("request exceeds the group's quota"),
        }
    }
}

/// One lifecycle transition somewhere in the platform stack.
///
/// `Display` renders the exact human-readable line that appears in the
/// per-job log (`tcloud logs`), so events are the one source of truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformEvent {
    /// Job accepted by the front door; compilation begins.
    Submitted {
        /// The job.
        job: JobId,
        /// Owning research group.
        group: GroupId,
        /// Human-readable job name.
        name: String,
    },
    /// The compiler produced a task instruction and staged its payload.
    Compiled {
        /// The job.
        job: JobId,
        /// Instruction kind chosen by the compiler (e.g. `Training`).
        instruction: String,
        /// Total payload size in MiB.
        payload_mb: f64,
        /// Bytes actually moved (cache misses) in MiB.
        transferred_mb: f64,
        /// Chunk-cache hits during provisioning.
        chunk_hits: u64,
        /// Chunk-cache misses during provisioning.
        chunk_misses: u64,
        /// Provisioning latency in simulated seconds.
        provisioning_secs: f64,
    },
    /// Admission control refused the job.
    Rejected {
        /// The job.
        job: JobId,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// Job entered the scheduling queue.
    Queued {
        /// The job.
        job: JobId,
    },
    /// The scheduler placed the job and it started running.
    Placed {
        /// The job.
        job: JobId,
        /// Number of nodes in the placement.
        nodes: u64,
        /// Runtime the executor chose (debug rendering).
        runtime: String,
        /// Executor slowdown factor versus ideal.
        slowdown: f64,
        /// Workers actually granted (elastic shrink may reduce this).
        granted_workers: u64,
        /// Workers originally requested.
        requested_workers: u64,
        /// True when the start came through a backfill window.
        backfilled: bool,
    },
    /// The scheduler evicted the job to reclaim quota.
    Preempted {
        /// The job.
        job: JobId,
        /// Group whose guaranteed quota forced the reclaim.
        reclaimed_for: GroupId,
    },
    /// Job finished all its work.
    Completed {
        /// The job.
        job: JobId,
        /// Job completion time (submit to finish) in simulated seconds.
        jct_secs: f64,
    },
    /// A node fault hit the job but a fallback runtime exists: requeue.
    FailedOver {
        /// The job.
        job: JobId,
        /// Faulted node (display form).
        node: String,
        /// Fallback runtime chosen (debug rendering).
        fallback: String,
    },
    /// A node fault killed the job for good.
    Failed {
        /// The job.
        job: JobId,
        /// Faulted node (display form).
        node: String,
    },
    /// The user cancelled the job.
    Cancelled {
        /// The job.
        job: JobId,
    },
    /// The lifecycle engine rejected an event with no edge in the
    /// transition matrix (e.g. a stale-token fault arriving after
    /// completion). The job's state was left untouched.
    IllegalTransition {
        /// The job.
        job: JobId,
        /// The state the job was in — and, the event being rejected,
        /// stays in.
        from: String,
        /// The rejected lifecycle event kind.
        event: String,
    },
}

impl PlatformEvent {
    /// The job this event concerns.
    pub fn job(&self) -> JobId {
        match self {
            PlatformEvent::Submitted { job, .. }
            | PlatformEvent::Compiled { job, .. }
            | PlatformEvent::Rejected { job, .. }
            | PlatformEvent::Queued { job }
            | PlatformEvent::Placed { job, .. }
            | PlatformEvent::Preempted { job, .. }
            | PlatformEvent::Completed { job, .. }
            | PlatformEvent::FailedOver { job, .. }
            | PlatformEvent::Failed { job, .. }
            | PlatformEvent::Cancelled { job }
            | PlatformEvent::IllegalTransition { job, .. } => *job,
        }
    }

    /// Stable machine-readable kind tag (used for per-kind counts and
    /// the conservation check).
    pub fn kind(&self) -> &'static str {
        match self {
            PlatformEvent::Submitted { .. } => "submitted",
            PlatformEvent::Compiled { .. } => "compiled",
            PlatformEvent::Rejected { .. } => "rejected",
            PlatformEvent::Queued { .. } => "queued",
            PlatformEvent::Placed { .. } => "placed",
            PlatformEvent::Preempted { .. } => "preempted",
            PlatformEvent::Completed { .. } => "completed",
            PlatformEvent::FailedOver { .. } => "failed_over",
            PlatformEvent::Failed { .. } => "failed",
            PlatformEvent::Cancelled { .. } => "cancelled",
            PlatformEvent::IllegalTransition { .. } => "illegal_transition",
        }
    }
}

impl fmt::Display for PlatformEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformEvent::Submitted { .. } => f.write_str("submitted"),
            PlatformEvent::Compiled {
                instruction,
                payload_mb,
                transferred_mb,
                ..
            } => write!(
                f,
                "compiled: {instruction} instruction, {payload_mb:.0} MiB payload, \
                 {transferred_mb:.0} MiB transferred"
            ),
            PlatformEvent::Rejected { reason, .. } => write!(f, "rejected: {reason}"),
            PlatformEvent::Queued { .. } => f.write_str("queued"),
            PlatformEvent::Placed {
                nodes,
                runtime,
                slowdown,
                granted_workers,
                requested_workers,
                backfilled,
                ..
            } => {
                write!(
                    f,
                    "started on {nodes} node(s) via {runtime} runtime (slowdown {slowdown:.2})"
                )?;
                if granted_workers < requested_workers {
                    write!(
                        f,
                        " (elastic: {granted_workers}/{requested_workers} workers)"
                    )?;
                }
                if *backfilled {
                    f.write_str(" [backfill]")?;
                }
                Ok(())
            }
            PlatformEvent::Preempted { reclaimed_for, .. } => {
                write!(f, "preempted (quota reclaimed by {reclaimed_for})")
            }
            PlatformEvent::Completed { .. } => f.write_str("completed"),
            PlatformEvent::FailedOver { node, fallback, .. } => write!(
                f,
                "node {node} faulted; switching runtime to {fallback} and requeueing"
            ),
            PlatformEvent::Failed { node, .. } => {
                write!(f, "node {node} faulted; job failed")
            }
            PlatformEvent::Cancelled { .. } => f.write_str("cancelled by user"),
            PlatformEvent::IllegalTransition { from, event, .. } => {
                write!(f, "illegal transition rejected: {event} from state {from}")
            }
        }
    }
}

/// A [`PlatformEvent`] as recorded on the bus: stamped with a sequence
/// number and the simulated time of the transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotonically increasing sequence number (never reused, even
    /// after old records are dropped from the ring).
    pub seq: u64,
    /// Simulated time of the transition, seconds.
    pub at_secs: f64,
    /// The transition itself.
    pub event: PlatformEvent,
}

/// Appends a JSON string literal (with escaping) to `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in shortest round-trip form.
///
/// # Panics
///
/// Panics on non-finite values — JSON has no representation for them and
/// no platform event may carry one (matching `serde_json`'s refusal).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    assert!(v.is_finite(), "non-finite float in platform event: {v}");
    out.push_str(&format!("{v}"));
}

impl EventRecord {
    /// Appends this record as one compact JSON object, in the exact
    /// shape the serde derive produces structurally:
    /// `{"seq":N,"at_secs":T,"event":{"Variant":{...}}}`.
    fn write_json(&self, out: &mut String) {
        out.push_str(&format!("{{\"seq\":{},\"at_secs\":", self.seq));
        push_json_f64(out, self.at_secs);
        out.push_str(",\"event\":");
        self.event.write_json(out);
        out.push('}');
    }
}

impl PlatformEvent {
    /// Appends the externally-tagged JSON encoding of this event.
    fn write_json(&self, out: &mut String) {
        match self {
            PlatformEvent::Submitted { job, group, name } => {
                out.push_str(&format!(
                    "{{\"Submitted\":{{\"job\":{},\"group\":{},\"name\":",
                    job.value(),
                    group.index()
                ));
                push_json_str(out, name);
                out.push_str("}}");
            }
            PlatformEvent::Compiled {
                job,
                instruction,
                payload_mb,
                transferred_mb,
                chunk_hits,
                chunk_misses,
                provisioning_secs,
            } => {
                out.push_str(&format!(
                    "{{\"Compiled\":{{\"job\":{},\"instruction\":",
                    job.value()
                ));
                push_json_str(out, instruction);
                out.push_str(",\"payload_mb\":");
                push_json_f64(out, *payload_mb);
                out.push_str(",\"transferred_mb\":");
                push_json_f64(out, *transferred_mb);
                out.push_str(&format!(
                    ",\"chunk_hits\":{chunk_hits},\"chunk_misses\":{chunk_misses},\"provisioning_secs\":"
                ));
                push_json_f64(out, *provisioning_secs);
                out.push_str("}}");
            }
            PlatformEvent::Rejected { job, reason } => {
                let tag = match reason {
                    RejectReason::GangNeverFits => "GangNeverFits",
                    RejectReason::ExceedsGroupQuota => "ExceedsGroupQuota",
                };
                out.push_str(&format!(
                    "{{\"Rejected\":{{\"job\":{},\"reason\":\"{tag}\"}}}}",
                    job.value()
                ));
            }
            PlatformEvent::Queued { job } => {
                out.push_str(&format!("{{\"Queued\":{{\"job\":{}}}}}", job.value()));
            }
            PlatformEvent::Placed {
                job,
                nodes,
                runtime,
                slowdown,
                granted_workers,
                requested_workers,
                backfilled,
            } => {
                out.push_str(&format!(
                    "{{\"Placed\":{{\"job\":{},\"nodes\":{nodes},\"runtime\":",
                    job.value()
                ));
                push_json_str(out, runtime);
                out.push_str(",\"slowdown\":");
                push_json_f64(out, *slowdown);
                out.push_str(&format!(
                    ",\"granted_workers\":{granted_workers},\"requested_workers\":{requested_workers},\"backfilled\":{backfilled}}}}}"
                ));
            }
            PlatformEvent::Preempted { job, reclaimed_for } => {
                out.push_str(&format!(
                    "{{\"Preempted\":{{\"job\":{},\"reclaimed_for\":{}}}}}",
                    job.value(),
                    reclaimed_for.index()
                ));
            }
            PlatformEvent::Completed { job, jct_secs } => {
                out.push_str(&format!(
                    "{{\"Completed\":{{\"job\":{},\"jct_secs\":",
                    job.value()
                ));
                push_json_f64(out, *jct_secs);
                out.push_str("}}");
            }
            PlatformEvent::FailedOver {
                job,
                node,
                fallback,
            } => {
                out.push_str(&format!(
                    "{{\"FailedOver\":{{\"job\":{},\"node\":",
                    job.value()
                ));
                push_json_str(out, node);
                out.push_str(",\"fallback\":");
                push_json_str(out, fallback);
                out.push_str("}}");
            }
            PlatformEvent::Failed { job, node } => {
                out.push_str(&format!("{{\"Failed\":{{\"job\":{},\"node\":", job.value()));
                push_json_str(out, node);
                out.push_str("}}");
            }
            PlatformEvent::Cancelled { job } => {
                out.push_str(&format!("{{\"Cancelled\":{{\"job\":{}}}}}", job.value()));
            }
            PlatformEvent::IllegalTransition { job, from, event } => {
                out.push_str(&format!(
                    "{{\"IllegalTransition\":{{\"job\":{},\"from\":",
                    job.value()
                ));
                push_json_str(out, from);
                out.push_str(",\"event\":");
                push_json_str(out, event);
                out.push_str("}}");
            }
        }
    }
}

/// Bounded ring of [`EventRecord`]s with JSONL export.
///
/// When the ring is full the *oldest* record is dropped and a drop
/// counter is bumped; recording never fails and never reorders.
/// Timestamps are clamped to be monotone non-decreasing in simulated
/// time, matching the discrete-event loop's processing order.
#[derive(Debug)]
pub struct EventBus {
    capacity: usize,
    buf: VecDeque<EventRecord>,
    next_seq: u64,
    last_at: f64,
    dropped: u64,
    kind_counts: BTreeMap<&'static str, u64>,
}

impl EventBus {
    /// New bus retaining at most `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventBus {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            next_seq: 0,
            last_at: 0.0,
            dropped: 0,
            kind_counts: BTreeMap::new(),
        }
    }

    /// Records `event` at simulated time `at` (seconds) and returns its
    /// sequence number. Non-monotone timestamps are clamped forward.
    pub fn record(&mut self, at: f64, event: PlatformEvent) -> u64 {
        let at = if at.is_finite() { at } else { self.last_at };
        let at = at.max(self.last_at);
        self.last_at = at;
        let seq = self.next_seq;
        self.next_seq += 1;
        *self.kind_counts.entry(event.kind()).or_insert(0) += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(EventRecord {
            seq,
            at_secs: at,
            event,
        });
        seq
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records evicted from the ring to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// Retained records concerning `job`, oldest first.
    pub fn for_job(&self, job: JobId) -> Vec<EventRecord> {
        self.buf
            .iter()
            .filter(|r| r.event.job() == job)
            .cloned()
            .collect()
    }

    /// Lifetime count of events of `kind` (survives ring eviction).
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.kind_counts.get(kind).copied().unwrap_or(0)
    }

    /// Serializes the retained records as JSON Lines (one record per
    /// line, oldest first).
    ///
    /// The writer is hand-rolled (field-for-field compatible with the
    /// serde derives [`parse_jsonl`](Self::parse_jsonl) reads back), so
    /// exporting is dependency-free and byte-deterministic: the same bus
    /// contents always produce the same bytes. Floats print in Rust's
    /// shortest round-trip form.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            r.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL export back into records (blank lines skipped).
    pub fn parse_jsonl(text: &str) -> Result<Vec<EventRecord>, serde_json::Error> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }
}

/// Lifecycle conservation tally recounted purely from events: every
/// submitted job must end in exactly one terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConservationCheck {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Jobs rejected at admission.
    pub rejected: u64,
    /// Jobs cancelled by the user.
    pub cancelled: u64,
}

impl ConservationCheck {
    /// True when `submitted = completed + failed + rejected + cancelled`.
    pub fn balanced(&self) -> bool {
        self.submitted == self.completed + self.failed + self.rejected + self.cancelled
    }
}

/// Recounts the lifecycle conservation invariant from `records` alone.
pub fn conservation(records: &[EventRecord]) -> ConservationCheck {
    let mut c = ConservationCheck {
        submitted: 0,
        completed: 0,
        failed: 0,
        rejected: 0,
        cancelled: 0,
    };
    for r in records {
        match r.event {
            PlatformEvent::Submitted { .. } => c.submitted += 1,
            PlatformEvent::Completed { .. } => c.completed += 1,
            PlatformEvent::Failed { .. } => c.failed += 1,
            PlatformEvent::Rejected { .. } => c.rejected += 1,
            PlatformEvent::Cancelled { .. } => c.cancelled += 1,
            _ => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(n: u64) -> JobId {
        JobId::from_value(n)
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let mut bus = EventBus::new(3);
        for i in 0..5 {
            bus.record(i as f64, PlatformEvent::Queued { job: job(i) });
        }
        assert_eq!(bus.len(), 3);
        assert_eq!(bus.dropped(), 2);
        assert_eq!(bus.recorded(), 5);
        // Oldest retained record is seq 2; seq numbers never reused.
        assert_eq!(bus.records().next().map(|r| r.seq), Some(2));
        assert_eq!(bus.kind_count("queued"), 5);
    }

    #[test]
    fn timestamps_clamped_monotone() {
        let mut bus = EventBus::new(16);
        bus.record(5.0, PlatformEvent::Queued { job: job(1) });
        bus.record(3.0, PlatformEvent::Queued { job: job(2) });
        bus.record(f64::NAN, PlatformEvent::Queued { job: job(3) });
        bus.record(7.0, PlatformEvent::Queued { job: job(4) });
        let ts: Vec<f64> = bus.records().map(|r| r.at_secs).collect();
        assert_eq!(ts, vec![5.0, 5.0, 5.0, 7.0]);
    }

    #[test]
    fn for_job_filters() {
        let mut bus = EventBus::new(16);
        bus.record(0.0, PlatformEvent::Queued { job: job(1) });
        bus.record(1.0, PlatformEvent::Queued { job: job(2) });
        bus.record(
            2.0,
            PlatformEvent::Completed {
                job: job(1),
                jct_secs: 2.0,
            },
        );
        let evs = bus.for_job(job(1));
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|r| r.event.job() == job(1)));
    }

    #[test]
    fn display_matches_legacy_log_lines() {
        let e = PlatformEvent::Compiled {
            job: job(1),
            instruction: "Training".into(),
            payload_mb: 512.0,
            transferred_mb: 128.4,
            chunk_hits: 3,
            chunk_misses: 1,
            provisioning_secs: 2.0,
        };
        assert_eq!(
            e.to_string(),
            "compiled: Training instruction, 512 MiB payload, 128 MiB transferred"
        );
        let e = PlatformEvent::Placed {
            job: job(1),
            nodes: 2,
            runtime: "MultiProcess".into(),
            slowdown: 1.07,
            granted_workers: 1,
            requested_workers: 2,
            backfilled: false,
        };
        assert_eq!(
            e.to_string(),
            "started on 2 node(s) via MultiProcess runtime (slowdown 1.07) \
             (elastic: 1/2 workers)"
        );
        let e = PlatformEvent::Rejected {
            job: job(1),
            reason: RejectReason::GangNeverFits,
        };
        assert_eq!(e.to_string(), "rejected: gang can never fit this cluster");
        let e = PlatformEvent::Failed {
            job: job(1),
            node: "node3".into(),
        };
        assert_eq!(e.to_string(), "node node3 faulted; job failed");
        let e = PlatformEvent::IllegalTransition {
            job: job(1),
            from: "completed".into(),
            event: "fail".into(),
        };
        assert_eq!(
            e.to_string(),
            "illegal transition rejected: fail from state completed"
        );
    }

    #[test]
    fn illegal_transition_jsonl_shape() {
        let mut bus = EventBus::new(4);
        bus.record(
            3.0,
            PlatformEvent::IllegalTransition {
                job: job(9),
                from: "completed".into(),
                event: "fail".into(),
            },
        );
        assert_eq!(
            bus.to_jsonl(),
            "{\"seq\":0,\"at_secs\":3,\"event\":{\"IllegalTransition\":\
             {\"job\":9,\"from\":\"completed\",\"event\":\"fail\"}}}\n"
        );
        assert_eq!(bus.kind_count("illegal_transition"), 1);
    }

    #[test]
    fn conservation_balances() {
        let mut bus = EventBus::new(64);
        bus.record(
            0.0,
            PlatformEvent::Submitted {
                job: job(1),
                group: GroupId::from_index(0),
                name: "a".into(),
            },
        );
        bus.record(
            0.0,
            PlatformEvent::Submitted {
                job: job(2),
                group: GroupId::from_index(0),
                name: "b".into(),
            },
        );
        bus.record(
            1.0,
            PlatformEvent::Completed {
                job: job(1),
                jct_secs: 1.0,
            },
        );
        bus.record(2.0, PlatformEvent::Cancelled { job: job(2) });
        let records: Vec<EventRecord> = bus.records().cloned().collect();
        let c = conservation(&records);
        assert!(c.balanced(), "{c:?}");
        assert_eq!(c.submitted, 2);
        assert_eq!(c.completed, 1);
        assert_eq!(c.cancelled, 1);
    }

    #[test]
    fn jsonl_bytes_are_stable() {
        let mut bus = EventBus::new(8);
        bus.record(
            0.5,
            PlatformEvent::Submitted {
                job: job(7),
                group: GroupId::from_index(2),
                name: "train \"v2\"\n".into(),
            },
        );
        bus.record(1.5, PlatformEvent::Queued { job: job(7) });
        bus.record(
            2.25,
            PlatformEvent::Completed {
                job: job(7),
                jct_secs: 1.75,
            },
        );
        let text = bus.to_jsonl();
        let expected = concat!(
            "{\"seq\":0,\"at_secs\":0.5,\"event\":{\"Submitted\":{\"job\":7,\"group\":2,",
            "\"name\":\"train \\\"v2\\\"\\n\"}}}\n",
            "{\"seq\":1,\"at_secs\":1.5,\"event\":{\"Queued\":{\"job\":7}}}\n",
            "{\"seq\":2,\"at_secs\":2.25,\"event\":{\"Completed\":{\"job\":7,\"jct_secs\":1.75}}}\n",
        );
        assert_eq!(text, expected);
        // Byte determinism: the same contents always export identically.
        assert_eq!(text, bus.to_jsonl());
    }

    #[test]
    fn jsonl_round_trips() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: parse_jsonl unavailable
        }
        let mut bus = EventBus::new(8);
        bus.record(
            0.5,
            PlatformEvent::Submitted {
                job: job(7),
                group: GroupId::from_index(2),
                name: "train".into(),
            },
        );
        bus.record(
            1.5,
            PlatformEvent::Preempted {
                job: job(7),
                reclaimed_for: GroupId::from_index(1),
            },
        );
        let text = bus.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let parsed = EventBus::parse_jsonl(&text).expect("parses");
        let original: Vec<EventRecord> = bus.records().cloned().collect();
        assert_eq!(parsed, original);
    }
}
