//! Property tests for the event bus: timestamps are monotone
//! non-decreasing in simulated time regardless of input, the ring
//! respects its capacity, and JSONL export round-trips via serde.

use proptest::prelude::*;
use tacc_obs::{EventBus, EventRecord, PlatformEvent, RejectReason};
use tacc_workload::{GroupId, JobId};

/// Deterministically maps a small discriminant + job number to an event,
/// covering every variant of [`PlatformEvent`].
fn mk_event(kind: u8, j: u64) -> PlatformEvent {
    let job = JobId::from_value(j);
    let group = GroupId::from_index((j % 7) as usize);
    match kind % 10 {
        0 => PlatformEvent::Submitted {
            job,
            group,
            name: format!("job-{j}"),
        },
        1 => PlatformEvent::Compiled {
            job,
            instruction: "Training".to_string(),
            payload_mb: j as f64 * 0.5,
            transferred_mb: j as f64 * 0.25,
            chunk_hits: j % 5,
            chunk_misses: j % 3,
            provisioning_secs: j as f64 * 0.125,
        },
        2 => PlatformEvent::Rejected {
            job,
            reason: if j.is_multiple_of(2) {
                RejectReason::GangNeverFits
            } else {
                RejectReason::ExceedsGroupQuota
            },
        },
        3 => PlatformEvent::Queued { job },
        4 => PlatformEvent::Placed {
            job,
            nodes: 1 + j % 4,
            runtime: "SingleProcess".to_string(),
            slowdown: 1.0 + (j % 10) as f64 * 0.125,
            granted_workers: 1 + j % 2,
            requested_workers: 2,
            backfilled: j.is_multiple_of(2),
        },
        5 => PlatformEvent::Preempted {
            job,
            reclaimed_for: group,
        },
        6 => PlatformEvent::Completed {
            job,
            jct_secs: j as f64 * 2.0,
        },
        7 => PlatformEvent::FailedOver {
            job,
            node: format!("node{}", j % 8),
            fallback: "SingleProcess".to_string(),
        },
        8 => PlatformEvent::Failed {
            job,
            node: format!("node{}", j % 8),
        },
        _ => PlatformEvent::Cancelled { job },
    }
}

proptest! {
    #[test]
    fn timestamps_monotone_and_ring_bounded(
        raw in proptest::collection::vec((any::<f64>(), 0u8..10, 0u64..100), 0..128),
        cap in 1usize..64,
    ) {
        let mut bus = EventBus::new(cap);
        for &(at, kind, j) in &raw {
            bus.record(at, mk_event(kind, j));
        }
        let recs: Vec<EventRecord> = bus.records().cloned().collect();
        for w in recs.windows(2) {
            assert!(
                w[0].at_secs <= w[1].at_secs,
                "timestamps regressed: {} then {}",
                w[0].at_secs,
                w[1].at_secs
            );
            assert!(w[0].seq < w[1].seq, "sequence numbers not increasing");
        }
        for r in &recs {
            assert!(r.at_secs.is_finite(), "recorded timestamp must be finite");
        }
        assert!(bus.len() <= cap);
        assert_eq!(bus.recorded(), raw.len() as u64);
        assert_eq!(bus.dropped() as usize, raw.len().saturating_sub(bus.len()));
    }

    #[test]
    fn jsonl_round_trips(
        raw in proptest::collection::vec((0.0f64..1e9, 0u8..10, 0u64..100), 0..64),
    ) {
        let mut bus = EventBus::new(1024);
        for &(at, kind, j) in &raw {
            bus.record(at, mk_event(kind, j));
        }
        let text = bus.to_jsonl();
        assert_eq!(text.lines().count(), bus.len());
        let parsed = EventBus::parse_jsonl(&text).expect("JSONL export parses back");
        let original: Vec<EventRecord> = bus.records().cloned().collect();
        assert_eq!(parsed, original);
    }
}
