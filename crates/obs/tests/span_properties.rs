//! Property tests for the span fold: randomized lifecycle sequences
//! drawn from the transition matrix must always produce non-overlapping,
//! gap-free span timelines that partition each job's makespan exactly
//! (bitwise boundary equality, dyadic-exact duration sums), records that
//! name no matrix edge must never open or close a span, and the badput
//! itemization must conserve GPU-time under exact arithmetic.
//!
//! The generator is a deterministic xorshift64* walk (no external
//! proptest dependency), mirroring the lifecycle property suite in
//! `tacc-workload`.

use std::collections::BTreeMap;

use tacc_obs::{
    goodput_conservation, span_conservation, GoodputReport, JobGoodputInput, SpanBook, SpanConfig,
    TransitionEvent,
};
use tacc_workload::{JobEventKind, JobId, JobState, TRANSITION_MATRIX};

/// Deterministic xorshift64* PRNG — reproducible without extra crates.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[(self.next() % items.len() as u64) as usize]
    }
}

fn matrix_edge(from: JobState, kind: JobEventKind) -> Option<JobState> {
    TRANSITION_MATRIX
        .iter()
        .find(|(f, k, _)| *f == from && *k == kind)
        .map(|(_, _, to)| *to)
}

fn random_config(rng: &mut XorShift) -> SpanConfig {
    SpanConfig {
        restore_secs: (rng.next() % 256) as f64 / 8.0,
        // Strictly below 1, as the book's constructor requires.
        checkpoint_overhead_fraction: (rng.next() % 64) as f64 / 64.0,
    }
}

/// Drives one job through up to `steps` random legal transitions starting
/// with the submission anchor, feeding every record to `book` with
/// nondecreasing timestamps (zero-width gaps included, as the engine
/// produces for preempt-and-requeue at one instant). Returns the last
/// event time.
fn random_walk(
    book: &mut SpanBook,
    rng: &mut XorShift,
    job: JobId,
    start_secs: f64,
    steps: usize,
) -> f64 {
    let mut t = start_secs;
    let mut state = JobState::Submitted;
    book.observe(TransitionEvent {
        at_secs: t,
        job,
        from: state,
        to: state,
        event: JobEventKind::Submit,
    });
    for _ in 0..steps {
        if state.is_terminal() {
            break;
        }
        let kind = rng.pick(&JobEventKind::ALL);
        let Some(next) = matrix_edge(state, kind) else {
            continue;
        };
        // Three in four records advance time; the rest land at the same
        // instant and must fold into zero-width spans.
        if !rng.next().is_multiple_of(4) {
            t += (rng.next() % 100_000) as f64 / 64.0;
        }
        book.observe(TransitionEvent {
            at_secs: t,
            job,
            from: state,
            to: next,
            event: kind,
        });
        state = next;
    }
    t
}

/// Builds a multi-job book from random walks; returns the book and a
/// horizon strictly past every observed event.
fn random_book(rng: &mut XorShift, jobs: u64, steps: usize) -> (SpanBook, f64) {
    let mut book = SpanBook::new(random_config(rng));
    let mut last = 0.0f64;
    for j in 0..jobs {
        let start = (rng.next() % 50_000) as f64 / 64.0;
        let end = random_walk(&mut book, rng, JobId::from_value(j), start, steps);
        last = last.max(end);
    }
    let horizon = last + 1.0 + (rng.next() % 1024) as f64 / 32.0;
    (book, horizon)
}

/// Random legal sequences always fold into timelines whose spans abut
/// bitwise (no gap, no overlap) and whose durations sum — in exact
/// dyadic-rational arithmetic — to the job's makespan.
#[test]
fn random_sequences_partition_the_makespan_exactly() {
    for seed in 0..32u64 {
        let mut rng = XorShift(0x5EED_0B5E_0000_0001 + seed);
        let (book, horizon) = random_book(&mut rng, 12, 48);
        assert!(book.ignored() == 0, "walks only emit matrix edges");
        span_conservation(&book, horizon).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // Re-state the law explicitly, independent of the checker.
        for (job, spans) in book.timelines(horizon) {
            for w in spans.windows(2) {
                assert_eq!(
                    w[0].end_secs.to_bits(),
                    w[1].start_secs.to_bits(),
                    "seed {seed} job {}: spans must abut bitwise",
                    job.value()
                );
            }
            for s in &spans {
                assert!(
                    s.end_secs >= s.start_secs,
                    "seed {seed} job {}: negative duration",
                    job.value()
                );
            }
        }
    }
}

/// Records that name no transition-matrix edge are counted as ignored
/// and leave every timeline byte-identical: rejected events never open,
/// close, or reshape a span.
#[test]
fn rejected_events_never_open_or_close_spans() {
    let mut rng = XorShift(0xBAD5_EED0_0000_0007);
    let (mut book, horizon) = random_book(&mut rng, 6, 40);
    let before_jsonl = book.to_jsonl(horizon);
    let observed_before = book.observed();
    let ignored_before = book.ignored();

    // Every (state, kind) pair without a matrix edge, aimed at both an
    // existing job and a brand-new one.
    let mut injected = 0u64;
    for from in JobState::ALL {
        for kind in JobEventKind::ALL {
            if matrix_edge(from, kind).is_some() {
                continue;
            }
            let to = rng.pick(&JobState::ALL);
            for job in [0u64, 9_999] {
                book.observe(TransitionEvent {
                    at_secs: 1e9,
                    job: JobId::from_value(job),
                    from,
                    to,
                    event: kind,
                });
                injected += 1;
            }
        }
    }
    // Plus edges whose (from, kind) exists but whose destination lies:
    // (Submitted, enqueue) goes to Queued, never Running.
    book.observe(TransitionEvent {
        at_secs: 1e9,
        job: JobId::from_value(0),
        from: JobState::Submitted,
        to: JobState::Running,
        event: JobEventKind::Enqueue,
    });
    injected += 1;

    assert_eq!(book.ignored(), ignored_before + injected);
    assert_eq!(book.observed(), observed_before);
    assert_eq!(
        book.to_jsonl(horizon),
        before_jsonl,
        "rejected records must not perturb any span"
    );
    // The phantom job never gained a timeline.
    assert!(book.timeline(JobId::from_value(9_999), horizon).is_empty());
}

/// The badput itemization conserves GPU-time exactly for random runs and
/// random GPU weights: causes plus running time sum to the total span
/// GPU-time in dyadic arithmetic, and every headline factor stays in
/// [0, 1].
#[test]
fn goodput_conservation_is_exact_for_random_runs() {
    for seed in 0..32u64 {
        let mut rng = XorShift(0x900D_0000_0000_0011 + seed);
        let (book, horizon) = random_book(&mut rng, 10, 48);
        let mut inputs: BTreeMap<JobId, JobGoodputInput> = BTreeMap::new();
        for job in book.jobs() {
            inputs.insert(
                job,
                JobGoodputInput {
                    // Mixed integer and fractional weights, CPU-only
                    // (zero-GPU) jobs included.
                    gpus: (rng.next() % 32) as f64 / 2.0,
                    useful_secs: (rng.next() % 1_000_000) as f64 / 64.0,
                },
            );
        }
        goodput_conservation(&book, horizon, &inputs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        let r = GoodputReport::compute(&book, horizon, 256.0, &inputs);
        for (label, v) in [
            ("availability", r.availability),
            ("throughput_efficiency", r.throughput_efficiency),
            ("badput_fraction", r.badput_fraction),
            ("goodput", r.goodput),
        ] {
            assert!((0.0..=1.0).contains(&v), "seed {seed}: {label} = {v}");
        }
        // Itemization sums to the total by definition (exact equality).
        let itemized: f64 = r.badput.items().iter().map(|(_, v)| v).sum();
        assert_eq!(itemized, r.badput.total_gpu_secs(), "seed {seed}");
    }
}
