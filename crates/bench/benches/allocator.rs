//! T4 — cluster allocator: allocate/release cycles and placement planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, NodeId, ResourceVec};
use tacc_sched::{PlacementStrategy, Planner};

fn cluster(nodes: u32) -> Cluster {
    Cluster::new(ClusterSpec::uniform(nodes / 8, 8, GpuModel::A100, 8))
}

fn bench_allocate_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate_release");
    for nodes in [32u32, 256, 1024] {
        group.bench_function(BenchmarkId::from_parameter(nodes), |b| {
            let mut cl = cluster(nodes);
            let target = NodeId::from_index((nodes - 1) as usize);
            b.iter(|| {
                let lease = cl
                    .allocate(1, &[(target, ResourceVec::gpus_only(4))])
                    .expect("fits");
                cl.release(lease.id()).expect("valid");
            });
        });
    }
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_plan");
    for strategy in [
        PlacementStrategy::Pack,
        PlacementStrategy::Spread,
        PlacementStrategy::TopologyAware,
    ] {
        for nodes in [32u32, 256] {
            // Half-full cluster: the planner has real choices to make.
            let mut cl = cluster(nodes);
            for i in 0..(nodes / 2) as usize {
                cl.allocate(
                    i as u64,
                    &[(NodeId::from_index(i), ResourceVec::gpus_only(5))],
                )
                .expect("fits");
            }
            let planner = Planner::new(strategy);
            let id = BenchmarkId::new(strategy.to_string(), nodes);
            group.bench_function(id, |b| {
                b.iter(|| criterion::black_box(planner.plan(&cl, 4, ResourceVec::gpus_only(2))));
            });
        }
    }
    group.finish();
}

fn bench_fragmentation(c: &mut Criterion) {
    let mut cl = cluster(256);
    for i in 0..128usize {
        cl.allocate(
            i as u64,
            &[(
                NodeId::from_index(i),
                ResourceVec::gpus_only((i % 8) as u32 + 1),
            )],
        )
        .expect("fits");
    }
    c.bench_function("fragmentation_256nodes", |b| {
        b.iter(|| criterion::black_box(cl.fragmentation(8)));
    });
}

criterion_group!(
    benches,
    bench_allocate_release,
    bench_planning,
    bench_fragmentation
);
criterion_main!(benches);
