//! T4 — execution layer: iteration-time planning cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, NodeId};
use tacc_exec::{comm, ExecConfig, ExecModel};
use tacc_workload::{ModelProfile, RuntimePreference};

fn bench_plan_training(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterSpec::uniform(8, 8, GpuModel::A100, 8));
    let model = ExecModel::new(ExecConfig::default());
    let profile = ModelProfile::gpt2_like();
    let mut group = c.benchmark_group("plan_training");
    for gpus in [8u32, 64, 512] {
        let nodes: Vec<NodeId> = (0..(gpus / 8).max(1) as usize)
            .map(NodeId::from_index)
            .collect();
        group.bench_function(BenchmarkId::from_parameter(gpus), |b| {
            b.iter(|| {
                criterion::black_box(model.plan_training(
                    &cluster,
                    RuntimePreference::AllReduce,
                    &nodes,
                    gpus,
                    GpuModel::A100,
                    &profile,
                ))
            });
        });
    }
    group.finish();
}

fn bench_raw_collectives(c: &mut Criterion) {
    c.bench_function("ring_allreduce_cost", |b| {
        b.iter(|| criterion::black_box(comm::ring_allreduce_secs(1500.0, 64, 100.0)));
    });
    c.bench_function("hierarchical_allreduce_cost", |b| {
        b.iter(|| {
            criterion::black_box(comm::hierarchical_allreduce_secs(
                1500.0, 8, 8, 600.0, 100.0,
            ))
        });
    });
}

fn bench_bottleneck_lookup(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterSpec::uniform(8, 8, GpuModel::A100, 8));
    let nodes: Vec<NodeId> = (0..32).map(NodeId::from_index).collect();
    c.bench_function("bottleneck_32nodes", |b| {
        b.iter(|| criterion::black_box(comm::bottleneck_bandwidth_gbps(&cluster, &nodes)));
    });
}

criterion_group!(
    benches,
    bench_plan_training,
    bench_raw_collectives,
    bench_bottleneck_lookup
);
criterion_main!(benches);
