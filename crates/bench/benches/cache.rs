//! T4 — compiler layer: warm/cold compilation latency and raw chunk ops.

use criterion::{criterion_group, criterion_main, Criterion};

use tacc_compiler::{ChunkCache, ChunkId, Compiler, CompilerConfig};
use tacc_workload::{GroupId, RuntimeEnv, TaskSchema};

fn schema(dataset: &str) -> TaskSchema {
    TaskSchema::builder("bench", GroupId::from_index(0))
        .env(RuntimeEnv {
            image: "pytorch-2.1-cuda12".to_owned(),
            dependencies: vec![("common-ml-stack".to_owned(), 1800)],
            dataset: Some((dataset.to_owned(), 12_000)),
            code_mb: 5,
        })
        .build()
        .expect("valid")
}

fn bench_compile(c: &mut Criterion) {
    // Warm path: everything cached, only code moves.
    c.bench_function("compile_warm", |b| {
        let mut compiler = Compiler::new(CompilerConfig::default());
        let s = schema("imagenet-subset");
        compiler.compile(&s).expect("valid");
        b.iter(|| criterion::black_box(compiler.compile(&s).expect("valid")));
    });

    // Cold path: fresh cache per batch.
    c.bench_function("compile_cold", |b| {
        let s = schema("imagenet-subset");
        b.iter_batched(
            || Compiler::new(CompilerConfig::default()),
            |mut compiler| criterion::black_box(compiler.compile(&s).expect("valid")),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_chunk_ops(c: &mut Criterion) {
    c.bench_function("chunk_fetch_hit", |b| {
        let mut cache = ChunkCache::new(100_000);
        let id = ChunkId::of("layer", 500);
        cache.fetch(id, 500);
        b.iter(|| criterion::black_box(cache.fetch(id, 500)));
    });

    c.bench_function("chunk_fetch_evicting", |b| {
        // Cache of 10 chunks: every fetch of a rotating set evicts.
        let mut cache = ChunkCache::new(5_000);
        let ids: Vec<ChunkId> = (0..20)
            .map(|i| ChunkId::of(&format!("c{i}"), 500))
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % ids.len();
            criterion::black_box(cache.fetch(ids[i], 500))
        });
    });
}

criterion_group!(benches, bench_compile, bench_chunk_ops);
criterion_main!(benches);
