//! T4 — scheduler decision latency vs cluster size and queue depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, ResourceVec};
use tacc_sched::{Scheduler, SchedulerConfig, TaskRequest};
use tacc_workload::{GroupId, JobId, QosClass};

fn request(id: u64, gpus: u32, est: f64) -> TaskRequest {
    TaskRequest {
        id: JobId::from_value(id),
        group: GroupId::from_index((id % 8) as usize),
        qos: QosClass::Guaranteed,
        workers: 1,
        per_worker: ResourceVec::gpus_only(gpus),
        est_secs: est,
        submit_secs: id as f64,
        elastic: false,
    }
}

/// One full scheduling round over a queue that mostly cannot start (the
/// expensive case: reservations + backfill scans).
fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_round");
    for nodes in [16usize, 64, 256, 1024] {
        for depth in [64usize, 512] {
            let id = BenchmarkId::new(format!("{nodes}nodes"), depth);
            group.bench_function(id, |b| {
                b.iter_batched(
                    || {
                        let cluster = Cluster::new(ClusterSpec::uniform(
                            (nodes / 8).max(1) as u32,
                            8,
                            GpuModel::A100,
                            8,
                        ));
                        let mut sched = Scheduler::new(SchedulerConfig::default());
                        // Saturate the cluster with long jobs, then queue
                        // `depth` more behind them.
                        let mut cluster = cluster;
                        for i in 0..nodes as u64 {
                            sched.submit(request(i, 8, 1e6));
                        }
                        sched.schedule(0.0, &mut cluster);
                        for i in 0..depth as u64 {
                            sched.submit(request(1_000_000 + i, (i % 8 + 1) as u32, 600.0));
                        }
                        (sched, cluster)
                    },
                    |(mut sched, mut cluster)| {
                        let out = sched.schedule(1.0, &mut cluster);
                        criterion::black_box(out)
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
