//! T4 — event engine throughput and end-to-end simulation rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use tacc_core::{Platform, PlatformConfig};
use tacc_sim::{EventQueue, SimTime};
use tacc_workload::{GenParams, TraceGenerator};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("schedule_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            // Interleaved times exercise heap reshuffling.
            for i in 0..n {
                let t = ((i * 2_654_435_761) % 1_000_000) as f64;
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            criterion::black_box(acc)
        });
    });
    group.finish();
}

fn bench_end_to_end_day(c: &mut Criterion) {
    // Simulating one day of the canonical campus workload — the number the
    // experiment harnesses care about ("how long does a 30-day replay
    // take?").
    let trace = TraceGenerator::new(GenParams::default(), 7).generate_days(1.0);
    let mut group = c.benchmark_group("platform");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("one_day_replay", |b| {
        b.iter(|| {
            let mut platform = Platform::new(PlatformConfig::default());
            criterion::black_box(platform.run_trace(&trace))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_end_to_end_day);
criterion_main!(benches);
