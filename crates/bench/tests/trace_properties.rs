//! Property tests pinning the F1 invariants of the shared trace
//! generator.
//!
//! Every golden snapshot downstream of `tacc_bench::standard_trace`
//! assumes the campus workload shape the paper characterizes: job
//! durations are heavy-tailed (mean ≫ median), single-GPU jobs dominate
//! the demand histogram, and arrivals swing diurnally. A generator change
//! that breaks one of these would not necessarily fail any unit test —
//! it would just silently re-bless a different workload — so these
//! properties hold across seeds and loads, not only the canonical
//! `TRACE_SEED`.
//!
//! Bounds are deliberately loose relative to measured margins (over 300
//! sampled traces: mean/median ≥ 2.6, 1-GPU fraction ≥ 0.67, diurnal
//! peak/trough ≥ 2.6) so they fail on shape changes, not on unlucky
//! seeds.

use proptest::prelude::*;
use tacc_workload::{GenParams, Trace, TraceGenerator};

fn trace(seed: u64, load: f64, days: f64) -> Trace {
    TraceGenerator::new(GenParams::default().with_load_factor(load), seed).generate_days(days)
}

/// Per-job GPU demand of the GPU-using jobs.
fn gpu_demands(trace: &Trace) -> Vec<u32> {
    trace
        .records()
        .iter()
        .filter(|r| !r.schema.kind.is_cpu_only())
        .map(|r| r.schema.total_gpus())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// F1a: durations are heavy-tailed — the mean sits far above the
    /// median.
    #[test]
    fn durations_heavy_tailed(seed in any::<u64>(), load in 0.5f64..2.0) {
        let t = trace(seed, load, 2.0);
        let s = t.stats();
        prop_assert!(t.len() > 100, "degenerate trace: {} records", t.len());
        prop_assert!(
            s.duration_summary.mean() > 1.5 * s.duration_summary.p50(),
            "mean {:.0}s not >> median {:.0}s",
            s.duration_summary.mean(),
            s.duration_summary.p50()
        );
    }

    /// F1b: single-GPU jobs dominate — they are both the strict mode of
    /// the demand histogram and at least half of all GPU jobs.
    #[test]
    fn single_gpu_dominates(seed in any::<u64>(), load in 0.5f64..2.0) {
        let t = trace(seed, load, 2.0);
        let demands = gpu_demands(&t);
        let ones = demands.iter().filter(|&&g| g == 1).count();
        prop_assert!(
            ones as f64 > 0.5 * demands.len() as f64,
            "1-GPU jobs are only {ones}/{} of GPU demand",
            demands.len()
        );
        for target in [2u32, 4, 8, 16, 32, 64] {
            let count = demands.iter().filter(|&&g| g == target).count();
            prop_assert!(count < ones, "{target}-GPU bucket ({count}) rivals 1-GPU ({ones})");
        }
    }

    /// F1c: arrivals swing with the hour of day — the busiest hour sees
    /// well over the quietest hour's traffic.
    #[test]
    fn arrivals_swing_diurnally(seed in any::<u64>(), load in 0.5f64..2.0) {
        let t = trace(seed, load, 4.0);
        let mut by_hour = [0u64; 24];
        for r in t.records() {
            by_hour[((r.submit_secs / 3600.0) % 24.0) as usize] += 1;
        }
        let peak = *by_hour.iter().max().unwrap() as f64;
        let trough = *by_hour.iter().min().unwrap() as f64;
        prop_assert!(
            peak > 1.5 * trough.max(1.0),
            "diurnal swing too flat: peak {peak} vs trough {trough}"
        );
    }
}
