//! Experiment output capture: one [`Reporter`] sink per run.
//!
//! Experiments write their output through a `Reporter` instead of printing
//! directly, so the same function can stream to stdout (the thin `exp_*`
//! shims), or record text *and* a machine-readable JSON document (the
//! `experiments` runner's golden snapshots).

use crate::json::Json;
use tacc_metrics::{Cell, Table};

/// What an experiment returns besides its reported output.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// One-line summary (workload size, key configuration) for indexes.
    pub headline: String,
}

/// Sink for experiment output.
///
/// `line` carries prose and commentary (a trailing `\n` inside the string
/// reproduces the blank separator lines of the original binaries);
/// `table` carries structured figure/table data.
pub trait Reporter {
    /// Reports one line of prose (without its terminating newline).
    fn line(&mut self, text: &str);
    /// Reports a rendered table.
    fn table(&mut self, table: &Table);
}

/// Streams output to stdout exactly as the original `exp_*` binaries did.
#[derive(Debug, Default)]
pub struct PrintReporter;

// The one sanctioned stdout sink: every experiment binary prints through
// this impl, which is what lets `print_stdout` stay denied everywhere else.
#[allow(clippy::print_stdout)]
impl Reporter for PrintReporter {
    fn line(&mut self, text: &str) {
        println!("{text}");
    }

    fn table(&mut self, table: &Table) {
        println!("{table}");
    }
}

/// Captures output as text plus a deterministic JSON document.
#[derive(Debug, Default)]
pub struct RecordingReporter {
    text: String,
    lines: Vec<String>,
    tables: Vec<Json>,
}

impl RecordingReporter {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated human-readable text (what the shim would print).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Consumes the recorder into the experiment's golden JSON payload:
    /// `{"lines": [...], "tables": [...]}`.
    pub fn into_json(self) -> Json {
        Json::obj()
            .set(
                "lines",
                Json::Arr(self.lines.into_iter().map(Json::Str).collect()),
            )
            .set("tables", Json::Arr(self.tables))
    }
}

impl Reporter for RecordingReporter {
    fn line(&mut self, text: &str) {
        self.text.push_str(text);
        self.text.push('\n');
        self.lines.push(text.to_owned());
    }

    fn table(&mut self, table: &Table) {
        self.text.push_str(&table.to_string());
        self.text.push('\n');
        self.tables.push(table_json(table));
    }
}

/// Converts a rendered table into its JSON form. Numeric cells are parsed
/// back from their fixed-precision rendering so the JSON value carries
/// exactly the digits the text table shows — no more, no less — which is
/// what golden byte-equality should gate on.
pub fn table_json(table: &Table) -> Json {
    let header = table.header().iter().cloned().map(Json::Str).collect();
    let rows = table
        .rows()
        .iter()
        .map(|row| Json::Arr(row.iter().map(cell_json).collect()))
        .collect();
    Json::obj()
        .set("title", table.title().into())
        .set("header", Json::Arr(header))
        .set("rows", Json::Arr(rows))
}

fn cell_json(cell: &Cell) -> Json {
    let rendered = cell.render();
    match cell {
        Cell::Text(_) => Json::Str(rendered),
        Cell::Num(..) => match rendered.parse::<f64>() {
            Ok(v) => Json::num(v),
            Err(_) => Json::Str(rendered),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_matches_print_format() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec![Cell::Num(1.25, 1)]);
        let mut r = RecordingReporter::new();
        r.line("hello\n");
        r.table(&t);
        // println!("hello\n") emits "hello\n\n"; println!("{t}") appends a
        // blank line after the table's own trailing newline.
        assert_eq!(r.text(), format!("hello\n\n{t}\n"));
        let json = r.into_json().to_compact();
        assert!(json.contains(r#""lines":["hello\n"]"#));
        // 1.25 renders as "1.2" at precision 1 (banker's-free Rust rounding),
        // and the JSON carries the rendered value, not the raw one.
        assert!(json.contains(r#""rows":[[1.2]]"#), "{json}");
    }
}
