//! The canonical determinism probe: one simulation that exercises every
//! subsystem, exported as a byte-comparable stream.
//!
//! The simulator's contract is "same config + same trace ⇒ same bytes".
//! CI enforces it by running [`campus_determinism_export`] twice (in
//! separate processes) and `cmp`-ing the outputs; `experiments
//! --determinism` does the same in-process. The export is the full
//! event-bus JSONL stream followed by one line with the report
//! fingerprint, so both the event sequencing and the aggregate math are
//! pinned.

use crate::json::Json;
use crate::{campus_config, standard_trace};
use tacc_core::{Platform, SimulationReport};
use tacc_metrics::Summary;
use tacc_obs::SpanBook;
use tacc_sched::QuotaMode;
use tacc_storage::StorageConfig;

/// Days simulated by the canonical determinism run.
pub const DEFAULT_DETERMINISM_DAYS: f64 = 30.0;

/// Both byte-comparable streams from one canonical determinism run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismRun {
    /// Event-bus JSONL followed by a one-line report fingerprint.
    pub events: String,
    /// Lifecycle-engine transition log as JSONL (one record per applied
    /// `JobEvent`) — the audit trail of every job-state change.
    pub transitions: String,
    /// Per-job span timelines as JSONL, folded live by `tacc-obs` from
    /// the same transition stream.
    pub timelines: String,
    /// Timelines rebuilt *from the exported `transitions` text alone*
    /// (parse → refold → re-render). Must equal `timelines` byte-for-byte;
    /// `None` when the bounded transition ring dropped records, which
    /// makes reconstruction impossible by construction.
    pub reconstructed_timelines: Option<String>,
    /// Byte-stable ML Productivity Goodput JSON for the run (what CI
    /// archives as an artifact).
    pub goodput: String,
}

/// Runs the canonical determinism simulation and returns its export
/// streams: event-bus JSONL plus report fingerprint, and the lifecycle
/// transition log.
///
/// The configuration deliberately switches on the noisy subsystems —
/// quota borrowing (preemption/reclaim), fault injection, and dataset
/// staging — so nondeterminism anywhere in the platform shows up as a
/// byte difference.
pub fn campus_determinism_run(days: f64) -> DeterminismRun {
    let trace = standard_trace(days, 2.0);
    let config = campus_config(|c| {
        c.scheduler.quota = QuotaMode::Borrowing;
        c.node_mtbf_secs = Some(10.0 * 86_400.0);
        c.storage = Some(StorageConfig::default());
        // Keep the whole event history: a bounded ring would still be
        // deterministic, but a complete stream localizes divergences.
        // The transition log shares this capacity.
        c.event_buffer_capacity = 1 << 22;
    });
    let mut platform = Platform::new(config);
    let report = platform.run_trace(&trace);
    let mut events = platform.events().to_jsonl();
    events.push_str(&report_fingerprint(&report).to_compact());
    events.push('\n');
    let transitions = platform.transitions_jsonl();
    let timelines = platform.timelines_jsonl();
    // Replay check input: refold the span book from the exported text,
    // exactly as an offline consumer would.
    let reconstructed_timelines = if platform.transitions_dropped() == 0 {
        let book = SpanBook::from_transitions_jsonl(&transitions, platform.span_book().config())
            .expect("the engine only exports well-formed legal transitions");
        Some(book.to_jsonl(platform.span_horizon()))
    } else {
        None
    };
    DeterminismRun {
        events,
        transitions,
        timelines,
        reconstructed_timelines,
        goodput: report.goodput_decomposition.to_json(),
    }
}

/// The event-stream half of [`campus_determinism_run`] (kept as the
/// stable surface the in-process reproducibility test pins).
pub fn campus_determinism_export(days: f64) -> String {
    campus_determinism_run(days).events
}

fn summary_json(s: &Summary) -> Json {
    Json::obj()
        .set("count", s.count().into())
        .set("mean", s.mean().into())
        .set("min", s.min().into())
        .set("max", s.max().into())
        .set("p50", s.p50().into())
        .set("p90", s.p90().into())
        .set("p95", s.p95().into())
        .set("p99", s.p99().into())
}

/// Serializes every deterministic field of a report (the wall-clock
/// round-latency histogram contributes only its observation count, mirroring
/// `SimulationReport`'s `PartialEq`).
pub fn report_fingerprint(report: &SimulationReport) -> Json {
    let groups = report
        .groups
        .iter()
        .map(|g| {
            Json::obj()
                .set("group", g.group.index().into())
                .set("completed", g.completed.into())
                .set("mean_queue_delay_secs", g.mean_queue_delay_secs.into())
                .set("p95_queue_delay_secs", g.p95_queue_delay_secs.into())
                .set("gpu_hours", g.gpu_hours.into())
        })
        .collect();
    Json::obj()
        .set("submitted", report.submitted.into())
        .set("completed", report.completed.into())
        .set("failed", report.failed.into())
        .set("rejected", report.rejected.into())
        .set("cancelled", report.cancelled.into())
        .set("mean_staging_secs", report.mean_staging_secs.into())
        .set("stagings", report.stagings.into())
        .set("faults", report.faults.into())
        .set("failovers", report.failovers.into())
        .set("preemptions", report.preemptions.into())
        .set("backfill_starts", report.backfill_starts.into())
        .set("jct", summary_json(&report.jct))
        .set("queue_delay", summary_json(&report.queue_delay))
        .set("slowdown", summary_json(&report.slowdown))
        .set("mean_utilization", report.mean_utilization.into())
        .set("useful_gpu_hours", report.useful_gpu_hours.into())
        .set("wasted_gpu_hours", report.wasted_gpu_hours.into())
        .set("goodput", report.goodput.into())
        .set("goodput_ratio", report.goodput_decomposition.goodput.into())
        .set(
            "goodput_availability",
            report.goodput_decomposition.availability.into(),
        )
        .set(
            "goodput_efficiency",
            report.goodput_decomposition.throughput_efficiency.into(),
        )
        .set(
            "goodput_badput_fraction",
            report.goodput_decomposition.badput_fraction.into(),
        )
        .set("groups", Json::Arr(groups))
        .set("fairness", report.fairness.into())
        .set("cache_hits", report.cache_hits.into())
        .set("cache_misses", report.cache_misses.into())
        .set("cache_byte_hit_rate", report.cache_byte_hit_rate.into())
        .set(
            "mean_provisioning_secs",
            report.mean_provisioning_secs.into(),
        )
        .set("rounds", report.rounds.into())
        .set("round_latency_count", report.round_latency.count.into())
        .set("events_recorded", report.events_recorded.into())
        .set("events_dropped", report.events_dropped.into())
        .set("jobs", report.jobs.len().into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_export_is_reproducible() {
        let a = campus_determinism_run(0.25);
        let b = campus_determinism_run(0.25);
        assert!(!a.events.is_empty());
        assert_eq!(a, b);
        // Last line is the fingerprint object.
        let last = a.events.lines().last().unwrap();
        assert!(last.starts_with("{\"submitted\":"), "{last}");
        // The transition log is populated and well-formed JSONL.
        assert!(!a.transitions.is_empty());
        assert!(a
            .transitions
            .lines()
            .all(|l| l.starts_with("{\"at_secs\":") && l.ends_with('}')));
        // Nothing dropped at this scale, so the timelines refolded from
        // the exported transition text are byte-identical to the live ones.
        assert!(!a.timelines.is_empty());
        assert_eq!(
            a.reconstructed_timelines.as_deref(),
            Some(a.timelines.as_str())
        );
        // The goodput artifact is the byte-stable decomposition JSON.
        assert!(a.goodput.starts_with("{\"horizon_secs\":"), "{}", a.goodput);
        // The fingerprint line carries the decomposition's top factors.
        let last = a.events.lines().last().unwrap();
        assert!(last.contains("\"goodput_availability\":"), "{last}");
    }
}
