//! The service-mode benchmark driver: spin up (or attach to) a `taccd`
//! daemon, drive concurrent submission load through the real socket
//! transport, and write `BENCH_service.json`.
//!
//! ```text
//! service [OPTIONS]
//!
//!   --clients N     concurrent client connections (default 8, min 8 for
//!                   the committed report)
//!   --requests N    submissions per client (default 250)
//!   --socket PATH   attach to an already-running daemon instead of
//!                   starting an in-process one
//!   --journal PATH  journal path for the in-process daemon (default:
//!                   a fresh file under the system temp dir)
//!   --out PATH      report path (default BENCH_service.json; "none"
//!                   disables)
//! ```
//!
//! With no `--socket`, an in-process daemon is started on a temp socket
//! with a fresh journal, so `cargo run -p tacc-bench --bin service` is a
//! one-command benchmark. Every submission in the measured path is
//! journalled and fsynced before its acknowledgement — the numbers are
//! durable-admission numbers, not in-memory ones.

#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use tacc_bench::service::{self, ServiceBenchConfig};
use tacc_taccd::{ClockMode, Daemon, DaemonConfig, EngineConfig};

struct Options {
    clients: usize,
    requests: usize,
    socket: Option<PathBuf>,
    journal: Option<PathBuf>,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        clients: 8,
        requests: 250,
        socket: None,
        journal: None,
        out: "BENCH_service.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => {
                let v = args.next().ok_or("--clients needs a value")?;
                opts.clients = v.parse().map_err(|_| format!("bad --clients `{v}`"))?;
            }
            "--requests" => {
                let v = args.next().ok_or("--requests needs a value")?;
                opts.requests = v.parse().map_err(|_| format!("bad --requests `{v}`"))?;
            }
            "--socket" => {
                opts.socket = Some(PathBuf::from(args.next().ok_or("--socket needs a path")?))
            }
            "--journal" => {
                opts.journal = Some(PathBuf::from(args.next().ok_or("--journal needs a path")?))
            }
            "--out" => opts.out = args.next().ok_or("--out needs a path")?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Attach to a live daemon, or start one in-process on a temp socket.
    let (socket, daemon) = match &opts.socket {
        Some(path) => (path.clone(), None),
        None => {
            let mut socket = std::env::temp_dir();
            socket.push(format!("tacc-service-bench-{}.sock", std::process::id()));
            let journal = opts.journal.clone().unwrap_or_else(|| {
                let mut p = std::env::temp_dir();
                p.push(format!("tacc-service-bench-{}.journal", std::process::id()));
                std::fs::remove_file(&p).ok();
                p
            });
            let config = DaemonConfig {
                socket: socket.clone(),
                engine: EngineConfig {
                    journal,
                    platform: tacc_core::PlatformConfig::default(),
                    clock: ClockMode::Logical,
                },
            };
            match Daemon::start(config) {
                Ok((daemon, _report)) => (socket, Some(daemon)),
                Err(e) => {
                    eprintln!("error: could not start in-process daemon: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let config = ServiceBenchConfig {
        clients: opts.clients,
        requests_per_client: opts.requests,
        socket,
    };
    println!(
        "service bench: {} clients x {} submissions against {}",
        config.clients,
        config.requests_per_client,
        config.socket.display()
    );
    let result = match service::run_load(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "acknowledged {} submissions in {:.2}s — {:.0} submissions/sec sustained",
        result.acknowledged, result.wall_secs, result.submissions_per_sec
    );
    println!(
        "admission latency: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms ({} error(s))",
        result.p50_ms, result.p99_ms, result.max_ms, result.errors
    );

    if let Some(daemon) = daemon {
        daemon.stop();
    }

    if opts.out != "none" {
        let doc = service::report_json(&result);
        match std::fs::write(&opts.out, doc.to_pretty()) {
            Ok(()) => println!("wrote {}", opts.out),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", opts.out);
                return ExitCode::FAILURE;
            }
        }
    }
    if result.errors > 0 {
        eprintln!("{} request(s) failed", result.errors);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
