//! Experiment F3 — fairness under load sweep.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f3` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f3` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f3");
}
