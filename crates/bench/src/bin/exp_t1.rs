//! Experiment T1 — scheduling policy comparison.
//!
//! Replays the same contended 7-day trace under FIFO, SJF, fair-share and
//! DRF ordering (all with EASY backfill and packing placement, quotas off)
//! and reports the policy-facing metrics. See EXPERIMENTS.md § T1.

use tacc_bench::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_metrics::Table;
use tacc_sched::PolicyKind;

fn main() {
    let trace = standard_trace(7.0, 4.0);
    println!(
        "T1: {} submissions over 7 days, 256 GPUs, load factor 4\n",
        trace.len()
    );

    let mut table = Table::new(
        "T1: queue-ordering policy comparison",
        &[
            "policy",
            "mean JCT (h)",
            "p50 JCT (h)",
            "p95 JCT (h)",
            "p95 wait (h)",
            "util %",
            "backfills",
        ],
    );
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Sjf,
        PolicyKind::FairShare,
        PolicyKind::Drf,
        PolicyKind::MultiFactor,
    ] {
        let config = campus_config(|c| {
            c.scheduler.policy = policy;
        });
        let report = Platform::new(config).run_trace(&trace);
        table.row(vec![
            policy.to_string().into(),
            hours(report.jct.mean()).into(),
            hours(report.jct.p50()).into(),
            hours(report.jct.p95()).into(),
            hours(report.queue_delay.p95()).into(),
            (report.mean_utilization * 100.0).into(),
            report.backfill_starts.into(),
        ]);
    }
    println!("{table}");
    println!("(SJF sorts on the user's noisy estimate, not the oracle duration)");
}
