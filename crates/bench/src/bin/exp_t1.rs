//! Experiment T1 — scheduling policy comparison.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::t1` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments t1` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("t1");
}
