//! The scheduler hot-path perf harness: deterministic work counters with
//! informational wall time.
//!
//! ```text
//! perf [OPTIONS]
//!
//!   --list                list scenarios and exit
//!   --check               run every scenario twice and fail unless the
//!                         deterministic counters match exactly
//!   --expect PATH         fail unless the fresh counters exactly match the
//!                         committed report at PATH (the CI planner gate)
//!   --nightly             include the nightly-tier scenarios (million-job
//!                         replay) in the run set
//!   --only ID             run just this scenario (repeatable; fast or
//!                         nightly tier)
//!   --out PATH            write the report JSON (default: BENCH_hotpath.json;
//!                         "none" disables)
//!   --baseline-secs X     record X as the pre-change full-suite serial wall
//!   --optimized-secs Y    record Y as the post-change full-suite serial wall
//!   --quiet               suppress the per-scenario table
//! ```
//!
//! Counters count *algorithmic work* (sorts, slot splits/intersections,
//! placement attempts, node scans, fast-path rejects), never time, so
//! `--check` and `--expect` are tolerance-free gates that hold on any
//! machine, however noisy. Wall times ride along in the report for human
//! context only. On a GitHub Actions runner the first mismatch is also
//! emitted as a `::error file=...` annotation.

// CLI surface: the scenario table goes to stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use tacc_bench::gha;
use tacc_bench::hotpath::{self, Scenario, ScenarioOutcome, NIGHTLY_SCENARIOS, SCENARIOS};
use tacc_bench::json::Json;

#[derive(Debug)]
struct Options {
    list: bool,
    check: bool,
    expect: Option<String>,
    nightly: bool,
    only: Vec<String>,
    out: Option<String>,
    baseline_secs: Option<f64>,
    optimized_secs: Option<f64>,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        check: false,
        expect: None,
        nightly: false,
        only: Vec::new(),
        out: None,
        baseline_secs: None,
        optimized_secs: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--check" => opts.check = true,
            "--quiet" => opts.quiet = true,
            "--nightly" => opts.nightly = true,
            "--only" => opts
                .only
                .push(args.next().ok_or("--only needs a scenario id")?),
            "--expect" => opts.expect = Some(args.next().ok_or("--expect needs a path")?),
            "--out" => opts.out = Some(args.next().ok_or("--out needs a path")?),
            "--baseline-secs" => {
                let v = args.next().ok_or("--baseline-secs needs a value")?;
                opts.baseline_secs = Some(
                    v.parse()
                        .map_err(|_| format!("bad --baseline-secs `{v}`"))?,
                );
            }
            "--optimized-secs" => {
                let v = args.next().ok_or("--optimized-secs needs a value")?;
                opts.optimized_secs = Some(
                    v.parse()
                        .map_err(|_| format!("bad --optimized-secs `{v}`"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn print_outcomes(outcomes: &[ScenarioOutcome]) {
    println!(
        "{:<22} {:>9} {:>9} {:>7} {:>9} {:>10} {:>11} {:>10} {:>9} {:>9} {:>8}",
        "scenario",
        "jobs",
        "rounds",
        "sorts",
        "skipped",
        "skiprec",
        "skipsupp",
        "attempts",
        "splits",
        "isects",
        "wall(s)"
    );
    for o in outcomes {
        println!(
            "{:<22} {:>9} {:>9} {:>7} {:>9} {:>10} {:>11} {:>10} {:>9} {:>9} {:>8.2}",
            o.id,
            o.jobs,
            o.rounds,
            o.counters.queue_sorts,
            o.counters.queue_sorts_skipped,
            o.counters.skip_records,
            o.counters.skip_suppressions,
            o.counters.plan.attempts,
            o.counters.slots.splits,
            o.counters.slots.intersections,
            o.wall_secs,
        );
    }
}

/// Prints a file-scoped `::error` annotation when a GitHub Actions runner
/// is listening; silent otherwise.
fn annotate(file: &str, title: &str, message: &str) {
    if gha::enabled() {
        println!("{}", gha::format_error(file, title, message));
    }
}

/// The `--expect` gate: fresh counters versus a committed report.
fn check_expected(path: &str, outcomes: &[ScenarioOutcome]) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read expected report {path}: {e}"))?;
    let expected =
        Json::parse(&text).map_err(|e| format!("malformed expected report {path}: {e}"))?;
    hotpath::compare_with_report(&expected, outcomes).map_err(|(_, detail)| detail)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        println!("hot-path scenarios:");
        for s in SCENARIOS {
            println!("  {:<22} {}", s.id, s.title);
        }
        println!("nightly-tier scenarios (--nightly):");
        for s in NIGHTLY_SCENARIOS {
            println!("  {:<22} {}", s.id, s.title);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&'static Scenario> = if opts.only.is_empty() {
        let mut set: Vec<&'static Scenario> = SCENARIOS.iter().collect();
        if opts.nightly {
            set.extend(NIGHTLY_SCENARIOS.iter());
        }
        set
    } else {
        let mut set = Vec::new();
        for id in &opts.only {
            match hotpath::find_scenario(id) {
                Some(s) => set.push(s),
                None => {
                    eprintln!("error: unknown scenario `{id}` (see --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        set
    };
    let outcomes: Vec<ScenarioOutcome> =
        selected.iter().map(|s| hotpath::run_scenario(s)).collect();
    if !opts.quiet {
        print_outcomes(&outcomes);
    }

    let mut failures = 0u32;
    if opts.check {
        // Deterministic-or-bust: a second full pass must reproduce every
        // counter exactly. Wall time is deliberately excluded.
        let second: Vec<ScenarioOutcome> =
            selected.iter().map(|s| hotpath::run_scenario(s)).collect();
        for (a, b) in outcomes.iter().zip(second.iter()) {
            let first = hotpath::counters_json(a).to_compact();
            let repeat = hotpath::counters_json(b).to_compact();
            if first == repeat {
                println!("ok   {:<22} counters reproduced exactly", a.id);
            } else {
                println!("FAIL {:<22}", a.id);
                eprintln!("  first : {first}");
                eprintln!("  repeat: {repeat}");
                if failures == 0 {
                    annotate(
                        "BENCH_hotpath.json",
                        "nondeterministic hot-path counters",
                        &format!("{}: first {first} != repeat {repeat}", a.id),
                    );
                }
                failures += 1;
            }
        }
    }
    if let Some(path) = opts.expect.as_deref() {
        match check_expected(path, &outcomes) {
            Ok(()) => println!("ok   committed report {path} matches the fresh counters"),
            Err(detail) => {
                println!("FAIL committed report {path}");
                eprintln!("  {detail}");
                eprintln!("  (intended change? regenerate with `perf --check --out {path}`)");
                if failures == 0 {
                    annotate(path, "planner counter drift", &detail);
                }
                failures += 1;
            }
        }
    }

    let suite = match (opts.baseline_secs, opts.optimized_secs) {
        (Some(b), Some(o)) => Some((b, o)),
        _ => None,
    };
    match opts.out.as_deref() {
        Some("none") => {}
        out => {
            let path = out.unwrap_or("BENCH_hotpath.json");
            let doc = hotpath::report_json(&outcomes, suite);
            match std::fs::write(path, doc.to_pretty()) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("error: could not write {path}: {e}");
                    failures += 1;
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} scenario(s) failed the deterministic counter gate");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
