//! Experiment T2 — placement strategy comparison.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::t2` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments t2` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("t2");
}
