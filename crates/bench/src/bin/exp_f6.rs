//! Experiment F6 — distributed-training scaling.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f6` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f6` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f6");
}
