//! The unified experiment runner: regenerates any subset of the
//! EXPERIMENTS.md evaluation in parallel and gates it against golden JSON
//! snapshots.
//!
//! ```text
//! experiments [IDS...] [OPTIONS]
//!
//!   IDS                 experiment ids (f1..f10, t1..t7); default: tier selection
//!   --list              list registered experiments and exit
//!   --check             compare fresh runs against crates/bench/golden/ (byte equality)
//!   --bless             rewrite the golden snapshots from fresh runs
//!   --tier fast|long|all  which tier to run when no ids are given (default: all)
//!   --jobs N            max concurrently-computing sweep cells (default: all cores)
//!   --serial            shorthand for --jobs 1
//!   --quiet             suppress per-experiment text output
//!   --sweep-out PATH    where to write the aggregate timing JSON
//!                       (default: BENCH_sweep.json; "none" disables)
//!   --determinism [DAYS]  run the canonical simulation twice and compare the
//!                       exported event streams byte-for-byte (default 30 days)
//!   --export PATH       with --determinism: also write the export stream to PATH
//!   --export-transitions PATH  with --determinism: also write the lifecycle
//!                       transition-log JSONL to PATH
//!   --export-timelines PATH  with --determinism: also write the per-job span
//!                       timeline JSONL to PATH
//!   --export-goodput PATH  with --determinism: also write the byte-stable
//!                       goodput decomposition JSON to PATH
//! ```
//!
//! The simulator is bit-deterministic, so `--check` uses tolerance-free
//! equality: any diff is a real behavior change — either a regression, or
//! an intended change that should be re-blessed and reviewed.

// CLI surface: progress lines and experiment text go to stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use tacc_bench::determinism::{campus_determinism_run, DEFAULT_DETERMINISM_DAYS};
use tacc_bench::gha;
use tacc_bench::json::Json;
use tacc_bench::par;
use tacc_bench::registry::{self, ExperimentSpec, RunOutcome, Tier};

/// Golden snapshots live next to the crate so `--bless` output is a normal
/// reviewable diff.
const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TierFilter {
    Fast,
    Long,
    All,
}

#[derive(Debug)]
struct Options {
    ids: Vec<String>,
    list: bool,
    check: bool,
    bless: bool,
    tier: TierFilter,
    jobs: Option<usize>,
    quiet: bool,
    sweep_out: Option<String>,
    determinism: Option<f64>,
    export: Option<String>,
    export_transitions: Option<String>,
    export_timelines: Option<String>,
    export_goodput: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ids: Vec::new(),
        list: false,
        check: false,
        bless: false,
        tier: TierFilter::All,
        jobs: None,
        quiet: false,
        sweep_out: None,
        determinism: None,
        export: None,
        export_transitions: None,
        export_timelines: None,
        export_goodput: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--check" => opts.check = true,
            "--bless" => opts.bless = true,
            "--quiet" => opts.quiet = true,
            "--serial" => opts.jobs = Some(1),
            "--tier" => {
                let v = args.next().ok_or("--tier needs a value")?;
                opts.tier = match v.as_str() {
                    "fast" => TierFilter::Fast,
                    "long" => TierFilter::Long,
                    "all" => TierFilter::All,
                    other => return Err(format!("unknown tier `{other}`")),
                };
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                opts.jobs = Some(v.parse().map_err(|_| format!("bad --jobs `{v}`"))?);
            }
            "--sweep-out" => {
                opts.sweep_out = Some(args.next().ok_or("--sweep-out needs a path")?);
            }
            "--determinism" => {
                // Optional numeric operand: `--determinism 7`.
                let days = match args.peek().and_then(|v| v.parse::<f64>().ok()) {
                    Some(d) => {
                        args.next();
                        d
                    }
                    None => DEFAULT_DETERMINISM_DAYS,
                };
                opts.determinism = Some(days);
            }
            "--export" => {
                opts.export = Some(args.next().ok_or("--export needs a path")?);
            }
            "--export-transitions" => {
                opts.export_transitions =
                    Some(args.next().ok_or("--export-transitions needs a path")?);
            }
            "--export-timelines" => {
                opts.export_timelines = Some(args.next().ok_or("--export-timelines needs a path")?);
            }
            "--export-goodput" => {
                opts.export_goodput = Some(args.next().ok_or("--export-goodput needs a path")?);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            id => opts.ids.push(id.to_ascii_lowercase()),
        }
    }
    if opts.check && opts.bless {
        return Err("--check and --bless are mutually exclusive".to_owned());
    }
    Ok(opts)
}

fn selected(opts: &Options) -> Result<Vec<&'static ExperimentSpec>, String> {
    if !opts.ids.is_empty() {
        for id in &opts.ids {
            if registry::find(id).is_none() {
                return Err(format!(
                    "unknown experiment `{id}` (use --list to see the registry)"
                ));
            }
        }
        // Keep registry (EXPERIMENTS.md) order regardless of argument order.
        return Ok(registry::ALL
            .iter()
            .filter(|spec| opts.ids.iter().any(|id| id == spec.id))
            .collect());
    }
    Ok(registry::ALL
        .iter()
        .filter(|spec| match opts.tier {
            TierFilter::Fast => spec.tier == Tier::Fast,
            TierFilter::Long => spec.tier == Tier::Long,
            TierFilter::All => true,
        })
        .collect())
}

fn list() {
    println!("registered experiments (run subset: `experiments f3 t1 ...`):");
    for spec in registry::ALL {
        println!("  {:<4} {:<5} {}", spec.id, spec.tier.label(), spec.title);
    }
}

fn golden_path(id: &str) -> std::path::PathBuf {
    std::path::Path::new(GOLDEN_DIR).join(format!("{id}.json"))
}

/// Reports the first differing line between a golden file and a fresh run.
fn first_diff(golden: &str, fresh: &str) -> String {
    for (i, (g, f)) in golden.lines().zip(fresh.lines()).enumerate() {
        if g != f {
            return format!("line {}: golden `{g}` != fresh `{f}`", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} lines, fresh {}",
        golden.lines().count(),
        fresh.lines().count()
    )
}

fn check_outcome(outcome: &RunOutcome) -> Result<(), String> {
    let path = golden_path(outcome.spec.id);
    let fresh = outcome.json.to_pretty();
    match std::fs::read_to_string(&path) {
        Ok(golden) if golden == fresh => Ok(()),
        Ok(golden) => Err(format!(
            "golden mismatch for `{}` ({}):\n    {}\n    (intended change? re-run with --bless)",
            outcome.spec.id,
            path.display(),
            first_diff(&golden, &fresh)
        )),
        Err(e) => Err(format!(
            "missing/unreadable golden for `{}` ({}): {e}\n    (bootstrap with --bless)",
            outcome.spec.id,
            path.display()
        )),
    }
}

fn write_sweep(path: &str, outcomes: &[RunOutcome], wall_secs: f64, jobs: usize) {
    // `busy_secs` counts only slot-held computation (parents waiting on
    // nested sweeps donate their slot), so it is the honest serial-sum
    // estimate; per-experiment `wall_secs` are concurrent spans and
    // overlap each other.
    let serial_sum = par::busy_secs();
    let per_exp = outcomes
        .iter()
        .map(|o| {
            Json::obj()
                .set("id", o.spec.id.into())
                .set("span_secs", o.wall_secs.into())
        })
        .collect();
    let doc = Json::obj()
        .set("suite", "tacc-bench experiments".into())
        .set("jobs", jobs.into())
        .set("experiments", Json::Arr(per_exp))
        .set("serial_sum_secs", serial_sum.into())
        .set("wall_secs", wall_secs.into())
        .set(
            "speedup_vs_serial",
            if wall_secs > 0.0 {
                (serial_sum / wall_secs).into()
            } else {
                Json::Null
            },
        );
    if let Err(e) = std::fs::write(path, doc.to_pretty()) {
        eprintln!("warning: could not write sweep summary {path}: {e}");
    } else {
        println!(
            "wrote {path}: {} experiments, serial sum {serial_sum:.1}s, wall {wall_secs:.1}s",
            outcomes.len()
        );
    }
}

fn export_stream(path: Option<&str>, what: &str, bytes: &str) -> Result<(), ExitCode> {
    if let Some(path) = path {
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!("error: could not write {what} export {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        println!("exported {} {what} bytes to {path}", bytes.len());
    }
    Ok(())
}

fn run_determinism(days: f64, opts: &Options) -> ExitCode {
    println!("determinism: canonical {days}-day simulation, two fresh replays");
    let runs = par::par_map(vec![(), ()], |()| campus_determinism_run(days));
    let (a, b) = (&runs[0], &runs[1]);
    for (path, what, bytes) in [
        (opts.export.as_deref(), "event-stream", &a.events),
        (
            opts.export_transitions.as_deref(),
            "transition-log",
            &a.transitions,
        ),
        (
            opts.export_timelines.as_deref(),
            "span-timeline",
            &a.timelines,
        ),
        (opts.export_goodput.as_deref(), "goodput", &a.goodput),
    ] {
        if let Err(code) = export_stream(path, what, bytes) {
            return code;
        }
    }
    // Offline-replay gate: timelines refolded from the exported transition
    // text must match the live fold byte-for-byte.
    match &a.reconstructed_timelines {
        Some(rebuilt) if rebuilt != &a.timelines => {
            eprintln!(
                "determinism: FAILED — timeline reconstruction from the transition log \
                 diverges from the live fold ({} vs {} bytes)",
                rebuilt.len(),
                a.timelines.len()
            );
            return ExitCode::FAILURE;
        }
        Some(_) => println!(
            "determinism: timeline reconstruction OK — {} bytes refolded identically",
            a.timelines.len()
        ),
        None => println!(
            "determinism: timeline reconstruction skipped (bounded transition ring dropped records)"
        ),
    }
    if a == b {
        println!(
            "determinism: OK — {} event-stream + {} transition-log bytes identical",
            a.events.len(),
            a.transitions.len()
        );
        ExitCode::SUCCESS
    } else {
        let (x, y, stream) = if a.events == b.events {
            (&a.transitions, &b.transitions, "transition log")
        } else {
            (&a.events, &b.events, "event stream")
        };
        let pos = x
            .bytes()
            .zip(y.bytes())
            .position(|(p, q)| p != q)
            .unwrap_or(x.len().min(y.len()));
        eprintln!(
            "determinism: FAILED — {stream} diverges at byte {pos} (lengths {} vs {})",
            x.len(),
            y.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        list();
        return ExitCode::SUCCESS;
    }
    if let Some(jobs) = opts.jobs {
        par::set_parallelism(jobs);
    }
    if let Some(days) = opts.determinism {
        return run_determinism(days, &opts);
    }

    let specs = match selected(&opts) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if specs.is_empty() {
        eprintln!("error: selection matched no experiments");
        return ExitCode::FAILURE;
    }

    let start = std::time::Instant::now();
    let outcomes = par::par_map(specs, registry::run_recorded);
    let wall_secs = start.elapsed().as_secs_f64();

    if !opts.quiet && !opts.check {
        for outcome in &outcomes {
            print!("{}", outcome.text);
        }
    }

    let mut failures = 0u32;
    if opts.bless {
        if let Err(e) = std::fs::create_dir_all(GOLDEN_DIR) {
            eprintln!("error: could not create {GOLDEN_DIR}: {e}");
            return ExitCode::FAILURE;
        }
        for outcome in &outcomes {
            let path = golden_path(outcome.spec.id);
            match std::fs::write(&path, outcome.json.to_pretty()) {
                Ok(()) => println!("blessed {}", path.display()),
                Err(e) => {
                    eprintln!("error: could not write {}: {e}", path.display());
                    failures += 1;
                }
            }
        }
    } else if opts.check {
        for outcome in &outcomes {
            match check_outcome(outcome) {
                Ok(()) => println!("ok   {:<4} ({:.1}s)", outcome.spec.id, outcome.wall_secs),
                Err(e) => {
                    println!("FAIL {:<4} ({:.1}s)", outcome.spec.id, outcome.wall_secs);
                    eprintln!("  {e}");
                    // First mismatch becomes a file-scoped annotation so a
                    // red run is triaged from the Actions summary alone.
                    if failures == 0 && gha::enabled() {
                        println!(
                            "{}",
                            gha::format_error(
                                &format!("crates/bench/golden/{}.json", outcome.spec.id),
                                "golden snapshot mismatch",
                                &e,
                            )
                        );
                    }
                    failures += 1;
                }
            }
        }
    }

    match opts.sweep_out.as_deref() {
        Some("none") => {}
        Some(path) => write_sweep(path, &outcomes, wall_secs, par::parallelism()),
        None => write_sweep("BENCH_sweep.json", &outcomes, wall_secs, par::parallelism()),
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) diverged from golden snapshots");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
