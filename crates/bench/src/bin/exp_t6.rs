//! Experiment T6 — heterogeneous GPU pools.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::t6` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments t6` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("t6");
}
