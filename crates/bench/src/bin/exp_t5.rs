//! Experiment T5 — elastic (Pollux-style) admission.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::t5` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments t5` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("t5");
}
