//! Experiment F7 — failure injection and fail-safe runtime switching.
//!
//! Sweeps per-node MTBF and compares the execution layer with and without
//! fail-safe switching (paper Table 1): completion rate, faults absorbed,
//! wasted GPU-hours and mean JCT. See EXPERIMENTS.md § F7.

use tacc_bench::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_exec::FailoverPolicy;
use tacc_metrics::Table;

fn main() {
    let trace = standard_trace(7.0, 2.0);
    println!(
        "F7: node-failure sweep ({} submissions, 7 days, 32 nodes)\n",
        trace.len()
    );

    let mut table = Table::new(
        "F7: failover vs fail-job under node faults",
        &[
            "MTBF/node",
            "policy",
            "faults",
            "failed jobs",
            "completion %",
            "wasted GPU-h",
            "mean JCT (h)",
        ],
    );

    for (label, mtbf_days) in [("30 days", 30.0), ("10 days", 10.0), ("3 days", 3.0)] {
        for policy in [FailoverPolicy::FailJob, FailoverPolicy::SwitchRuntime] {
            let config = campus_config(|c| {
                c.node_mtbf_secs = Some(mtbf_days * 86_400.0);
                c.failover = policy;
            });
            let report = Platform::new(config).run_trace(&trace);
            let done =
                report.completed as f64 / (report.completed as f64 + report.failed as f64).max(1.0);
            table.row(vec![
                label.into(),
                match policy {
                    FailoverPolicy::FailJob => "fail-job",
                    FailoverPolicy::SwitchRuntime => "switch-runtime",
                }
                .into(),
                report.faults.into(),
                report.failed.into(),
                (done * 100.0).into(),
                report.wasted_gpu_hours.into(),
                hours(report.jct.mean()).into(),
            ]);
        }
    }
    println!("{table}");
    println!("(with switching, a faulted all-reduce job restarts from checkpoint on the");
    println!(" parameter-server runtime instead of dying; waste = lost progress + re-work)");
}
