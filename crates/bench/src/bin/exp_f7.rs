//! Experiment F7 — failure injection & fail-safe switching.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f7` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f7` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f7");
}
