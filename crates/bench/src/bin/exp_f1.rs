//! Experiment F1 — trace characterization.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f1` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f1` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f1");
}
