//! Experiment T7 — ML Productivity Goodput decomposition.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::t7` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments t7` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("t7");
}
