//! Experiment T3 — compiler delta cache.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::t3` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments t3` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("t3");
}
