//! Experiment F10 — capacity planning curve.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f10` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f10` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f10");
}
