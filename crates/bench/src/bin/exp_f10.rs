//! Experiment F10 — capacity planning.
//!
//! The operator's question: how many GPUs does this campus workload need
//! before queueing becomes acceptable? Replays the same demand against
//! cluster sizes from 128 to 512 GPUs (quotas scaled proportionally) and
//! reports the wait/utilization curve. See EXPERIMENTS.md § F10.

use tacc_bench::{hours, standard_trace};
use tacc_cluster::{ClusterSpec, GpuModel};
use tacc_core::{Platform, PlatformConfig};
use tacc_metrics::Table;
use tacc_workload::GroupRoster;

fn main() {
    let trace = standard_trace(7.0, 3.0);
    println!(
        "F10: capacity sweep for a fixed demand ({} submissions, 7 days)\n",
        trace.len()
    );

    let mut table = Table::new(
        "F10: cluster size vs service quality",
        &[
            "GPUs",
            "racks x nodes",
            "util %",
            "mean JCT (h)",
            "p95 wait (h)",
            "p99 wait (h)",
        ],
    );
    for racks in [2u32, 3, 4, 6, 8] {
        let gpus = racks * 8 * 8;
        let config = PlatformConfig {
            cluster: ClusterSpec::uniform(racks, 8, GpuModel::A100, 8),
            roster: GroupRoster::campus_default(gpus),
            ..PlatformConfig::default()
        };
        let report = Platform::new(config).run_trace(&trace);
        table.row(vec![
            (gpus as usize).into(),
            format!("{racks} x 8").into(),
            (report.mean_utilization * 100.0).into(),
            hours(report.jct.mean()).into(),
            hours(report.queue_delay.p95()).into(),
            hours(report.queue_delay.p99()).into(),
        ]);
    }
    println!("{table}");
    println!("(the knee of the p95-wait curve is the provisioning answer: beyond it,");
    println!(" extra GPUs buy idle capacity; before it, researchers queue for hours)");
}
