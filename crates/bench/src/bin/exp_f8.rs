//! Experiment F8 — dataset staging from the shared filesystem.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f8` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f8` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f8");
}
