//! Experiment F4 — backfill effectiveness.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f4` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f4` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f4");
}
