//! Experiment F4 — backfill effectiveness.
//!
//! Sweeps the multi-node job fraction (the knob that creates head-of-line
//! blocking) and compares no-backfill, EASY and conservative backfill on
//! utilization and p95 wait. See EXPERIMENTS.md § F4.

use tacc_bench::{campus_config, hours, multinode_trace};
use tacc_core::Platform;
use tacc_metrics::Table;
use tacc_sched::BackfillMode;

fn main() {
    println!("F4: backfill vs multi-node job fraction, 7-day traces, load 1.5\n");

    let mut util = Table::new(
        "F4a: cluster utilization (%) vs multi-node fraction",
        &["multi-node %", "none", "easy", "conservative"],
    );
    let mut wait = Table::new(
        "F4b: p95 wait (h) vs multi-node fraction",
        &["multi-node %", "none", "easy", "conservative"],
    );
    let mut backfills = Table::new(
        "F4c: backfilled starts",
        &["multi-node %", "none", "easy", "conservative"],
    );

    for frac in [0.05, 0.10, 0.20, 0.40] {
        let trace = multinode_trace(7.0, 1.5, frac);
        let mut u = vec![format!("{:.0}%", frac * 100.0).into()];
        let mut w = vec![format!("{:.0}%", frac * 100.0).into()];
        let mut b = vec![format!("{:.0}%", frac * 100.0).into()];
        for mode in [
            BackfillMode::None,
            BackfillMode::Easy,
            BackfillMode::Conservative,
        ] {
            let config = campus_config(|c| {
                c.scheduler.backfill = mode;
            });
            let report = Platform::new(config).run_trace(&trace);
            u.push((report.mean_utilization * 100.0).into());
            w.push(hours(report.queue_delay.p95()).into());
            b.push(report.backfill_starts.into());
        }
        util.row(u);
        wait.row(w);
        backfills.row(b);
    }
    println!("{util}");
    println!("{wait}");
    println!("{backfills}");
}
