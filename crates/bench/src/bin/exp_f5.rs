//! Experiment F5 — preemption & checkpoint-interval ablation.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f5` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f5` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f5");
}
