//! Experiment F9 — gang time-slicing.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f9` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f9` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f9");
}
