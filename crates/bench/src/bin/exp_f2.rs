//! Experiment F2 — quota borrowing vs static partitioning.
//!
//! The core operational argument of the shared-cluster paper: hard
//! per-group partitions strand capacity whenever group demand is bursty;
//! quota-with-borrowing lets best-effort work soak up idle GPUs and
//! reclaims them by preemption when owners return. This harness replays a
//! 7-day contended trace under the three regimes and prints both the
//! summary table and the daily utilization series (the figure's line data).
//! See EXPERIMENTS.md § F2.

use tacc_bench::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_metrics::Table;
use tacc_sched::QuotaMode;

fn main() {
    let trace = standard_trace(7.0, 3.0);
    println!(
        "F2: {} submissions over 7 days, 256 GPUs, load 3\n",
        trace.len()
    );

    let mut summary = Table::new(
        "F2: sharing regimes",
        &[
            "regime",
            "util %",
            "mean JCT (h)",
            "p95 wait (h)",
            "preempts",
            "goodput %",
            "fairness",
        ],
    );
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();

    for quota in [QuotaMode::Disabled, QuotaMode::Static, QuotaMode::Borrowing] {
        let config = campus_config(|c| {
            c.scheduler.quota = quota;
        });
        let mut platform = Platform::new(config);
        let report = platform.run_trace(&trace);
        summary.row(vec![
            quota.to_string().into(),
            (report.mean_utilization * 100.0).into(),
            hours(report.jct.mean()).into(),
            hours(report.queue_delay.p95()).into(),
            report.preemptions.into(),
            (report.goodput * 100.0).into(),
            report.fairness.into(),
        ]);
        // Daily group GPU-hours give the per-group service shape.
        let per_group: Vec<f64> = report.groups.iter().map(|g| g.gpu_hours).collect();
        series.push((quota.to_string(), per_group));
    }
    println!("{summary}");

    let mut groups = Table::new(
        "F2b: GPU-hours delivered per group (quota share in parentheses)",
        &["group", "disabled", "static", "borrowing"],
    );
    let quotas = tacc_workload::GroupRoster::campus_default(256);
    for gi in 0..8 {
        let gid = tacc_workload::GroupId::from_index(gi);
        groups.row(vec![
            format!("{} (q={})", quotas.name(gid), quotas.quota(gid)).into(),
            series[0].1[gi].into(),
            series[1].1[gi].into(),
            series[2].1[gi].into(),
        ]);
    }
    println!("{groups}");
}
