//! Experiment F2 — utilization: static partition vs borrowing.
//!
//! Thin shim: the body lives in `tacc_bench::experiments::f2` so the
//! parallel `experiments` runner and this standalone binary share it.
//! Prefer `experiments f2` (or `--check`) for golden-gated runs.

fn main() {
    tacc_bench::registry::run_binary("f2");
}
