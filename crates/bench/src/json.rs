//! A minimal deterministic JSON value for experiment results and golden
//! snapshots.
//!
//! The experiment runner compares fresh runs against checked-in goldens
//! with *byte* equality, so the serializer here is the contract: object
//! keys keep insertion order, floats print in Rust's shortest round-trip
//! form (bit-deterministic for a bit-deterministic simulator), and the
//! pretty printer always emits the same bytes for the same value. Using
//! our own writer (rather than an external serializer) keeps the golden
//! format independent of dependency versions.

use std::fmt::Write as _;

/// A JSON value with deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (construct via [`Json::num`] to handle NaN/inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a float, mapping non-finite values to descriptive strings
    /// (JSON has no NaN/inf; experiments may legitimately produce them,
    /// e.g. the mean of an empty sample set).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("NaN".to_owned())
        } else if v > 0.0 {
            Json::Str("+inf".to_owned())
        } else {
            Json::Str("-inf".to_owned())
        }
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_owned(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// golden-file format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    self.write_compact(out);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_num(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "Json::Num holds only finite values");
    // Rust's Display for f64 is the shortest string that round-trips,
    // which is deterministic and stable across platforms.
    let _ = write!(out, "{v}");
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shapes() {
        let v = Json::obj()
            .set("a", Json::num(1.5))
            .set("b", Json::Arr(vec![Json::num(1.0), "x".into()]))
            .set("c", Json::Bool(true));
        assert_eq!(v.to_compact(), r#"{"a":1.5,"b":[1,"x"],"c":true}"#);
    }

    #[test]
    fn escaping() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(v.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_becomes_string() {
        assert_eq!(Json::num(f64::NAN), Json::Str("NaN".into()));
        assert_eq!(Json::num(f64::INFINITY), Json::Str("+inf".into()));
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Str("-inf".into()));
    }

    #[test]
    fn pretty_is_deterministic_and_ends_with_newline() {
        let v = Json::obj().set(
            "rows",
            Json::Arr(vec![Json::Arr(vec![Json::num(1.0)]), Json::Arr(vec![])]),
        );
        let a = v.to_pretty();
        assert_eq!(a, v.to_pretty());
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"rows\": [\n"));
    }

    #[test]
    fn shortest_roundtrip_floats() {
        assert_eq!(Json::num(512.0).to_compact(), "512");
        assert_eq!(Json::num(0.1).to_compact(), "0.1");
        assert_eq!(Json::num(1.0 / 3.0).to_compact(), "0.3333333333333333");
    }
}
