//! A minimal deterministic JSON value for experiment results and golden
//! snapshots.
//!
//! The experiment runner compares fresh runs against checked-in goldens
//! with *byte* equality, so the serializer here is the contract: object
//! keys keep insertion order, floats print in Rust's shortest round-trip
//! form (bit-deterministic for a bit-deterministic simulator), and the
//! pretty printer always emits the same bytes for the same value. Using
//! our own writer (rather than an external serializer) keeps the golden
//! format independent of dependency versions.

use std::fmt::Write as _;

/// A JSON value with deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (construct via [`Json::num`] to handle NaN/inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a float, mapping non-finite values to descriptive strings
    /// (JSON has no NaN/inf; experiments may legitimately produce them,
    /// e.g. the mean of an empty sample set).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("NaN".to_owned())
        } else if v > 0.0 {
            Json::Str("+inf".to_owned())
        } else {
            Json::Str("-inf".to_owned())
        }
    }

    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_owned(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for absent keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for non-arrays.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document. The accepted grammar is standard JSON (a
    /// superset of what the serializer emits), so a committed report can
    /// be read back and compared against a fresh run. Errors carry the
    /// byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// golden-file format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    self.write_compact(out);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

/// Recursive-descent JSON reader over raw bytes. Kept panic-free: every
/// failure path reports the byte offset instead.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at offset {start}"))?;
        let v: f64 = text
            .parse()
            .map_err(|_| format!("bad number `{text}` at offset {start}"))?;
        if v.is_finite() {
            Ok(Json::Num(v))
        } else {
            Err(format!("non-finite number `{text}` at offset {start}"))
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        let slice = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| format!("truncated \\u escape at offset {start}"))?;
        let text =
            std::str::from_utf8(slice).map_err(|_| format!("bad \\u escape at offset {start}"))?;
        let v = u32::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape `{text}` at offset {start}"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a maximal run of plain (non-escape) bytes.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at offset {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("truncated escape at offset {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pairs encode astral-plane chars.
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(format!(
                                        "unpaired surrogate before offset {}",
                                        self.pos
                                    ));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                format!("invalid codepoint before offset {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape `\\{}` at offset {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                // The fast path stops only on `"`, `\` or end of input.
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_num(out: &mut String, v: f64) {
    debug_assert!(v.is_finite(), "Json::Num holds only finite values");
    // Rust's Display for f64 is the shortest string that round-trips,
    // which is deterministic and stable across platforms.
    let _ = write!(out, "{v}");
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shapes() {
        let v = Json::obj()
            .set("a", Json::num(1.5))
            .set("b", Json::Arr(vec![Json::num(1.0), "x".into()]))
            .set("c", Json::Bool(true));
        assert_eq!(v.to_compact(), r#"{"a":1.5,"b":[1,"x"],"c":true}"#);
    }

    #[test]
    fn escaping() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(v.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_becomes_string() {
        assert_eq!(Json::num(f64::NAN), Json::Str("NaN".into()));
        assert_eq!(Json::num(f64::INFINITY), Json::Str("+inf".into()));
        assert_eq!(Json::num(f64::NEG_INFINITY), Json::Str("-inf".into()));
    }

    #[test]
    fn pretty_is_deterministic_and_ends_with_newline() {
        let v = Json::obj().set(
            "rows",
            Json::Arr(vec![Json::Arr(vec![Json::num(1.0)]), Json::Arr(vec![])]),
        );
        let a = v.to_pretty();
        assert_eq!(a, v.to_pretty());
        assert!(a.ends_with('\n'));
        assert!(a.contains("\"rows\": [\n"));
    }

    #[test]
    fn shortest_roundtrip_floats() {
        assert_eq!(Json::num(512.0).to_compact(), "512");
        assert_eq!(Json::num(0.1).to_compact(), "0.1");
        assert_eq!(Json::num(1.0 / 3.0).to_compact(), "0.3333333333333333");
    }

    #[test]
    fn parse_roundtrips_serializer_output() {
        let v = Json::obj()
            .set("a", Json::num(1.5))
            .set("b", Json::Arr(vec![Json::num(1.0), "x\n\"y\"".into()]))
            .set("c", Json::Bool(true))
            .set("d", Json::Null)
            .set("e", Json::obj().set("nested", Json::num(-2.25e3)));
        assert_eq!(Json::parse(&v.to_compact()), Ok(v.clone()));
        assert_eq!(Json::parse(&v.to_pretty()), Ok(v));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""a\u0041\ud83d\ude00b""#),
            Ok(Json::Str("aA\u{1f600}b".to_owned()))
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"abc",
            "{} extra",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"scenarios":[{"id":"x","rounds":3}]}"#).unwrap();
        let scenarios = doc.get("scenarios").and_then(Json::items).unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].get("id").and_then(Json::as_str), Some("x"));
        assert_eq!(scenarios[0].get("rounds"), Some(&Json::Num(3.0)));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("scenarios"), None);
    }
}
