//! The service-mode load generator: N concurrent `tcloud` clients
//! hammering a live `taccd` daemon, measuring sustained submissions/sec
//! and admission-latency quantiles.
//!
//! "Admission latency" here is the full durable round trip: build the
//! command, frame it, cross the socket, wait for the daemon to validate,
//! apply, journal, and **fsync** the command, and read the
//! acknowledgement back. That is the latency a paper-§4 user feels
//! between `tcloud submit` and the job existing durably.
//!
//! Unlike the hot-path harness (whose counters are deterministic and
//! CI-gated), everything this module measures is wall time by nature —
//! the report is informational, uploaded as a CI artifact
//! (`BENCH_service.json`) and never byte-compared.

use std::path::{Path, PathBuf};
use std::time::Instant;

use tacc_core::Command;
use tacc_tcloud::{DaemonClient, RetryPolicy};
use tacc_workload::{GroupId, TaskSchema};

use crate::json::Json;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct ServiceBenchConfig {
    /// Concurrent client connections (the acceptance floor is 8).
    pub clients: usize,
    /// Submissions each client performs.
    pub requests_per_client: usize,
    /// The daemon socket to connect to.
    pub socket: PathBuf,
}

impl Default for ServiceBenchConfig {
    fn default() -> Self {
        ServiceBenchConfig {
            clients: 8,
            requests_per_client: 250,
            socket: PathBuf::from("/tmp/taccd.sock"),
        }
    }
}

/// Aggregated load-generation outcome.
#[derive(Debug, Clone)]
pub struct ServiceBenchResult {
    /// Concurrent clients that ran.
    pub clients: usize,
    /// Total acknowledged submissions across all clients.
    pub acknowledged: usize,
    /// Requests that failed (transport or daemon errors).
    pub errors: usize,
    /// Wall time of the whole load phase, seconds.
    pub wall_secs: f64,
    /// Sustained acknowledged submissions per second.
    pub submissions_per_sec: f64,
    /// Median admission latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile admission latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed admission latency, milliseconds.
    pub max_ms: f64,
}

/// A tiny self-contained schema, unique per client/request so daemon-side
/// job names stay distinguishable in transition logs.
fn bench_schema(client: usize, request: usize) -> Option<TaskSchema> {
    TaskSchema::builder(&format!("svc-c{client}-r{request}"), GroupId::from_index(0))
        .est_duration_secs(60.0)
        .build()
        .ok()
}

/// Runs the load: `clients` threads, each with its own connection,
/// each submitting `requests_per_client` jobs back to back.
///
/// # Errors
///
/// A human-readable message when no client could connect or every
/// request failed — partial failures are reported in the result instead.
pub fn run_load(config: &ServiceBenchConfig) -> Result<ServiceBenchResult, String> {
    let clients = config.clients.max(1);
    let per_client = config.requests_per_client.max(1);

    // tacc-lint: allow(wall-clock, reason = "service benchmark measures real socket+fsync round trips; informational artifact, never byte-compared")
    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let socket = config.socket.clone();
        handles.push(std::thread::spawn(move || {
            client_loop(&socket, client, per_client)
        }));
    }
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(clients * per_client);
    let mut errors = 0usize;
    let mut connect_failures = 0usize;
    for handle in handles {
        match handle.join() {
            Ok(Ok((lats, errs))) => {
                latencies_ms.extend(lats);
                errors += errs;
            }
            Ok(Err(_)) => connect_failures += 1,
            Err(_) => connect_failures += 1,
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();

    if connect_failures == clients {
        return Err(format!(
            "no client could connect to {}",
            config.socket.display()
        ));
    }
    if latencies_ms.is_empty() {
        return Err("every request failed; nothing to report".to_owned());
    }

    latencies_ms.sort_by(f64::total_cmp);
    let acknowledged = latencies_ms.len();
    Ok(ServiceBenchResult {
        clients,
        acknowledged,
        errors: errors + connect_failures * per_client,
        wall_secs,
        submissions_per_sec: acknowledged as f64 / wall_secs.max(1e-9),
        p50_ms: quantile(&latencies_ms, 0.50),
        p99_ms: quantile(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
    })
}

/// One client's life: connect, submit `requests` jobs, record each
/// acknowledged round trip in milliseconds.
fn client_loop(socket: &Path, client: usize, requests: usize) -> Result<(Vec<f64>, usize), String> {
    let mut conn =
        DaemonClient::connect(socket, RetryPolicy::default()).map_err(|e| e.to_string())?;
    let mut latencies = Vec::with_capacity(requests);
    let mut errors = 0usize;
    for request in 0..requests {
        let Some(schema) = bench_schema(client, request) else {
            errors += 1;
            continue;
        };
        let command = Command::Submit {
            schema,
            service_secs: 60.0,
        };
        // tacc-lint: allow(wall-clock, reason = "per-request admission latency is the quantity under measurement")
        let sent = Instant::now();
        match conn.mutate(&command) {
            Ok(_) => latencies.push(sent.elapsed().as_secs_f64() * 1e3),
            Err(_) => errors += 1,
        }
    }
    Ok((latencies, errors))
}

/// Nearest-rank quantile over an ascending-sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The `BENCH_service.json` document.
pub fn report_json(result: &ServiceBenchResult) -> Json {
    Json::obj()
        .set("schema_version", 1u64.into())
        .set("benchmark", "service".into())
        .set(
            "workload",
            Json::obj()
                .set("clients", result.clients.into())
                .set("acknowledged", result.acknowledged.into())
                .set("errors", result.errors.into()),
        )
        .set(
            "throughput",
            Json::obj()
                .set("wall_secs", result.wall_secs.into())
                .set("submissions_per_sec", result.submissions_per_sec.into()),
        )
        .set(
            "admission_latency_ms",
            Json::obj()
                .set("p50", result.p50_ms.into())
                .set("p99", result.p99_ms.into())
                .set("max", result.max_ms.into()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&sorted, 0.50), 50.0);
        assert_eq!(quantile(&sorted, 0.99), 99.0);
        assert_eq!(quantile(&sorted, 1.0), 100.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_shape_is_stable() {
        let result = ServiceBenchResult {
            clients: 8,
            acknowledged: 2000,
            errors: 0,
            wall_secs: 2.5,
            submissions_per_sec: 800.0,
            p50_ms: 1.2,
            p99_ms: 4.5,
            max_ms: 9.0,
        };
        let doc = report_json(&result);
        assert_eq!(
            doc.get("workload").and_then(|w| w.get("clients")),
            Some(&Json::Num(8.0))
        );
        assert_eq!(
            doc.get("admission_latency_ms").and_then(|l| l.get("p99")),
            Some(&Json::Num(4.5))
        );
        assert!(doc.to_pretty().contains("submissions_per_sec"));
    }

    #[test]
    fn end_to_end_against_an_in_process_daemon() {
        use tacc_taccd::{ClockMode, Daemon, DaemonConfig, EngineConfig};
        let mut socket = std::env::temp_dir();
        socket.push(format!("tacc-bench-svc-{}.sock", std::process::id()));
        let mut journal = std::env::temp_dir();
        journal.push(format!("tacc-bench-svc-{}.journal", std::process::id()));
        std::fs::remove_file(&journal).ok();
        let (daemon, _) = Daemon::start(DaemonConfig {
            socket: socket.clone(),
            engine: EngineConfig {
                journal: journal.clone(),
                platform: tacc_core::PlatformConfig::default(),
                clock: ClockMode::Logical,
            },
        })
        .expect("daemon starts");

        let result = run_load(&ServiceBenchConfig {
            clients: 8,
            requests_per_client: 5,
            socket: socket.clone(),
        })
        .expect("load completes");
        assert_eq!(result.clients, 8);
        assert_eq!(result.acknowledged, 40, "every submit is acknowledged");
        assert_eq!(result.errors, 0);
        assert!(result.p99_ms >= result.p50_ms);
        assert!(result.submissions_per_sec > 0.0);

        daemon.stop();
        std::fs::remove_file(&journal).ok();
    }
}
