//! The experiment registry: every EXPERIMENTS.md table/figure as a named,
//! runnable entry.
//!
//! Each experiment is a pure `fn(&mut dyn Reporter) -> ExperimentResult`
//! over the canonical trace definitions in the crate root, so the same
//! function backs the legacy `exp_*` binary (streaming to stdout), the
//! parallel `experiments` runner, and the golden-snapshot check.

use crate::experiments;
use crate::json::Json;
use crate::report::{ExperimentResult, PrintReporter, RecordingReporter, Reporter};
use std::time::Instant;

/// How expensive an experiment is, used to pick CI subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Replays 7-day traces (or no trace at all); seconds each in release.
    Fast,
    /// Replays the 30-day characterization trace; the slow tail.
    Long,
}

impl Tier {
    /// Lower-case label used by `--tier` and `--list`.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Long => "long",
        }
    }
}

/// One registered experiment.
pub struct ExperimentSpec {
    /// Short identifier (`f1`…`f10`, `t1`…`t7`) — also the golden file stem.
    pub id: &'static str,
    /// The EXPERIMENTS.md section heading this regenerates.
    pub title: &'static str,
    /// Cost class for CI tiering.
    pub tier: Tier,
    /// The experiment body.
    pub run: fn(&mut dyn Reporter) -> ExperimentResult,
}

/// Every experiment, in EXPERIMENTS.md presentation order.
pub static ALL: &[ExperimentSpec] = &[
    ExperimentSpec {
        id: "f1",
        title: "F1 — trace characterization",
        tier: Tier::Long,
        run: experiments::f1::run,
    },
    ExperimentSpec {
        id: "t1",
        title: "T1 — scheduling policy comparison",
        tier: Tier::Fast,
        run: experiments::t1::run,
    },
    ExperimentSpec {
        id: "f2",
        title: "F2 — utilization: static partition vs borrowing",
        tier: Tier::Fast,
        run: experiments::f2::run,
    },
    ExperimentSpec {
        id: "f3",
        title: "F3 — fairness under load sweep",
        tier: Tier::Fast,
        run: experiments::f3::run,
    },
    ExperimentSpec {
        id: "f4",
        title: "F4 — backfill effectiveness",
        tier: Tier::Fast,
        run: experiments::f4::run,
    },
    ExperimentSpec {
        id: "f5",
        title: "F5 — preemption & checkpoint-interval ablation",
        tier: Tier::Fast,
        run: experiments::f5::run,
    },
    ExperimentSpec {
        id: "t2",
        title: "T2 — placement strategy comparison",
        tier: Tier::Fast,
        run: experiments::t2::run,
    },
    ExperimentSpec {
        id: "t3",
        title: "T3 — compiler delta cache",
        tier: Tier::Fast,
        run: experiments::t3::run,
    },
    ExperimentSpec {
        id: "f6",
        title: "F6 — distributed-training scaling",
        tier: Tier::Fast,
        run: experiments::f6::run,
    },
    ExperimentSpec {
        id: "f7",
        title: "F7 — failure injection & fail-safe switching",
        tier: Tier::Fast,
        run: experiments::f7::run,
    },
    ExperimentSpec {
        id: "f8",
        title: "F8 — dataset staging from the shared filesystem",
        tier: Tier::Fast,
        run: experiments::f8::run,
    },
    ExperimentSpec {
        id: "f9",
        title: "F9 — gang time-slicing",
        tier: Tier::Fast,
        run: experiments::f9::run,
    },
    ExperimentSpec {
        id: "t5",
        title: "T5 — elastic (Pollux-style) admission",
        tier: Tier::Fast,
        run: experiments::t5::run,
    },
    ExperimentSpec {
        id: "f10",
        title: "F10 — capacity planning curve",
        tier: Tier::Fast,
        run: experiments::f10::run,
    },
    ExperimentSpec {
        id: "t6",
        title: "T6 — heterogeneous GPU pools",
        tier: Tier::Fast,
        run: experiments::t6::run,
    },
    ExperimentSpec {
        id: "t7",
        title: "T7 — ML Productivity Goodput decomposition",
        tier: Tier::Fast,
        run: experiments::t7::run,
    },
];

/// Looks up an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<&'static ExperimentSpec> {
    let id = id.to_ascii_lowercase();
    ALL.iter().find(|e| e.id == id)
}

/// Entry point for the thin `exp_*` shims: stream one experiment to stdout.
///
/// # Panics
///
/// Panics if `id` is not a registered experiment (a shim/registry mismatch
/// is a bug, not a user error).
pub fn run_binary(id: &str) {
    let spec = find(id).unwrap_or_else(|| panic!("experiment `{id}` is not registered"));
    (spec.run)(&mut PrintReporter);
}

/// One recorded run: everything the runner needs for printing, golden
/// comparison, and the sweep summary.
pub struct RunOutcome {
    /// The experiment that ran.
    pub spec: &'static ExperimentSpec,
    /// Human-readable text, byte-identical to the shim's stdout.
    pub text: String,
    /// Golden JSON document (excludes wall-clock, which is not
    /// reproducible).
    pub json: Json,
    /// Wall-clock of this run in seconds.
    pub wall_secs: f64,
}

/// Runs one experiment with a recording reporter.
pub fn run_recorded(spec: &'static ExperimentSpec) -> RunOutcome {
    // tacc-lint: allow(wall-clock, reason = "per-experiment wall time for the sweep summary; excluded from golden JSON and never compared")
    let start = Instant::now();
    let mut reporter = RecordingReporter::new();
    let result = (spec.run)(&mut reporter);
    let wall_secs = start.elapsed().as_secs_f64();
    let text = reporter.text().to_owned();
    let json = Json::obj()
        .set("id", spec.id.into())
        .set("title", spec.title.into())
        .set("headline", result.headline.into());
    let json = match reporter.into_json() {
        Json::Obj(pairs) => {
            let mut merged = json;
            for (k, v) in pairs {
                merged = merged.set(&k, v);
            }
            merged
        }
        other => json.set("output", other),
    };
    RunOutcome {
        spec,
        text,
        json,
        wall_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_findable() {
        for spec in ALL {
            assert!(std::ptr::eq(find(spec.id).unwrap(), spec));
        }
        let ids: std::collections::BTreeSet<_> = ALL.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), ALL.len());
    }

    #[test]
    fn only_f1_is_long_tier() {
        let long: Vec<_> = ALL
            .iter()
            .filter(|e| e.tier == Tier::Long)
            .map(|e| e.id)
            .collect();
        assert_eq!(long, vec!["f1"]);
    }
}
