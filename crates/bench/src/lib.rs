//! # tacc-bench
//!
//! Experiment-regeneration harnesses and Criterion micro-benchmarks for the
//! `tacc-rs` reproduction.
//!
//! Every table and figure in EXPERIMENTS.md has a binary here that
//! regenerates it:
//!
//! | Target | Experiment |
//! |---|---|
//! | `exp_f1` | F1 — trace characterization |
//! | `exp_t1` | T1 — scheduling policy comparison |
//! | `exp_f2` | F2 — utilization: static partition vs borrowing |
//! | `exp_f3` | F3 — fairness under load sweep |
//! | `exp_f4` | F4 — backfill effectiveness |
//! | `exp_f5` | F5 — preemption & checkpoint-interval ablation |
//! | `exp_t2` | T2 — placement strategy comparison |
//! | `exp_t3` | T3 — compiler delta cache |
//! | `exp_f6` | F6 — distributed-training scaling |
//! | `exp_f7` | F7 — failure injection & fail-safe switching |
//! | `exp_f8` | F8 — dataset staging from the shared filesystem |
//! | `exp_f9` | F9 — gang time-slicing |
//! | `exp_t5` | T5 — elastic (Pollux-style) admission |
//! | `exp_f10` | F10 — capacity planning curve |
//! | `exp_t6` | T6 — heterogeneous GPU pools |
//! | `exp_t7` | T7 — ML Productivity Goodput decomposition |
//! | `cargo bench` | T4 — scheduler/allocator/cache/comm/engine latency |
//! | `service` | Service mode — durable-admission throughput/latency against a live `taccd` (BENCH_service.json) |
//!
//! The `exp_*` binaries are thin shims over the [`registry`]: each
//! experiment body lives in [`experiments`] as a pure
//! `fn(&mut dyn Reporter) -> ExperimentResult`. The preferred entry point
//! is the unified runner, which fans experiments and their sweep cells out
//! across threads and gates results against golden JSON snapshots in
//! `crates/bench/golden/`:
//!
//! ```sh
//! cargo run --release -p tacc-bench --bin experiments -- --check   # regression gate
//! cargo run --release -p tacc-bench --bin experiments -- --bless   # update goldens
//! cargo bench -p tacc-bench                                        # T4
//! ```
//!
//! This library holds the shared setup (canonical cluster and trace
//! definitions), the experiment registry, and the runner's supporting
//! machinery (bounded parallelism, output capture, deterministic JSON).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod determinism;
pub mod experiments;
pub mod gha;
pub mod hotpath;
pub mod json;
pub mod registry;
pub mod report;
pub mod service;

pub use tacc_par as par;

use tacc_core::PlatformConfig;
use tacc_workload::{GenParams, Trace, TraceGenerator};

/// The canonical trace seed shared by all experiments, so that policy
/// comparisons replay the identical submission sequence.
pub const TRACE_SEED: u64 = 20_240_601;

/// The canonical moderately-contended workload: `days` days at `load`×
/// the default arrival rate on the 256-GPU campus cluster.
pub fn standard_trace(days: f64, load: f64) -> Trace {
    TraceGenerator::new(GenParams::default().with_load_factor(load), TRACE_SEED).generate_days(days)
}

/// A trace with a controlled multi-node (≥16 GPU) job fraction.
pub fn multinode_trace(days: f64, load: f64, multi_fraction: f64) -> Trace {
    let params = GenParams::default()
        .with_load_factor(load)
        .with_multi_node_fraction(multi_fraction);
    TraceGenerator::new(params, TRACE_SEED).generate_days(days)
}

/// The canonical 256-GPU platform configuration, optionally customized.
pub fn campus_config(customize: impl FnOnce(&mut PlatformConfig)) -> PlatformConfig {
    let mut config = PlatformConfig::default();
    customize(&mut config);
    config
}

/// Formats seconds as hours with two decimals (experiment tables report
/// hours).
pub fn hours(secs: f64) -> f64 {
    secs / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_trace_is_reproducible() {
        let a = standard_trace(0.5, 1.0);
        let b = standard_trace(0.5, 1.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn multinode_fraction_changes_mix() {
        let base = standard_trace(1.0, 1.0);
        let heavy = multinode_trace(1.0, 1.0, 0.5);
        let count_multi = |t: &Trace| {
            t.records()
                .iter()
                .filter(|r| r.schema.total_gpus() >= 16)
                .count() as f64
                / t.len() as f64
        };
        assert!(count_multi(&heavy) > count_multi(&base));
    }

    #[test]
    fn hours_conversion() {
        assert_eq!(hours(7200.0), 2.0);
    }
}
