//! Experiment T1 — scheduling policy comparison.
//!
//! Replays the same contended 7-day trace under FIFO, SJF, fair-share and
//! DRF ordering (all with EASY backfill and packing placement, quotas off)
//! and reports the policy-facing metrics. See EXPERIMENTS.md § T1.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_metrics::Table;
use tacc_sched::PolicyKind;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 4.0);
    let headline = format!(
        "T1: {} submissions over 7 days, 256 GPUs, load factor 4",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut table = Table::new(
        "T1: queue-ordering policy comparison",
        &[
            "policy",
            "mean JCT (h)",
            "p50 JCT (h)",
            "p95 JCT (h)",
            "p95 wait (h)",
            "util %",
            "backfills",
        ],
    );
    let rows = par_map(
        vec![
            PolicyKind::Fifo,
            PolicyKind::Sjf,
            PolicyKind::FairShare,
            PolicyKind::Drf,
            PolicyKind::MultiFactor,
        ],
        |policy| {
            let config = campus_config(|c| {
                c.scheduler.policy = policy;
            });
            let report = Platform::new(config).run_trace(&trace);
            vec![
                policy.to_string().into(),
                hours(report.jct.mean()).into(),
                hours(report.jct.p50()).into(),
                hours(report.jct.p95()).into(),
                hours(report.queue_delay.p95()).into(),
                (report.mean_utilization * 100.0).into(),
                report.backfill_starts.into(),
            ]
        },
    );
    for row in rows {
        table.row(row);
    }
    r.table(&table);
    r.line("(SJF sorts on the user's noisy estimate, not the oracle duration)");

    ExperimentResult { headline }
}
