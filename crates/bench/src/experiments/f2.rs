//! Experiment F2 — quota borrowing vs static partitioning.
//!
//! The core operational argument of the shared-cluster paper: hard
//! per-group partitions strand capacity whenever group demand is bursty;
//! quota-with-borrowing lets best-effort work soak up idle GPUs and
//! reclaims them by preemption when owners return. This harness replays a
//! 7-day contended trace under the three regimes and prints both the
//! summary table and the daily utilization series (the figure's line data).
//! See EXPERIMENTS.md § F2.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_metrics::{Cell, Table};
use tacc_sched::QuotaMode;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 3.0);
    let headline = format!(
        "F2: {} submissions over 7 days, 256 GPUs, load 3",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut summary = Table::new(
        "F2: sharing regimes",
        &[
            "regime",
            "util %",
            "mean JCT (h)",
            "p95 wait (h)",
            "preempts",
            "goodput %",
            "fairness",
        ],
    );

    // One sweep cell per sharing regime; all three replay the same trace.
    type RegimeCell = (Vec<Cell>, Vec<f64>);
    let cells: Vec<RegimeCell> = par_map(
        vec![QuotaMode::Disabled, QuotaMode::Static, QuotaMode::Borrowing],
        |quota| {
            let config = campus_config(|c| {
                c.scheduler.quota = quota;
            });
            let mut platform = Platform::new(config);
            let report = platform.run_trace(&trace);
            let row = vec![
                quota.to_string().into(),
                (report.mean_utilization * 100.0).into(),
                hours(report.jct.mean()).into(),
                hours(report.queue_delay.p95()).into(),
                report.preemptions.into(),
                (report.goodput * 100.0).into(),
                report.fairness.into(),
            ];
            // Daily group GPU-hours give the per-group service shape.
            let per_group: Vec<f64> = report.groups.iter().map(|g| g.gpu_hours).collect();
            (row, per_group)
        },
    );
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (row, per_group) in cells {
        summary.row(row);
        series.push(per_group);
    }
    r.table(&summary);

    let mut groups = Table::new(
        "F2b: GPU-hours delivered per group (quota share in parentheses)",
        &["group", "disabled", "static", "borrowing"],
    );
    let quotas = tacc_workload::GroupRoster::campus_default(256);
    for (gi, ((disabled, fixed), borrowing)) in
        series[0].iter().zip(&series[1]).zip(&series[2]).enumerate()
    {
        let gid = tacc_workload::GroupId::from_index(gi);
        groups.row(vec![
            format!("{} (q={})", quotas.name(gid), quotas.quota(gid)).into(),
            (*disabled).into(),
            (*fixed).into(),
            (*borrowing).into(),
        ]);
    }
    r.table(&groups);

    ExperimentResult { headline }
}
