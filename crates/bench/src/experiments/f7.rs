//! Experiment F7 — failure injection and fail-safe runtime switching.
//!
//! Sweeps per-node MTBF and compares the execution layer with and without
//! fail-safe switching (paper Table 1): completion rate, faults absorbed,
//! wasted GPU-hours and mean JCT. See EXPERIMENTS.md § F7.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_exec::FailoverPolicy;
use tacc_metrics::Table;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 2.0);
    let headline = format!(
        "F7: node-failure sweep ({} submissions, 7 days, 32 nodes)",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut table = Table::new(
        "F7: failover vs fail-job under node faults",
        &[
            "MTBF/node",
            "policy",
            "faults",
            "failed jobs",
            "completion %",
            "wasted GPU-h",
            "mean JCT (h)",
        ],
    );

    let mut cells = Vec::new();
    for (label, mtbf_days) in [("30 days", 30.0), ("10 days", 10.0), ("3 days", 3.0)] {
        for policy in [FailoverPolicy::FailJob, FailoverPolicy::SwitchRuntime] {
            cells.push((label, mtbf_days, policy));
        }
    }
    let rows = par_map(cells, |(label, mtbf_days, policy)| {
        let config = campus_config(|c| {
            c.node_mtbf_secs = Some(mtbf_days * 86_400.0);
            c.failover = policy;
        });
        let report = Platform::new(config).run_trace(&trace);
        let done =
            report.completed as f64 / (report.completed as f64 + report.failed as f64).max(1.0);
        vec![
            label.into(),
            match policy {
                FailoverPolicy::FailJob => "fail-job",
                FailoverPolicy::SwitchRuntime => "switch-runtime",
            }
            .into(),
            report.faults.into(),
            report.failed.into(),
            (done * 100.0).into(),
            report.wasted_gpu_hours.into(),
            hours(report.jct.mean()).into(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    r.table(&table);
    r.line("(with switching, a faulted all-reduce job restarts from checkpoint on the");
    r.line(" parameter-server runtime instead of dying; waste = lost progress + re-work)");

    ExperimentResult { headline }
}
