//! Experiment F1 — trace characterization.
//!
//! Regenerates the workload-analysis figure: job-duration CDF, GPU-demand
//! histogram, and mean arrival rate by hour of day, over a 30-day campus
//! trace. See EXPERIMENTS.md § F1.

use crate::report::{ExperimentResult, Reporter};
use crate::standard_trace;
use tacc_metrics::{Histogram, Table};

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let days = 30.0;
    let trace = standard_trace(days, 1.0);
    let stats = trace.stats();

    let headline = format!(
        "F1: {} submissions over {days} days ({:.0} GPU-hours of work)",
        trace.len(),
        stats.total_gpu_hours
    );
    r.line(&format!("{headline}\n"));

    // --- Panel (a): duration CDF ------------------------------------
    let mut cdf_table = Table::new("F1a: job duration CDF", &["duration", "P(X <= x)"]);
    for (label, secs) in [
        ("1 min", 60.0),
        ("5 min", 300.0),
        ("15 min", 900.0),
        ("1 hour", 3_600.0),
        ("4 hours", 14_400.0),
        ("12 hours", 43_200.0),
        ("1 day", 86_400.0),
        ("3 days", 259_200.0),
        ("7 days", 604_800.0),
    ] {
        cdf_table.row(vec![
            label.into(),
            stats.duration_cdf.fraction_at_or_below(secs).into(),
        ]);
    }
    r.table(&cdf_table);
    r.line(&format!(
        "median {:.0}s  mean {:.0}s  p95 {:.0}s  (mean >> median: heavy tail)\n",
        stats.duration_summary.p50(),
        stats.duration_summary.mean(),
        stats.duration_summary.p95()
    ));

    // --- Panel (b): GPU demand histogram ----------------------------
    let mut demand = Table::new("F1b: per-job GPU demand", &["GPUs", "jobs", "fraction"]);
    let gpu_jobs: Vec<u32> = trace
        .records()
        .iter()
        .filter(|rec| !rec.schema.kind.is_cpu_only())
        .map(|rec| rec.schema.total_gpus())
        .collect();
    for target in [1u32, 2, 4, 8, 16, 32, 64] {
        let count = gpu_jobs.iter().filter(|&&g| g == target).count();
        demand.row(vec![
            (target as usize).into(),
            count.into(),
            (count as f64 / gpu_jobs.len() as f64).into(),
        ]);
    }
    r.table(&demand);

    // --- Panel (c): diurnal arrival shape ---------------------------
    let mut hourly = Histogram::linear(0.0, 24.0, 24);
    for rec in trace.records() {
        hourly.record((rec.submit_secs / 3600.0) % 24.0);
    }
    let mut arrivals = Table::new(
        "F1c: arrivals by hour of day (mean jobs/hour)",
        &["hour", "jobs/h"],
    );
    for bucket in hourly.buckets() {
        arrivals.row(vec![
            format!("{:02.0}:00", bucket.lo).into(),
            (bucket.count as f64 / days).into(),
        ]);
    }
    r.table(&arrivals);

    ExperimentResult { headline }
}
