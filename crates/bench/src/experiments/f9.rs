//! Experiment F9 — gang time-slicing.
//!
//! With long best-effort gangs monopolizing the machine, short guaranteed
//! work can wait hours. Time-slicing (Slurm's gang scheduling) rotates
//! expired best-effort tasks out when queued work could use the space.
//! This harness sweeps the quantum and reports short-job wait, rotation
//! count, and the goodput cost of the extra checkpoint round-trips. See
//! EXPERIMENTS.md § F9.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_metrics::{Summary, Table};

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 3.0);
    let headline = format!(
        "F9: time-slicing quantum sweep ({} submissions, load 3)",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut table = Table::new(
        "F9: gang time-slicing",
        &[
            "quantum",
            "rotations",
            "short-job p95 wait (h)",
            "long-job mean JCT (h)",
            "goodput %",
        ],
    );
    let quanta: Vec<(&str, Option<f64>)> = vec![
        ("disabled", None),
        ("30 min", Some(1800.0)),
        ("2 h", Some(7200.0)),
        ("8 h", Some(28_800.0)),
    ];
    let rows = par_map(quanta, |(label, quantum)| {
        let config = campus_config(|c| {
            c.scheduler.time_slice_secs = quantum;
        });
        let report = Platform::new(config).run_trace(&trace);
        let short_waits: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.service_secs < 1800.0)
            .map(|j| j.queue_delay_secs)
            .collect();
        let long_jct: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.service_secs > 6.0 * 3600.0)
            .map(|j| j.jct_secs)
            .collect();
        vec![
            label.into(),
            report.preemptions.into(),
            hours(Summary::from_samples(&short_waits).p95()).into(),
            hours(Summary::from_samples(&long_jct).mean()).into(),
            (report.goodput * 100.0).into(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    r.table(&table);
    r.line("(tighter quanta cut short-job waits at the price of more rotations —");
    r.line(" each one a checkpoint/restore round-trip charged to the rotated gang)");

    ExperimentResult { headline }
}
