//! Experiment F3 — fairness under contention (load-factor sweep).
//!
//! Sweeps the offered load and reports, per scheduling regime, the Jain
//! fairness index over per-group delivered GPU-hours (normalized by quota
//! share) and the worst group's p95 queueing delay. The figure's point:
//! FIFO starves small groups as load rises; fair-share and quota regimes
//! hold the fairness index flat. See EXPERIMENTS.md § F3.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, standard_trace};
use tacc_core::{Platform, SimulationReport};
use tacc_metrics::{jain_index, Table};
use tacc_sched::{PolicyKind, QuotaMode};
use tacc_workload::GroupRoster;

/// Jain index over per-group service normalized by quota share — 1.0 when
/// every group receives GPU-hours proportional to its quota.
fn normalized_fairness(report: &SimulationReport, roster: &GroupRoster) -> f64 {
    let normalized: Vec<f64> = report
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let quota = f64::from(roster.quota(tacc_workload::GroupId::from_index(gi))).max(1.0);
            g.gpu_hours / quota
        })
        .collect();
    jain_index(&normalized)
}

fn worst_p95_wait(report: &SimulationReport) -> f64 {
    report
        .groups
        .iter()
        .map(|g| g.p95_queue_delay_secs)
        .fold(0.0, f64::max)
}

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let roster = GroupRoster::campus_default(256);
    let headline = "F3: fairness vs load, 7-day traces, 256 GPUs".to_owned();
    r.line(&format!("{headline}\n"));

    let regimes: [(&str, PolicyKind, QuotaMode); 3] = [
        ("fifo", PolicyKind::Fifo, QuotaMode::Disabled),
        ("fair-share", PolicyKind::FairShare, QuotaMode::Disabled),
        ("quota+borrow", PolicyKind::Fifo, QuotaMode::Borrowing),
    ];

    let mut fair = Table::new(
        "F3a: quota-normalized Jain fairness vs load",
        &["load", "fifo", "fair-share", "quota+borrow"],
    );
    let mut wait = Table::new(
        "F3b: worst-group p95 wait (h) vs load",
        &["load", "fifo", "fair-share", "quota+borrow"],
    );

    // 5 loads x 3 regimes; the regimes of one load share its trace.
    let roster = &roster;
    let rows = par_map(vec![1.0, 2.0, 3.0, 4.0, 5.0], |load: f64| {
        let trace = standard_trace(7.0, load);
        let cells = par_map(regimes.to_vec(), |(_, policy, quota)| {
            let config = campus_config(|c| {
                c.scheduler.policy = policy;
                c.scheduler.quota = quota;
            });
            let report = Platform::new(config).run_trace(&trace);
            (
                normalized_fairness(&report, roster),
                hours(worst_p95_wait(&report)),
            )
        });
        let mut fair_row = vec![format!("{load:.1}x").into()];
        let mut wait_row = vec![format!("{load:.1}x").into()];
        for (fairness, worst_wait) in cells {
            fair_row.push(fairness.into());
            wait_row.push(worst_wait.into());
        }
        (fair_row, wait_row)
    });
    for (fair_row, wait_row) in rows {
        fair.row(fair_row);
        wait.row(wait_row);
    }
    r.table(&fair);
    r.table(&wait);

    ExperimentResult { headline }
}
