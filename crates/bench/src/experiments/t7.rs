//! Experiment T7 — ML Productivity Goodput decomposition.
//!
//! Replays the contended 7-day trace with fault injection on under each
//! queue-ordering policy and decomposes cluster capacity into
//! `goodput = availability × throughput efficiency × (1 − badput)`,
//! with badput itemized by cause from the span-derived taxonomy in
//! `tacc-obs` (queue wait, compile, checkpoint overhead, restart rework,
//! preemption, idle-reserved). See EXPERIMENTS.md § T7.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, standard_trace};
use tacc_core::Platform;
use tacc_metrics::{Cell, Table};
use tacc_sched::PolicyKind;

const SECS_PER_HOUR: f64 = 3600.0;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 4.0);
    let headline = format!(
        "T7: goodput decomposition of {} submissions over 7 days, faults on",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let runs = par_map(
        vec![
            PolicyKind::Fifo,
            PolicyKind::Sjf,
            PolicyKind::FairShare,
            PolicyKind::Drf,
            PolicyKind::MultiFactor,
        ],
        |policy| {
            let config = campus_config(|c| {
                c.scheduler.policy = policy;
                // Faults on so restart rework and checkpoint overhead show
                // up as itemized badput, not just as lost throughput.
                c.node_mtbf_secs = Some(10.0 * 86_400.0);
            });
            let report = Platform::new(config).run_trace(&trace);
            (policy, report.goodput_decomposition)
        },
    );

    let mut table = Table::new(
        "T7: ML Productivity Goodput by queue-ordering policy",
        &[
            "policy",
            "goodput",
            "avail",
            "thru eff",
            "badput frac",
            "badput GPU-h",
        ],
    );
    for (policy, g) in &runs {
        table.row(vec![
            policy.to_string().into(),
            Cell::Num(g.goodput, 4),
            Cell::Num(g.availability, 4),
            Cell::Num(g.throughput_efficiency, 4),
            Cell::Num(g.badput_fraction, 4),
            Cell::Num(g.badput.total_gpu_secs() / SECS_PER_HOUR, 1),
        ]);
    }
    r.table(&table);

    // Itemized badput for the canonical multi-factor run: where the
    // non-productive GPU-time actually goes.
    let (_, canonical) = runs.last().expect("five policies ran");
    let mut causes = Table::new(
        "T7: badput by cause (multi-factor policy)",
        &["cause", "GPU-hours", "% of capacity"],
    );
    for (cause, gpu_secs) in canonical.badput.items() {
        causes.row(vec![
            cause.to_string().into(),
            Cell::Num(gpu_secs / SECS_PER_HOUR, 1),
            Cell::Num(100.0 * gpu_secs / canonical.capacity_gpu_secs, 2),
        ]);
    }
    causes.row(vec![
        "total".into(),
        Cell::Num(canonical.badput.total_gpu_secs() / SECS_PER_HOUR, 1),
        Cell::Num(
            100.0 * canonical.badput.total_gpu_secs() / canonical.capacity_gpu_secs,
            2,
        ),
    ]);
    r.table(&causes);

    // The byte-stable machine-readable report (what CI archives).
    r.line(&format!(
        "goodput JSON (multi-factor): {}",
        canonical.to_json()
    ));

    ExperimentResult { headline }
}
