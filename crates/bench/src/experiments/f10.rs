//! Experiment F10 — capacity planning.
//!
//! The operator's question: how many GPUs does this campus workload need
//! before queueing becomes acceptable? Replays the same demand against
//! cluster sizes from 128 to 512 GPUs (quotas scaled proportionally) and
//! reports the wait/utilization curve. See EXPERIMENTS.md § F10.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{hours, standard_trace};
use tacc_cluster::{ClusterSpec, GpuModel};
use tacc_core::{Platform, PlatformConfig};
use tacc_metrics::Table;
use tacc_workload::GroupRoster;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 3.0);
    let headline = format!(
        "F10: capacity sweep for a fixed demand ({} submissions, 7 days)",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut table = Table::new(
        "F10: cluster size vs service quality",
        &[
            "GPUs",
            "racks x nodes",
            "util %",
            "mean JCT (h)",
            "p95 wait (h)",
            "p99 wait (h)",
        ],
    );
    let rows = par_map(vec![2u32, 3, 4, 6, 8], |racks| {
        let gpus = racks * 8 * 8;
        let config = PlatformConfig {
            cluster: ClusterSpec::uniform(racks, 8, GpuModel::A100, 8),
            roster: GroupRoster::campus_default(gpus),
            ..PlatformConfig::default()
        };
        let report = Platform::new(config).run_trace(&trace);
        vec![
            (gpus as usize).into(),
            format!("{racks} x 8").into(),
            (report.mean_utilization * 100.0).into(),
            hours(report.jct.mean()).into(),
            hours(report.queue_delay.p95()).into(),
            hours(report.queue_delay.p99()).into(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    r.table(&table);
    r.line("(the knee of the p95-wait curve is the provisioning answer: beyond it,");
    r.line(" extra GPUs buy idle capacity; before it, researchers queue for hours)");

    ExperimentResult { headline }
}
