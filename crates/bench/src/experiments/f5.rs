//! Experiment F5 — preemption cost and the checkpoint-interval ablation.
//!
//! Under quota-with-borrowing, best-effort jobs absorb reclaim preemptions;
//! what they lose depends on the checkpointing policy. This harness sweeps
//! the checkpoint interval (including disabled) on a reclaim-heavy workload
//! and reports goodput, wasted GPU-hours and the preempted jobs' completion
//! times. See EXPERIMENTS.md § F5.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, standard_trace};
use tacc_core::Platform;
use tacc_exec::CheckpointPolicy;
use tacc_metrics::{Summary, Table};
use tacc_sched::QuotaMode;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 5.0); // heavy contention => many reclaims
    let headline = format!(
        "F5: checkpoint ablation under reclaim preemption ({} submissions, load 5)",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut table = Table::new(
        "F5: checkpoint interval vs preemption cost",
        &[
            "policy",
            "preempts",
            "goodput %",
            "wasted GPU-h",
            "mean JCT preempted (h)",
            "overall mean JCT (h)",
        ],
    );

    let policies: Vec<(&str, CheckpointPolicy)> = vec![
        ("disabled", CheckpointPolicy::disabled()),
        ("every 60s", CheckpointPolicy::every(60.0, 15.0, 60.0)),
        ("every 10min", CheckpointPolicy::every(600.0, 15.0, 60.0)),
        ("every 1h", CheckpointPolicy::every(3600.0, 15.0, 60.0)),
    ];

    let rows = par_map(policies, |(label, checkpoint)| {
        let config = campus_config(|c| {
            c.scheduler.quota = QuotaMode::Borrowing;
            c.checkpoint = checkpoint;
        });
        let report = Platform::new(config).run_trace(&trace);
        let preempted_jct: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.preemptions > 0)
            .map(|j| j.jct_secs)
            .collect();
        vec![
            label.into(),
            report.preemptions.into(),
            (report.goodput * 100.0).into(),
            report.wasted_gpu_hours.into(),
            hours(Summary::from_samples(&preempted_jct).mean()).into(),
            hours(report.jct.mean()).into(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    r.table(&table);
    r.line("(tight intervals bound loss per preemption but tax every running second;");
    r.line(" no checkpointing makes each reclaim destroy the victim's progress)");

    ExperimentResult { headline }
}
