//! Experiment T3 — compiler delta cache.
//!
//! Drives the compiler layer directly with a realistic resubmission stream
//! and reports cold-vs-warm provisioning latency, chunk/byte hit rates and
//! bytes transferred, across cache capacities, plus the dataset-shard-size
//! ablation. See EXPERIMENTS.md § T3.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::standard_trace;
use tacc_compiler::{Compiler, CompilerConfig};
use tacc_metrics::{Summary, Table};

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 1.0);
    let schemas: Vec<_> = trace
        .records()
        .iter()
        .map(|rec| rec.schema.clone())
        .collect();
    let headline = format!(
        "T3: compiler cache over {} submissions (shared images/deps/datasets)",
        schemas.len()
    );
    r.line(&format!("{headline}\n"));

    // --- Capacity sweep ---------------------------------------------
    let mut table = Table::new(
        "T3a: cache capacity sweep",
        &[
            "capacity",
            "chunk hit %",
            "byte hit %",
            "GB transferred",
            "mean latency (s)",
            "p95 latency (s)",
            "evictions",
        ],
    );
    let capacities: Vec<(&str, u64)> = vec![
        ("10 GB", 10_000),
        ("50 GB", 50_000),
        ("200 GB", 200_000),
        ("1 TB", 1_000_000),
    ];
    let schemas = &schemas;
    let rows = par_map(capacities, |(label, capacity_mb)| {
        let mut compiler = Compiler::new(CompilerConfig {
            cache_capacity_mb: capacity_mb,
            ..CompilerConfig::default()
        });
        let mut latencies = Vec::with_capacity(schemas.len());
        let mut transferred_mb = 0.0;
        for schema in schemas {
            let out = compiler.compile(schema).expect("trace schemas valid");
            latencies.push(out.provisioning.latency_secs);
            transferred_mb += out.provisioning.transferred_mb;
        }
        let stats = compiler.cache().stats();
        let lat = Summary::from_samples(&latencies);
        vec![
            label.into(),
            (stats.hit_rate() * 100.0).into(),
            (stats.byte_hit_rate() * 100.0).into(),
            (transferred_mb / 1024.0).into(),
            lat.mean().into(),
            lat.p95().into(),
            stats.evictions.into(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    r.table(&table);

    // --- Cold vs warm -----------------------------------------------
    let mut cold_warm = Table::new(
        "T3b: cold vs warm provisioning latency (200 GB cache)",
        &["submission", "latency (s)", "MiB transferred"],
    );
    let mut compiler = Compiler::new(CompilerConfig::default());
    let sample = &schemas[0];
    for i in 0..3 {
        let out = compiler.compile(sample).expect("valid");
        cold_warm.row(vec![
            format!("#{}", i + 1).into(),
            out.provisioning.latency_secs.into(),
            out.provisioning.transferred_mb.into(),
        ]);
    }
    r.table(&cold_warm);

    // --- Fetch-bandwidth ablation -------------------------------------
    // How much the provisioning tier's bandwidth matters at each cache
    // size: with a warm 200 GB cache, latency is dominated by the fixed
    // setup cost; with a thrashing 50 GB cache, bandwidth is everything.
    let mut bw = Table::new(
        "T3c: fetch-bandwidth ablation (mean provisioning latency, s)",
        &["bandwidth MiB/s", "50 GB cache", "200 GB cache"],
    );
    let rows = par_map(vec![200.0f64, 1_000.0, 5_000.0], |bandwidth| {
        let means = par_map(vec![50_000u64, 200_000], |capacity| {
            let mut compiler = Compiler::new(CompilerConfig {
                fetch_bandwidth_mbps: bandwidth,
                cache_capacity_mb: capacity,
                ..CompilerConfig::default()
            });
            let mut latencies = Vec::with_capacity(schemas.len());
            for schema in schemas {
                latencies.push(
                    compiler
                        .compile(schema)
                        .expect("valid")
                        .provisioning
                        .latency_secs,
                );
            }
            Summary::from_samples(&latencies).mean()
        });
        let mut row = vec![format!("{bandwidth:.0}").into()];
        for mean in means {
            row.push(mean.into());
        }
        row
    });
    for row in rows {
        bw.row(row);
    }
    r.table(&bw);

    ExperimentResult { headline }
}
