//! Experiment T5 — elastic admission (Pollux-style adaptive allocation).
//!
//! The paper positions TACC against adaptive-allocation schedulers like
//! Pollux and lists "task scalability" among the dynamic scheduling
//! factors. This harness compares rigid gangs against elastic admission
//! (multi-worker best-effort gangs may start shrunk, by halving, when the
//! full gang does not fit) on a gang-heavy contended workload. See
//! EXPERIMENTS.md § T5.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, TRACE_SEED};
use tacc_core::Platform;
use tacc_metrics::{Summary, Table};
use tacc_workload::{GenParams, TraceGenerator};

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let headline = "T5: rigid vs elastic gang admission".to_owned();
    let mut table = Table::new(
        "T5: rigid vs elastic gang admission",
        &[
            "mode",
            "util %",
            "mean JCT (h)",
            "gang p95 wait (h)",
            "gang mean JCT (h)",
            "goodput %",
        ],
    );

    let modes: Vec<(&str, f64)> = vec![("rigid", 0.0), ("elastic", 1.0)];
    let rows = par_map(modes, |(label, elastic_fraction)| {
        let params = GenParams::default()
            .with_load_factor(2.0)
            .with_multi_node_fraction(0.3);
        let params = GenParams {
            elastic_fraction,
            best_effort_fraction: 0.6, // elasticity only applies to BE gangs
            ..params
        };
        let trace = TraceGenerator::new(params, TRACE_SEED).generate_days(7.0);
        let report = Platform::new(campus_config(|_| {})).run_trace(&trace);
        let gang_waits: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.gpus >= 16)
            .map(|j| j.queue_delay_secs)
            .collect();
        let gang_jct: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.gpus >= 16)
            .map(|j| j.jct_secs)
            .collect();
        vec![
            label.into(),
            (report.mean_utilization * 100.0).into(),
            hours(report.jct.mean()).into(),
            hours(Summary::from_samples(&gang_waits).p95()).into(),
            hours(Summary::from_samples(&gang_jct).mean()).into(),
            (report.goodput * 100.0).into(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    r.table(&table);
    r.line("(elastic gangs trade peak parallelism for immediate starts: lower waits,");
    r.line(" longer individual runs — the Pollux-flavoured adaptive-allocation tradeoff)");

    ExperimentResult { headline }
}
