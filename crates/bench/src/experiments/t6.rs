//! Experiment T6 — heterogeneous GPU pools.
//!
//! Campus clusters grow by accretion: datacenter parts next to consumer
//! cards contributed by individual labs. This harness replays the same
//! demand on (a) a uniform A100 cluster, (b) a mixed cluster with the same
//! *GPU count* but a consumer slice, and (c) a mixed cluster with the same
//! *aggregate compute*, and reports what the mix costs. Jobs that land on
//! the consumer pool run slower (relative-speed model) and lose NVLink.
//! See EXPERIMENTS.md § T6.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{hours, standard_trace};
use tacc_cluster::{ClusterSpec, GpuModel};
use tacc_core::{Platform, PlatformConfig};
use tacc_metrics::{Cell, Summary, Table};
use tacc_workload::GroupRoster;

fn replay(label: &str, spec: ClusterSpec) -> Vec<Cell> {
    let trace = standard_trace(7.0, 2.0);
    let gpus = spec.total_gpus();
    let config = PlatformConfig {
        roster: GroupRoster::campus_default(gpus),
        cluster: spec,
        ..PlatformConfig::default()
    };
    let report = Platform::new(config).run_trace(&trace);
    // Execution slowdown of training jobs — hardware speed shows up here.
    let exec_slowdown: Vec<f64> = report
        .jobs
        .iter()
        .map(|j| ((j.jct_secs - j.queue_delay_secs) / j.service_secs).max(1.0))
        .collect();
    vec![
        label.into(),
        (gpus as usize).into(),
        (report.mean_utilization * 100.0).into(),
        Summary::from_samples(&exec_slowdown).mean().into(),
        hours(report.jct.mean()).into(),
        hours(report.queue_delay.p95()).into(),
    ]
}

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let headline = "T6: heterogeneous pools under the same demand (7 days, load 2)".to_owned();
    r.line(&format!("{headline}\n"));
    let mut table = Table::new(
        "T6: uniform vs mixed GPU pools",
        &[
            "cluster",
            "GPUs",
            "util %",
            "mean exec slowdown",
            "mean JCT (h)",
            "p95 wait (h)",
        ],
    );

    let specs: Vec<(&str, ClusterSpec)> = vec![
        // (a) The canonical uniform cluster: 256 A100s.
        (
            "uniform A100 x256",
            ClusterSpec::uniform(4, 8, GpuModel::A100, 8),
        ),
        // (b) Same GPU count, a quarter of it consumer cards.
        (
            "mixed A100 x192 + 3090 x64",
            ClusterSpec::builder()
                .pool(GpuModel::A100, 3, 8, 8)
                .pool(GpuModel::Rtx3090, 1, 8, 8)
                .build(),
        ),
        // (c) Compute-equivalent mix: 3090s are ~4.4x slower than A100s, so
        // it takes far more of them to replace the missing rack.
        (
            "mixed A100 x192 + 3090 x256",
            ClusterSpec::builder()
                .pool(GpuModel::A100, 3, 8, 8)
                .pool(GpuModel::Rtx3090, 4, 8, 8)
                .build(),
        ),
    ];
    let rows = par_map(specs, |(label, spec)| replay(label, spec));
    for row in rows {
        table.row(row);
    }
    r.table(&table);
    r.line("(packing is model-blind, so jobs landing on the consumer pool stretch by");
    r.line(" the A100/3090 speed ratio; extra slow GPUs buy queueing relief, not speed)");

    ExperimentResult { headline }
}
