//! Experiment F8 — dataset staging from the shared filesystem.
//!
//! The execution layer stages each job's dataset out of the networked
//! filesystem onto its nodes before training starts; node-local NVMe
//! caches absorb repeat reads. This harness sweeps the node-cache size and
//! the backend bandwidth and reports staging latency and shared-store
//! traffic. See EXPERIMENTS.md § F8.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, standard_trace};
use tacc_core::Platform;
use tacc_metrics::Table;
use tacc_storage::StorageConfig;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = standard_trace(7.0, 2.0);
    let headline = format!(
        "F8: dataset staging over {} submissions (7 days, load 2)",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut table = Table::new(
        "F8a: node-cache capacity sweep",
        &[
            "node cache",
            "staged starts",
            "mean staging (s)",
            "backend TB moved",
            "mean JCT (h)",
        ],
    );
    // The canonical trace's dataset catalogue totals ~65 GB, so the sweep
    // spans caches that hold one dataset, a few, and all of them.
    let caches: Vec<(&str, u64)> = vec![
        ("disabled", 0),
        ("20 GB", 20_000),
        ("50 GB", 50_000),
        ("100 GB", 100_000),
    ];
    let rows = par_map(caches, |(label, cache_mb)| {
        let config = campus_config(|c| {
            c.storage = Some(StorageConfig {
                node_cache_mb: cache_mb,
                ..StorageConfig::default()
            });
        });
        let mut platform = Platform::new(config);
        let report = platform.run_trace(&trace);
        let backend_tb = platform
            .storage_stats()
            .map(|(mb, _)| mb as f64 / 1024.0 / 1024.0)
            .unwrap_or(0.0);
        vec![
            label.into(),
            report.stagings.into(),
            report.mean_staging_secs.into(),
            backend_tb.into(),
            (report.jct.mean() / 3600.0).into(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    r.table(&table);

    let mut bw = Table::new(
        "F8b: backend bandwidth sweep (500 GB node caches)",
        &["aggregate MiB/s", "mean staging (s)", "p-clients capped?"],
    );
    let rows = par_map(vec![5_000.0f64, 20_000.0, 80_000.0], |aggregate| {
        let config = campus_config(|c| {
            c.storage = Some(StorageConfig {
                aggregate_mbps: aggregate,
                ..StorageConfig::default()
            });
        });
        let report = Platform::new(config).run_trace(&trace);
        vec![
            format!("{aggregate:.0}").into(),
            report.mean_staging_secs.into(),
            if aggregate >= 20_000.0 {
                "client-capped"
            } else {
                "backend-capped"
            }
            .into(),
        ]
    });
    for row in rows {
        bw.row(row);
    }
    r.table(&bw);
    r.line("(bigger node caches turn repeat reads of hot datasets into local hits;");
    r.line(" an undersized backend makes staging fan-in the bottleneck instead)");

    ExperimentResult { headline }
}
