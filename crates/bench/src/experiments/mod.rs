//! The experiment bodies behind both the `exp_*` shims and the parallel
//! `experiments` runner.
//!
//! Each submodule exposes one `run(&mut dyn Reporter) -> ExperimentResult`
//! that regenerates one EXPERIMENTS.md section. Bodies are pure functions
//! of the canonical trace definitions in the crate root; independent sweep
//! cells inside a body fan out with [`crate::par::par_map`], which keeps
//! output order (and therefore bytes) identical to a serial run.

pub mod f1;
pub mod f10;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod f9;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t5;
pub mod t6;
pub mod t7;
