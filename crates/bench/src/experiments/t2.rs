//! Experiment T2 — placement strategy comparison.
//!
//! On a multi-node-heavy workload, compares packing, spreading and
//! topology-aware placement on: mean slowdown of distributed (≥16 GPU)
//! jobs (communication effect), their mean JCT, overall p95 wait, and
//! utilization. See EXPERIMENTS.md § T2.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, multinode_trace};
use tacc_core::Platform;
use tacc_metrics::{Cell, Summary, Table};
use tacc_sched::PlacementStrategy;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let trace = multinode_trace(7.0, 1.2, 0.25);
    let headline = format!(
        "T2: placement comparison ({} submissions, 25% multi-node, load 1.2)",
        trace.len()
    );
    r.line(&format!("{headline}\n"));

    let mut table = Table::new(
        "T2: placement strategies",
        &[
            "strategy",
            "multi-node exec slowdown",
            "multi-node JCT (h)",
            "p95 wait (h)",
            "util %",
        ],
    );
    let mut single = Table::new(
        "T2b: single-GPU exec slowdown (interference side of the tradeoff)",
        &["strategy", "1-GPU exec slowdown"],
    );

    // One deterministic replay per strategy feeds both panels.
    let rows = par_map(
        vec![
            PlacementStrategy::Pack,
            PlacementStrategy::Spread,
            PlacementStrategy::TopologyAware,
        ],
        |strategy| {
            let config = campus_config(|c| {
                c.scheduler.placement = strategy;
            });
            let report = Platform::new(config).run_trace(&trace);
            // Execution slowdown: run time over oracle service time, queueing
            // excluded — this isolates the communication cost of the placement.
            let multi_slowdown: Vec<f64> = report
                .jobs
                .iter()
                .filter(|j| j.gpus >= 16)
                .map(|j| ((j.jct_secs - j.queue_delay_secs) / j.service_secs).max(1.0))
                .collect();
            let multi_jct: Vec<f64> = report
                .jobs
                .iter()
                .filter(|j| j.gpus >= 16)
                .map(|j| j.jct_secs)
                .collect();
            // Single-GPU jobs have no collectives; they only feel co-location
            // interference, which packing maximizes and spreading avoids.
            let single_slowdown: Vec<f64> = report
                .jobs
                .iter()
                .filter(|j| j.gpus == 1)
                .map(|j| ((j.jct_secs - j.queue_delay_secs) / j.service_secs).max(1.0))
                .collect();
            let row = vec![
                strategy.to_string().into(),
                Summary::from_samples(&multi_slowdown).mean().into(),
                hours(Summary::from_samples(&multi_jct).mean()).into(),
                hours(report.queue_delay.p95()).into(),
                (report.mean_utilization * 100.0).into(),
            ];
            let single_row = vec![
                strategy.to_string().into(),
                Cell::Num(Summary::from_samples(&single_slowdown).mean(), 3),
            ];
            (row, single_row)
        },
    );
    for (row, single_row) in rows {
        table.row(row);
        single.row(single_row);
    }
    r.table(&table);
    r.table(&single);
    r.line("(exec slowdown = (JCT - wait) / oracle service; spread placements cross more");
    r.line(" racks, so gang collectives run at the oversubscribed inter-rack tier — but");
    r.line(" single-GPU jobs prefer spreading, which minimizes co-location interference)");

    ExperimentResult { headline }
}
