//! Experiment F6 — distributed-training scaling.
//!
//! The execution-layer figure: per-iteration time and scaling efficiency of
//! ring, tree and hierarchical all-reduce and the parameter server, from 1
//! to 64 GPUs, on the RDMA fabric and on a legacy TCP fabric. See
//! EXPERIMENTS.md § F6.

use crate::report::{ExperimentResult, Reporter};
use tacc_cluster::{Cluster, ClusterSpec, GpuModel, LinkSpeeds, NodeId};
use tacc_exec::comm;
use tacc_exec::{ExecConfig, ExecModel};
use tacc_metrics::Table;
use tacc_workload::{ModelProfile, RuntimePreference};

fn cluster(speeds: LinkSpeeds) -> Cluster {
    Cluster::new(
        ClusterSpec::builder()
            .pool(GpuModel::A100, 2, 4, 8)
            .speeds(speeds)
            .build(),
    )
}

fn nodes_for(gpus: u32) -> Vec<NodeId> {
    (0..gpus.div_ceil(8).max(1) as usize)
        .map(NodeId::from_index)
        .collect()
}

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let profile = ModelProfile::gpt2_like();
    let headline = format!(
        "F6: GPT-2-like model ({} MiB gradients, {:.2}s compute/iter on A100)",
        profile.param_mb, profile.compute_secs_per_iter
    );
    r.line(&format!("{headline}\n"));

    // --- Raw collective costs (pure comm model) ---------------------
    let mut raw = Table::new(
        "F6a: synchronization time per round (ms), 100 Gbps bottleneck",
        &[
            "n",
            "ring",
            "tree",
            "hierarchical(4x8)",
            "in-network",
            "PS (4 shards)",
        ],
    );
    for n in [2u32, 4, 8, 16, 32, 64] {
        let hier = if n >= 8 {
            comm::hierarchical_allreduce_secs(profile.param_mb, n / 8, 8, 600.0, 100.0) * 1000.0
        } else {
            comm::ring_allreduce_secs(profile.param_mb, n, 600.0) * 1000.0
        };
        raw.row(vec![
            (n as usize).into(),
            (comm::ring_allreduce_secs(profile.param_mb, n, 100.0) * 1000.0).into(),
            (comm::tree_allreduce_secs(profile.param_mb, n, 100.0) * 1000.0).into(),
            hier.into(),
            (comm::in_network_allreduce_secs(profile.param_mb, n, 100.0) * 1000.0).into(),
            (comm::parameter_server_secs(profile.param_mb, n, 4, 100.0) * 1000.0).into(),
        ]);
    }
    r.table(&raw);

    // --- End-to-end efficiency through the execution layer ----------
    let model = ExecModel::new(ExecConfig::default());
    let flat = ExecModel::new(ExecConfig {
        hierarchical_allreduce: false,
        ..ExecConfig::default()
    });
    let rdma = cluster(LinkSpeeds::campus_default());
    let tcp = cluster(LinkSpeeds::tcp_legacy());

    let mut eff = Table::new(
        "F6b: scaling efficiency (%)",
        &[
            "GPUs",
            "hier-AR/RDMA",
            "flat-AR/RDMA",
            "hier-AR/TCP",
            "in-network/RDMA",
            "PS/RDMA",
        ],
    );
    for gpus in [1u32, 2, 4, 8, 16, 32, 64] {
        let nodes = nodes_for(gpus);
        let run = |m: &ExecModel, c: &Cluster, rt| {
            m.plan_training(c, rt, &nodes, gpus, GpuModel::A100, &profile)
                .efficiency
                * 100.0
        };
        eff.row(vec![
            (gpus as usize).into(),
            run(&model, &rdma, RuntimePreference::AllReduce).into(),
            run(&flat, &rdma, RuntimePreference::AllReduce).into(),
            run(&model, &tcp, RuntimePreference::AllReduce).into(),
            run(&model, &rdma, RuntimePreference::InNetworkAggregation).into(),
            run(&model, &rdma, RuntimePreference::ParameterServer).into(),
        ]);
    }
    r.table(&eff);
    r.line("(ring stays flat with n; PS degrades linearly; TCP fabric collapses");
    r.line(" multi-node efficiency; in-network aggregation halves the ring's cost");
    r.line(" within a rack and falls back to all-reduce across racks — the case for");
    r.line(" RDMA and programmable switches in the execution layer)");

    ExperimentResult { headline }
}
