//! Experiment F4 — backfill effectiveness.
//!
//! Sweeps the multi-node job fraction (the knob that creates head-of-line
//! blocking) and compares no-backfill, EASY and conservative backfill on
//! utilization and p95 wait. See EXPERIMENTS.md § F4.

use crate::par::par_map;
use crate::report::{ExperimentResult, Reporter};
use crate::{campus_config, hours, multinode_trace};
use tacc_core::Platform;
use tacc_metrics::Table;
use tacc_sched::BackfillMode;

/// Runs the experiment against `r`.
pub fn run(r: &mut dyn Reporter) -> ExperimentResult {
    let headline = "F4: backfill vs multi-node job fraction, 7-day traces, load 1.5".to_owned();
    r.line(&format!("{headline}\n"));

    let mut util = Table::new(
        "F4a: cluster utilization (%) vs multi-node fraction",
        &["multi-node %", "none", "easy", "conservative"],
    );
    let mut wait = Table::new(
        "F4b: p95 wait (h) vs multi-node fraction",
        &["multi-node %", "none", "easy", "conservative"],
    );
    let mut backfills = Table::new(
        "F4c: backfilled starts",
        &["multi-node %", "none", "easy", "conservative"],
    );

    // 4 fractions x 3 backfill modes; the modes of one fraction share a
    // trace.
    let rows = par_map(vec![0.05, 0.10, 0.20, 0.40], |frac: f64| {
        let trace = multinode_trace(7.0, 1.5, frac);
        par_map(
            vec![
                BackfillMode::None,
                BackfillMode::Easy,
                BackfillMode::Conservative,
            ],
            |mode| {
                let config = campus_config(|c| {
                    c.scheduler.backfill = mode;
                });
                let report = Platform::new(config).run_trace(&trace);
                (
                    report.mean_utilization * 100.0,
                    hours(report.queue_delay.p95()),
                    report.backfill_starts,
                )
            },
        )
    });
    for (frac, cells) in [0.05, 0.10, 0.20, 0.40].into_iter().zip(rows) {
        let label = format!("{:.0}%", frac * 100.0);
        let mut u = vec![label.clone().into()];
        let mut w = vec![label.clone().into()];
        let mut b = vec![label.into()];
        for (utilization, p95_wait, backfilled) in cells {
            u.push(utilization.into());
            w.push(p95_wait.into());
            b.push(backfilled.into());
        }
        util.row(u);
        wait.row(w);
        backfills.row(b);
    }
    r.table(&util);
    r.table(&wait);
    r.table(&backfills);

    ExperimentResult { headline }
}
