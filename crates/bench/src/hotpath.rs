//! The scheduler hot-path perf harness behind the `perf` binary.
//!
//! Wall-clock benchmarks do not regress-gate well on shared CI runners, so
//! this harness leans on the scheduler's deterministic [`WorkCounters`]:
//! counts of algorithmic work (queue sorts performed and skipped, snapshot
//! elements copied, placement attempts, node scans, O(1) fast-path rejects)
//! that are byte-identical across runs of the same scenario. CI runs every
//! scenario twice and gates on exact counter equality; wall time is
//! recorded alongside as informational context only.
//!
//! Each scenario replays a canonical trace through a full [`Platform`]
//! configured to stress one hot-path regime:
//!
//! * `contended-borrowing` — heavy load under quota borrowing, the
//!   reclaim/preemption-dominated regime of experiment F5;
//! * `fair-share` — usage-keyed queue ordering, where sort-skipping depends
//!   on the usage epoch (experiment F3's fair regime);
//! * `conservative-backfill` — per-blocked-job reservations, the
//!   reservation-heavy regime of experiment F4;
//! * `multi-factor` — the always-re-sort policy, the worst case for the
//!   sort-skip optimization;
//! * `maintenance-window` — conservative backfill with planned capacity
//!   windows, stressing the temporal planner's window-aware probes.
//!
//! The temporal-planner counters (`slot_splits`, `slot_intersections`,
//! `slot_rebuilds`) count slot boundary creations, per-slot interval
//! operations, and full timeline rebuilds; `snapshot_elements` collapsed
//! to zero when the round walk stopped copying the queue and is kept for
//! history comparability.

use std::time::Instant;

use crate::json::Json;
use crate::{campus_config, standard_trace};
use tacc_core::{Platform, PlatformConfig};
use tacc_sched::{BackfillMode, CapacityWindow, PolicyKind, QuotaMode, WorkCounters};

/// One hot-path scenario: a named platform configuration replayed over a
/// canonical trace.
pub struct Scenario {
    /// Stable identifier (used in `BENCH_hotpath.json` and `--only`).
    pub id: &'static str,
    /// One-line description of the regime the scenario stresses.
    pub title: &'static str,
    /// Trace length in days.
    pub days: f64,
    /// Trace load factor.
    pub load: f64,
    /// Platform configuration for the run.
    pub configure: fn() -> PlatformConfig,
}

/// Every scenario, in report order.
pub static SCENARIOS: &[Scenario] = &[
    Scenario {
        id: "contended-borrowing",
        title: "reclaim-heavy borrowing under heavy load (F5 regime)",
        days: 3.0,
        load: 5.0,
        configure: || campus_config(|c| c.scheduler.quota = QuotaMode::Borrowing),
    },
    Scenario {
        id: "fair-share",
        title: "usage-keyed fair-share ordering (F3 fair regime)",
        days: 3.0,
        load: 3.0,
        configure: || campus_config(|c| c.scheduler.policy = PolicyKind::FairShare),
    },
    Scenario {
        id: "conservative-backfill",
        title: "reservation-per-blocked-job backfill (F4 regime)",
        days: 3.0,
        load: 3.0,
        configure: || campus_config(|c| c.scheduler.backfill = BackfillMode::Conservative),
    },
    Scenario {
        id: "multi-factor",
        title: "always-re-sort multi-factor policy (sort-skip worst case)",
        days: 3.0,
        load: 2.0,
        configure: || campus_config(|c| c.scheduler.policy = PolicyKind::MultiFactor),
    },
    Scenario {
        id: "maintenance-window",
        title: "conservative backfill under planned capacity windows",
        days: 3.0,
        load: 3.0,
        configure: || {
            campus_config(|c| {
                c.scheduler.backfill = BackfillMode::Conservative;
                // Two planned drains of the 256-GPU campus cluster: a
                // quarter held back during day-1 daytime, half during
                // day-2 daytime — reservation shadows must route around
                // both edges.
                c.scheduler.capacity_windows = vec![
                    CapacityWindow {
                        gpus: 64,
                        from_secs: 43_200.0,
                        until_secs: 86_400.0,
                    },
                    CapacityWindow {
                        gpus: 128,
                        from_secs: 129_600.0,
                        until_secs: 172_800.0,
                    },
                ];
            })
        },
    },
];

/// Long-running scenarios gated to the nightly tier (`perf --nightly`):
/// too slow for every push, still fully deterministic and `--expect`
/// gated against the committed report.
pub static NIGHTLY_SCENARIOS: &[Scenario] = &[Scenario {
    id: "million-jobs",
    title: "million-job replay: arena + free-index + wheel at 10^6 scale",
    // Sized for throughput, not saturation: the default mix offers about
    // 0.46× the 256-GPU capacity per load unit, so load 2 runs the
    // cluster at ~92% utilization with a queue that still drains —
    // ~2.4 simulated years of sustained service reach seven figures of
    // jobs without the unbounded backlog (and quadratic round walks) an
    // over-capacity load factor would produce.
    days: 890.0,
    load: 2.0,
    configure: || {
        campus_config(|c| {
            // Per-job log rendering is pure memory ballast at this scale
            // (a million rings); disabling it only flips lines to drop
            // counts — no scheduling decision reads logs.
            c.log_lines_per_job = 0;
            // ~1M jobs emit a handful of events each; raise the runaway
            // valve well clear of the legitimate total.
            c.max_events = 100_000_000;
        })
    },
}];

/// Looks up a scenario by id across the fast and nightly tiers.
pub fn find_scenario(id: &str) -> Option<&'static Scenario> {
    SCENARIOS
        .iter()
        .chain(NIGHTLY_SCENARIOS.iter())
        .find(|s| s.id == id)
}

/// The result of one scenario run: deterministic counters plus
/// informational wall time.
pub struct ScenarioOutcome {
    /// The scenario's [`Scenario::id`].
    pub id: &'static str,
    /// Jobs in the replayed trace (deterministic for a given scenario).
    pub jobs: u64,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// The deterministic work counters after the replay.
    pub counters: WorkCounters,
    /// Wall-clock of the replay, seconds (informational; never gated).
    pub wall_secs: f64,
}

/// Runs one scenario to completion.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let trace = standard_trace(scenario.days, scenario.load);
    let mut platform = Platform::new((scenario.configure)());
    // tacc-lint: allow(wall-clock, reason = "informational wall time reported next to the deterministic counters; never compared or gated")
    let start = Instant::now();
    let _ = platform.run_trace(&trace);
    let wall_secs = start.elapsed().as_secs_f64();
    ScenarioOutcome {
        id: scenario.id,
        jobs: trace.len() as u64,
        rounds: platform.scheduler().rounds(),
        counters: platform.work_counters(),
        wall_secs,
    }
}

/// Runs every scenario in order.
pub fn run_all() -> Vec<ScenarioOutcome> {
    SCENARIOS.iter().map(run_scenario).collect()
}

/// The deterministic portion of an outcome as JSON — exactly the bytes the
/// CI gate compares across runs (no wall time).
pub fn counters_json(outcome: &ScenarioOutcome) -> Json {
    let c = &outcome.counters;
    Json::obj()
        .set("id", outcome.id.into())
        .set("jobs", c_num(outcome.jobs))
        .set("rounds", c_num(outcome.rounds))
        .set("empty_rounds", c_num(c.empty_rounds))
        .set("queue_sorts", c_num(c.queue_sorts))
        .set("queue_sorts_skipped", c_num(c.queue_sorts_skipped))
        .set("snapshot_elements", c_num(c.snapshot_elements))
        .set("skip_records", c_num(c.skip_records))
        .set("skip_suppressions", c_num(c.skip_suppressions))
        .set("placement_attempts", c_num(c.plan.attempts))
        .set("node_scans", c_num(c.plan.nodes_scanned))
        .set("fastpath_rejects", c_num(c.plan.fastpath_rejects))
        .set("slot_splits", c_num(c.slots.splits))
        .set("slot_intersections", c_num(c.slots.intersections))
        .set("slot_rebuilds", c_num(c.slots.rebuilds))
        .set("arena_alloc", c_num(c.arena_alloc))
        .set("arena_reuse", c_num(c.arena_reuse))
        .set("free_index_updates", c_num(c.free_index_updates))
        .set("free_index_probes", c_num(c.plan.free_index_probes))
        .set("wheel_insert", c_num(c.wheel_insert))
        .set("wheel_cascade", c_num(c.wheel_cascade))
}

/// Full report document for `BENCH_hotpath.json`: per-scenario counters
/// and wall times, plus (when provided) the measured full-suite serial
/// wall times before and after the hot-path work.
pub fn report_json(outcomes: &[ScenarioOutcome], suite: Option<(f64, f64)>) -> Json {
    let scenarios = outcomes
        .iter()
        .map(|o| counters_json(o).set("wall_secs_informational", Json::num(o.wall_secs)))
        .collect();
    let mut doc = Json::obj()
        .set("note", Json::Str(
            "counters are deterministic and CI-gated on exact equality; wall times are informational".to_owned(),
        ))
        .set("scenarios", Json::Arr(scenarios));
    if let Some((before, after)) = suite {
        doc = doc.set(
            "full_suite_serial",
            Json::obj()
                .set("baseline_secs", Json::num(before))
                .set("optimized_secs", Json::num(after))
                .set(
                    "speedup",
                    if after > 0.0 {
                        Json::num(before / after)
                    } else {
                        Json::Null
                    },
                ),
        );
    }
    doc
}

/// Compares fresh scenario counters against a committed report document
/// (the `--expect` gate). Returns the first mismatch as
/// `(scenario_id, detail)` — key order and extra committed fields (wall
/// times) are ignored; every fresh counter must be present and exactly
/// equal.
pub fn compare_with_report(
    expected: &Json,
    outcomes: &[ScenarioOutcome],
) -> Result<(), (String, String)> {
    let committed = expected
        .get("scenarios")
        .and_then(Json::items)
        .ok_or_else(|| {
            (
                String::new(),
                "expected report has no `scenarios` array".to_owned(),
            )
        })?;
    for outcome in outcomes {
        let entry = committed
            .iter()
            .find(|s| s.get("id").and_then(Json::as_str) == Some(outcome.id))
            .ok_or_else(|| {
                (
                    outcome.id.to_owned(),
                    format!(
                        "scenario `{}` missing from the committed report",
                        outcome.id
                    ),
                )
            })?;
        let fresh = counters_json(outcome);
        let Json::Obj(pairs) = &fresh else {
            // counters_json always builds an object.
            continue;
        };
        for (key, value) in pairs {
            let got = value.to_compact();
            let want = entry.get(key).map(Json::to_compact);
            if want.as_deref() != Some(got.as_str()) {
                return Err((
                    outcome.id.to_owned(),
                    format!(
                        "scenario `{}`: counter `{key}` is {got}, committed report says {}",
                        outcome.id,
                        want.unwrap_or_else(|| "<absent>".to_owned()),
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Exact u64 → Json (counter values are far below 2^53, where `f64` is
/// exact; debug-asserted to keep that assumption honest).
fn c_num(v: u64) -> Json {
    debug_assert!(v < (1 << 53), "counter exceeds exact f64 range");
    Json::num(v as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_ids_are_unique() {
        let ids: std::collections::BTreeSet<_> = SCENARIOS.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), SCENARIOS.len());
    }

    #[test]
    fn counters_repeat_exactly_on_a_short_replay() {
        // A miniature version of the CI gate: the same scenario twice must
        // produce byte-identical counter JSON. Uses a shortened trace so
        // the debug-build test stays fast.
        let short = Scenario {
            id: "mini",
            title: "shortened contended-borrowing",
            days: 0.25,
            load: 3.0,
            configure: || campus_config(|c| c.scheduler.quota = QuotaMode::Borrowing),
        };
        let a = run_scenario(&short);
        let b = run_scenario(&short);
        assert_eq!(
            counters_json(&a).to_compact(),
            counters_json(&b).to_compact()
        );
        assert!(
            a.counters.plan.attempts > 0,
            "scenario exercised the planner"
        );
    }

    #[test]
    fn expect_gate_red_flips_on_a_single_counter_drift() {
        // The annotation path proven end to end on a fixture: a committed
        // report with one counter off by one must fail the `--expect`
        // comparison with a message naming the counter, and the formatted
        // workflow command must carry it.
        let outcome = ScenarioOutcome {
            id: "fixture",
            jobs: 0,
            rounds: 7,
            counters: WorkCounters::default(),
            wall_secs: 0.1,
        };
        let mut committed = crate::json::Json::parse(&report_json(&[outcome], None).to_compact())
            .expect("report parses");
        // Green on the unmodified report…
        let fresh = ScenarioOutcome {
            id: "fixture",
            jobs: 0,
            rounds: 7,
            counters: WorkCounters::default(),
            wall_secs: 0.9,
        };
        assert_eq!(compare_with_report(&committed, &[fresh]), Ok(()));
        // …red once one counter drifts by one.
        let crate::json::Json::Obj(doc) = &mut committed else {
            panic!("report is an object");
        };
        let Some(crate::json::Json::Arr(scenarios)) = doc
            .iter_mut()
            .find(|(k, _)| k == "scenarios")
            .map(|(_, v)| v)
        else {
            panic!("report has scenarios");
        };
        let crate::json::Json::Obj(entry) = &mut scenarios[0] else {
            panic!("scenario is an object");
        };
        for (k, v) in entry.iter_mut() {
            if k == "slot_splits" {
                *v = crate::json::Json::num(1.0);
            }
        }
        let fresh = ScenarioOutcome {
            id: "fixture",
            jobs: 0,
            rounds: 7,
            counters: WorkCounters::default(),
            wall_secs: 0.9,
        };
        let (id, detail) = compare_with_report(&committed, &[fresh]).unwrap_err();
        assert_eq!(id, "fixture");
        assert!(detail.contains("`slot_splits`"), "detail: {detail}");
        let annotation =
            crate::gha::format_error("BENCH_hotpath.json", "planner counter drift", &detail);
        assert!(annotation.starts_with("::error file=BENCH_hotpath.json,"));
        assert!(annotation.contains("slot_splits"));
    }

    #[test]
    fn report_embeds_suite_timings() {
        let outcome = ScenarioOutcome {
            id: "x",
            jobs: 0,
            rounds: 1,
            counters: WorkCounters::default(),
            wall_secs: 0.5,
        };
        let doc = report_json(&[outcome], Some((70.0, 35.0)));
        let text = doc.to_compact();
        assert!(text.contains("\"baseline_secs\":70"));
        assert!(text.contains("\"speedup\":2"));
    }
}
