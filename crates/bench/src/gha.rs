//! GitHub Actions workflow-command formatting for the CI gates.
//!
//! When `perf --check`/`--expect` or `experiments --check` fail on a
//! runner, an [`::error` annotation][cmd] pins the failure to the golden
//! or report file in the run summary, so a red run is triaged without
//! downloading artifacts. Formatting is pure (unit-testable — the
//! red-flip fixtures assert on the exact bytes); only the caller decides
//! to print, and only [`enabled`] says whether a runner is listening.
//!
//! [cmd]: https://docs.github.com/en/actions/reference/workflow-commands-for-github-actions

/// Whether a GitHub Actions runner is consuming stdout (the runner sets
/// `GITHUB_ACTIONS=true`). Local runs skip the annotation noise.
pub fn enabled() -> bool {
    std::env::var_os("GITHUB_ACTIONS").is_some_and(|v| v == "true")
}

/// Formats a file-scoped `::error` workflow command. Newlines survive as
/// `%0A` escapes, so a multi-line diagnostic renders as one annotation.
pub fn format_error(file: &str, title: &str, message: &str) -> String {
    format!(
        "::error file={},title={}::{}",
        escape_property(file),
        escape_property(title),
        escape_data(message)
    )
}

/// Escapes annotation message data (`%`, CR, LF).
fn escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes annotation property values (data escapes plus `:` and `,`,
/// which would terminate the property list).
fn escape_property(s: &str) -> String {
    escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_annotation_shape() {
        assert_eq!(
            format_error(
                "crates/bench/golden/f4.json",
                "golden mismatch",
                "line 3 differs"
            ),
            "::error file=crates/bench/golden/f4.json,title=golden mismatch::line 3 differs"
        );
    }

    #[test]
    fn escapes_keep_one_line() {
        let line = format_error("a,b:c.json", "t%1", "x\ny\r\nz");
        assert_eq!(
            line,
            "::error file=a%2Cb%3Ac.json,title=t%251::x%0Ay%0D%0Az"
        );
        assert_eq!(line.lines().count(), 1);
    }
}
