//! The tcloud client: profiles, submission, monitoring, kill.

use std::collections::BTreeMap;
use std::fmt;

use tacc_core::{JobStatus, Platform, PlatformConfig};
use tacc_sim::SimDuration;
use tacc_workload::{JobId, JobState, TaskSchema};

/// Errors the client surfaces to users.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TcloudError {
    /// No profile with that name is configured.
    UnknownProfile(String),
    /// The job id does not exist on the active cluster.
    UnknownJob(u64),
    /// The submitted task description was rejected.
    InvalidTask(String),
    /// A CLI command could not be parsed; the message explains usage.
    Usage(String),
    /// Talking to a remote daemon failed (socket transport).
    Transport(crate::transport::TransportError),
}

impl fmt::Display for TcloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcloudError::UnknownProfile(p) => write!(f, "unknown cluster profile '{p}'"),
            TcloudError::UnknownJob(id) => write!(f, "no such job {id}"),
            TcloudError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
            TcloudError::Usage(msg) => write!(f, "usage: {msg}"),
            TcloudError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TcloudError {}

impl From<crate::transport::TransportError> for TcloudError {
    fn from(e: crate::transport::TransportError) -> Self {
        TcloudError::Transport(e)
    }
}

/// The `tcloud` client: a registry of cluster profiles and a connection to
/// the active one.
///
/// In the real system each profile is an SSH endpoint; here each profile
/// owns a simulated [`Platform`]. Everything the client does goes through
/// the same platform API a remote endpoint would expose.
#[derive(Debug)]
pub struct TcloudClient {
    profiles: BTreeMap<String, Platform>,
    active: String,
}

impl TcloudClient {
    /// Creates a client with a single named profile.
    pub fn with_profile(name: &str, config: PlatformConfig) -> Self {
        let mut profiles = BTreeMap::new();
        profiles.insert(name.to_owned(), Platform::new(config));
        TcloudClient {
            profiles,
            active: name.to_owned(),
        }
    }

    /// Registers another cluster profile.
    pub fn add_profile(&mut self, name: &str, config: PlatformConfig) {
        self.profiles.insert(name.to_owned(), Platform::new(config));
    }

    /// Switches the active cluster — the paper's "changing a line of
    /// configuration".
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownProfile`] if no such profile exists.
    pub fn use_profile(&mut self, name: &str) -> Result<(), TcloudError> {
        if !self.profiles.contains_key(name) {
            return Err(TcloudError::UnknownProfile(name.to_owned()));
        }
        self.active = name.to_owned();
        Ok(())
    }

    /// The active profile's name.
    pub fn active_profile(&self) -> &str {
        &self.active
    }

    /// Names of all configured profiles.
    pub fn profile_names(&self) -> Vec<&str> {
        self.profiles.keys().map(String::as_str).collect()
    }

    /// The active platform (read-only; used by experiment harnesses).
    pub fn platform(&self) -> &Platform {
        self.profiles
            .get(&self.active)
            .expect("active profile exists")
    }

    /// Mutable access to the active platform.
    pub fn platform_mut(&mut self) -> &mut Platform {
        self.profiles
            .get_mut(&self.active)
            .expect("active profile exists")
    }

    /// Submits a task to the active cluster.
    ///
    /// # Errors
    ///
    /// [`TcloudError::InvalidTask`] if the schema fails validation.
    pub fn submit(&mut self, schema: TaskSchema, service_secs: f64) -> Result<JobId, TcloudError> {
        schema.validate().map_err(TcloudError::InvalidTask)?;
        Ok(self.platform_mut().submit_schema(schema, service_secs))
    }

    /// Submits a task described as JSON (the on-disk task schema format).
    ///
    /// # Errors
    ///
    /// [`TcloudError::InvalidTask`] for malformed JSON or invalid schemas.
    pub fn submit_json(&mut self, json: &str, service_secs: f64) -> Result<JobId, TcloudError> {
        let schema: TaskSchema =
            serde_json::from_str(json).map_err(|e| TcloudError::InvalidTask(e.to_string()))?;
        self.submit(schema, service_secs)
    }

    /// Status of one job.
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownJob`] if the job does not exist here.
    pub fn status(&self, job: JobId) -> Result<JobStatus, TcloudError> {
        self.platform()
            .job_status(job)
            .ok_or(TcloudError::UnknownJob(job.value()))
    }

    /// Status of every job on the active cluster (submission order).
    pub fn list_jobs(&self) -> Vec<JobStatus> {
        let p = self.platform();
        p.job_ids()
            .into_iter()
            .filter_map(|id| p.job_status(id))
            .collect()
    }

    /// Aggregated, time-ordered log of a job across all of its nodes.
    ///
    /// Each line is `[t=..s] message`, matching what the real tool prints
    /// after collecting per-node files.
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownJob`] if the job does not exist here.
    pub fn logs(&self, job: JobId) -> Result<Vec<String>, TcloudError> {
        let p = self.platform();
        if p.job(job).is_none() {
            return Err(TcloudError::UnknownJob(job.value()));
        }
        Ok(p.job_log(job)
            .iter()
            .map(|(t, msg)| format!("[t={t:.1}s] {msg}"))
            .collect())
    }

    /// Time-ordered platform events for a job, rendered one per line —
    /// what `tcloud events` prints. Unlike [`Self::logs`] this is the
    /// typed event stream: each line carries the bus sequence number and
    /// machine-readable kind tag.
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownJob`] if the job does not exist here.
    pub fn events(&self, job: JobId) -> Result<Vec<String>, TcloudError> {
        let p = self.platform();
        if p.job(job).is_none() {
            return Err(TcloudError::UnknownJob(job.value()));
        }
        let mut lines = Vec::new();
        // The bus is a bounded ring: if it ever overflowed, the stream
        // below is incomplete and the user must know before reading it.
        let dropped = p.events().dropped();
        if dropped > 0 {
            lines.push(format!(
                "warning: {dropped} event(s) dropped from the bounded ring; \
                 this stream is incomplete (see tacc_obs_dropped_events_total)"
            ));
        }
        lines.extend(p.job_events(job).iter().map(|r| {
            format!(
                "[t={:.1}s] #{} {}: {}",
                r.at_secs,
                r.seq,
                r.event.kind(),
                r.event
            )
        }));
        Ok(lines)
    }

    /// A job's span timeline, one rendered line per span in time order —
    /// what `tcloud timeline <job>` prints. Spans are folded by
    /// `tacc-obs` from the lifecycle engine's transition stream, so the
    /// output is a pure function of sim time.
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownJob`] if the job does not exist here.
    pub fn timeline(&self, job: JobId) -> Result<Vec<String>, TcloudError> {
        let p = self.platform();
        if p.job(job).is_none() {
            return Err(TcloudError::UnknownJob(job.value()));
        }
        Ok(p.timeline(job)
            .iter()
            .map(|s| {
                format!(
                    "[{:>10.1}s → {:>10.1}s] {:<13} {:>10.1}s  cause={:<9} {}",
                    s.start_secs,
                    s.end_secs,
                    s.phase.to_string(),
                    s.duration_secs(),
                    s.cause.to_string(),
                    s.attribution()
                )
            })
            .collect())
    }

    /// The cluster-wide ML Productivity Goodput decomposition, rendered
    /// as a small report — what `tcloud goodput` prints.
    pub fn goodput_lines(&self) -> Vec<String> {
        let r = self.platform().goodput();
        let mut lines = vec![
            format!(
                "goodput over {:.1}s on {} GPUs ({:.1} GPU-seconds of capacity)",
                r.horizon_secs, r.total_gpus, r.capacity_gpu_secs
            ),
            format!(
                "  goodput      = {:.4}  (availability {:.4} x efficiency {:.4} x (1 - badput {:.4}))",
                r.goodput, r.availability, r.throughput_efficiency, r.badput_fraction
            ),
            format!(
                "  allocated    = {:.1} GPU-s, running = {:.1} GPU-s, productive = {:.1} GPU-s",
                r.allocated_gpu_secs, r.running_gpu_secs, r.productive_gpu_secs
            ),
            format!("  badput total = {:.1} GPU-s, by cause:", r.badput.total_gpu_secs()),
        ];
        for (cause, gpu_secs) in r.badput.items() {
            lines.push(format!(
                "    {:<20} {:>12.1} GPU-s",
                cause.to_string(),
                gpu_secs
            ));
        }
        lines
    }

    /// Explains a job's current situation — for a waiting job, the
    /// scheduler's most recent skip reason (what `tcloud why` prints).
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownJob`] if the job does not exist here.
    pub fn why(&self, job: JobId) -> Result<String, TcloudError> {
        self.platform()
            .why(job)
            .ok_or(TcloudError::UnknownJob(job.value()))
    }

    /// Prometheus text exposition of every operational metric on the
    /// active cluster (what `tcloud metrics` prints).
    pub fn metrics_text(&self) -> String {
        self.platform().metrics_text()
    }

    /// Kills a job on every node it occupies.
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownJob`] if the job does not exist or is already
    /// terminal.
    pub fn kill(&mut self, job: JobId) -> Result<(), TcloudError> {
        if self.platform_mut().cancel_job(job) {
            Ok(())
        } else {
            Err(TcloudError::UnknownJob(job.value()))
        }
    }

    /// Lets the active cluster advance `secs` of simulated time (the
    /// client-side analogue of "come back later and check").
    pub fn advance(&mut self, secs: f64) {
        let until = self.platform().now() + SimDuration::from_secs(secs);
        self.platform_mut().run_until(until);
    }

    /// Blocks until `job` reaches a terminal state (or the cluster goes
    /// idle, whichever is first).
    ///
    /// # Errors
    ///
    /// [`TcloudError::UnknownJob`] if the job does not exist here.
    pub fn wait(&mut self, job: JobId) -> Result<JobState, TcloudError> {
        if self.platform().job(job).is_none() {
            return Err(TcloudError::UnknownJob(job.value()));
        }
        loop {
            let state = self.platform().job(job).expect("checked above").state();
            if state.is_terminal() {
                return Ok(state);
            }
            if self.platform_mut().step().is_none() {
                return Ok(self.platform().job(job).expect("checked above").state());
            }
        }
    }

    /// One-line description of the active cluster.
    pub fn cluster_info(&self) -> String {
        let p = self.platform();
        format!(
            "profile '{}': {} nodes / {} GPUs, {} free, {} queued, {} running, {}",
            self.active,
            p.cluster().node_count(),
            p.cluster().total_gpus(),
            p.cluster().free_gpus(),
            p.scheduler().queue_len(),
            p.scheduler().running_len(),
            p.now(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::{ClusterSpec, GpuModel};
    use tacc_workload::{GroupId, GroupRoster};

    fn config() -> PlatformConfig {
        PlatformConfig {
            cluster: ClusterSpec::uniform(1, 2, GpuModel::A100, 8),
            roster: GroupRoster::campus_default(16),
            ..PlatformConfig::default()
        }
    }

    fn schema() -> TaskSchema {
        TaskSchema::builder("t", GroupId::from_index(0))
            .est_duration_secs(300.0)
            .build()
            .expect("valid")
    }

    #[test]
    fn submit_wait_logs_round_trip() {
        let mut c = TcloudClient::with_profile("campus", config());
        let job = c.submit(schema(), 300.0).expect("valid");
        let state = c.wait(job).expect("exists");
        assert_eq!(state, JobState::Completed);
        let logs = c.logs(job).expect("exists");
        assert!(logs.first().expect("nonempty").contains("submitted"));
        assert!(logs.last().expect("nonempty").contains("completed"));
    }

    #[test]
    fn submit_json_validates() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: cannot build the JSON
        }
        let mut c = TcloudClient::with_profile("campus", config());
        let json = serde_json::to_string(&schema()).expect("serializes");
        assert!(c.submit_json(&json, 300.0).is_ok());
        assert!(matches!(
            c.submit_json("{bad", 300.0),
            Err(TcloudError::InvalidTask(_))
        ));
    }

    #[test]
    fn kill_running_job() {
        let mut c = TcloudClient::with_profile("campus", config());
        let job = c.submit(schema(), 1e6).expect("valid");
        c.advance(3600.0);
        assert_eq!(c.status(job).expect("exists").state, JobState::Running);
        c.kill(job).expect("running job killable");
        assert_eq!(c.status(job).expect("exists").state, JobState::Cancelled);
        // Killing again errors.
        assert!(c.kill(job).is_err());
    }

    #[test]
    fn multi_cluster_profiles() {
        let mut c = TcloudClient::with_profile("campus", config());
        c.add_profile("lab", config());
        let j1 = c.submit(schema(), 300.0).expect("valid");
        c.use_profile("lab").expect("exists");
        // The lab cluster has no jobs; the campus job is invisible here.
        assert!(c.status(j1).is_err());
        assert_eq!(c.list_jobs().len(), 0);
        c.use_profile("campus").expect("exists");
        assert_eq!(c.list_jobs().len(), 1);
        assert!(matches!(
            c.use_profile("nope"),
            Err(TcloudError::UnknownProfile(_))
        ));
        assert_eq!(c.profile_names(), vec!["campus", "lab"]);
    }

    #[test]
    fn cluster_info_summarizes() {
        let c = TcloudClient::with_profile("campus", config());
        let info = c.cluster_info();
        assert!(info.contains("2 nodes / 16 GPUs"));
        assert!(info.contains("campus"));
    }

    #[test]
    fn unknown_job_errors() {
        let c = TcloudClient::with_profile("campus", config());
        assert!(c.status(JobId::from_value(7)).is_err());
        assert!(c.logs(JobId::from_value(7)).is_err());
        assert!(c.timeline(JobId::from_value(7)).is_err());
    }

    #[test]
    fn timeline_renders_spans_in_order() {
        let mut c = TcloudClient::with_profile("campus", config());
        let job = c.submit(schema(), 300.0).expect("valid");
        c.wait(job).expect("exists");
        let lines = c.timeline(job).expect("exists");
        assert!(lines.len() >= 3, "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("Queued")));
        assert!(lines
            .iter()
            .any(|l| l.contains("Running") && l.contains("useful execution")));
    }

    #[test]
    fn goodput_lines_summarize_decomposition() {
        let mut c = TcloudClient::with_profile("campus", config());
        let job = c.submit(schema(), 300.0).expect("valid");
        c.wait(job).expect("exists");
        let lines = c.goodput_lines();
        assert!(lines[0].contains("16 GPUs"), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("availability")));
        // Every itemized badput cause is listed below the summary.
        assert!(lines.iter().any(|l| l.contains("queue_wait")));
        assert!(lines.iter().any(|l| l.contains("idle_reserved")));
        assert_eq!(lines.len(), 4 + 6);
    }

    #[test]
    fn events_warn_when_the_ring_dropped() {
        // A 2-slot bus ring cannot hold one full lifecycle; the stream
        // must open with an explicit incompleteness warning.
        let mut c = TcloudClient::with_profile(
            "tiny",
            PlatformConfig {
                event_buffer_capacity: 2,
                ..config()
            },
        );
        let job = c.submit(schema(), 300.0).expect("valid");
        c.wait(job).expect("exists");
        let lines = c.events(job).expect("exists");
        let first = lines.first().expect("nonempty");
        assert!(first.contains("warning:"), "{lines:?}");
        assert!(first.contains("dropped"));

        // A roomy ring stays warning-free.
        let mut calm = TcloudClient::with_profile("campus", config());
        let job = calm.submit(schema(), 300.0).expect("valid");
        calm.wait(job).expect("exists");
        let lines = calm.events(job).expect("exists");
        assert!(!lines.iter().any(|l| l.contains("warning:")), "{lines:?}");
    }
}
