//! `tcloud` — the remote CLI, speaking to a live `taccd` daemon.
//!
//! ```text
//! tcloud --socket PATH submit <schema-json> --service <secs>
//! tcloud --socket PATH cancel <job-id>
//! tcloud --socket PATH status <job-id>
//! tcloud --socket PATH ps
//! tcloud --socket PATH events <job-id>
//! tcloud --socket PATH reserve <gpus> <start-secs> <duration-secs>
//! tcloud --socket PATH advance <secs>
//! tcloud --socket PATH fault <node> | drain <node> | undrain <node>
//! tcloud --socket PATH info | metrics | transitions | journal
//! ```
//!
//! Where the library's [`tacc_tcloud::TcloudClient`] drives an
//! in-process platform, this binary drives the service daemon through
//! [`tacc_tcloud::DaemonClient`]: every mutation is journalled and
//! fsynced by `taccd` before the acknowledgement that this tool prints.
//! Exit code 0 on success, 1 on a daemon/transport error, 2 on usage.

#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use tacc_core::wire::{obj, Json};
use tacc_core::Command;
use tacc_tcloud::{DaemonClient, RetryPolicy, TransportError};

fn usage() -> ExitCode {
    println!(
        "usage: tcloud --socket PATH <verb> [...]\n\
         verbs:\n\
         \x20 submit <schema-json> --service <secs>\n\
         \x20 cancel <job-id>\n\
         \x20 status <job-id>\n\
         \x20 ps\n\
         \x20 events <job-id>\n\
         \x20 reserve <gpus> <start-secs> <duration-secs>\n\
         \x20 advance <secs>\n\
         \x20 fault <node> | drain <node> | undrain <node>\n\
         \x20 info | metrics | transitions | journal"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (socket, rest) = match argv.as_slice() {
        ["--socket", path, rest @ ..] if !rest.is_empty() => (PathBuf::from(path), rest),
        _ => return usage(),
    };

    let mut client = match DaemonClient::connect(&socket, RetryPolicy::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tcloud: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match rest {
        ["submit", json, "--service", secs] => submit(&mut client, json, secs),
        ["cancel", job] => with_job(job, |job| {
            mutate_and_print(
                &mut client,
                &Command::Cancel {
                    job: tacc_workload::JobId::from_value(job),
                },
            )
        }),
        ["status", job] => with_job(job, |job| {
            let status = client.query("status", Some(job))?;
            print_status(&status);
            Ok(())
        }),
        ["ps"] => client
            .query("list", None)
            .map(|list| print_ps(&list))
            .map_err(Transport),
        ["events", job] => with_job(job, |job| {
            let events = client.query("events", Some(job))?;
            for rec in events.as_arr().unwrap_or(&[]) {
                let at = rec.get("at_secs").and_then(Json::as_f64).unwrap_or(0.0);
                let seq = rec.get("seq").and_then(Json::as_u64).unwrap_or(0);
                let ev = rec.get("event").and_then(Json::as_str).unwrap_or("?");
                println!("[t={at:.1}s] #{seq} {ev}");
            }
            Ok(())
        }),
        ["reserve", gpus, start, duration] => reserve(&mut client, gpus, start, duration),
        ["advance", secs] => match secs.parse::<f64>() {
            Ok(secs) => mutate_and_print(&mut client, &Command::Advance { secs }),
            Err(_) => return usage(),
        },
        ["fault", node] => with_node(node, |node| {
            mutate_and_print(&mut client, &Command::FaultNode { node })
        }),
        ["drain", node] => with_node(node, |node| {
            mutate_and_print(&mut client, &Command::Drain { node })
        }),
        ["undrain", node] => with_node(node, |node| {
            mutate_and_print(&mut client, &Command::Undrain { node })
        }),
        ["info"] => client
            .query("info", None)
            .map(|v| println!("{v}"))
            .map_err(Transport),
        ["metrics"] => print_text_query(&mut client, "metrics"),
        ["transitions"] => print_text_query(&mut client, "transitions"),
        ["journal"] => client
            .query("journal", None)
            .map(|v| println!("{v}"))
            .map_err(Transport),
        _ => return usage(),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(Usage) => usage(),
        Err(Transport(e)) => {
            eprintln!("tcloud: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Verb-level failure: either bad arguments or a transport error.
enum VerbError {
    Usage,
    Transport(TransportError),
}
use VerbError::{Transport, Usage};

impl From<TransportError> for VerbError {
    fn from(e: TransportError) -> Self {
        Transport(e)
    }
}

fn with_job(arg: &str, f: impl FnOnce(u64) -> Result<(), VerbError>) -> Result<(), VerbError> {
    match arg.parse::<u64>() {
        Ok(job) => f(job),
        Err(_) => Err(Usage),
    }
}

fn with_node(arg: &str, f: impl FnOnce(u32) -> Result<(), VerbError>) -> Result<(), VerbError> {
    match arg.trim_start_matches("node").parse::<u32>() {
        Ok(node) => f(node),
        Err(_) => Err(Usage),
    }
}

fn mutate_and_print(client: &mut DaemonClient, command: &Command) -> Result<(), VerbError> {
    let outcome = client.mutate(command)?;
    println!("{outcome}");
    Ok(())
}

fn submit(client: &mut DaemonClient, json: &str, secs: &str) -> Result<(), VerbError> {
    let service_secs = secs.parse::<f64>().map_err(|_| Usage)?;
    let schema = tacc_core::wire::parse(json)
        .map_err(|e| Transport(TransportError::MalformedFrame(format!("schema json: {e}"))))?;
    // Assemble the wire-shaped command, then round-trip it through the
    // typed parser so malformed schemas fail here, not at the daemon.
    let command_json = obj(vec![
        ("kind", Json::Str("submit".to_owned())),
        ("service_secs", Json::Num(service_secs)),
        ("schema", schema),
    ]);
    let command = Command::from_json(&command_json)
        .map_err(|e| Transport(TransportError::MalformedFrame(format!("schema json: {e}"))))?;
    mutate_and_print(client, &command)
}

fn reserve(
    client: &mut DaemonClient,
    gpus: &str,
    start: &str,
    duration: &str,
) -> Result<(), VerbError> {
    let gpus = gpus.parse::<u32>().map_err(|_| Usage)?;
    let start = start.parse::<f64>().map_err(|_| Usage)?;
    let duration = duration.parse::<f64>().map_err(|_| Usage)?;
    mutate_and_print(
        client,
        &Command::Reserve {
            gpus,
            from_secs: start,
            until_secs: start + duration,
        },
    )
}

fn print_text_query(client: &mut DaemonClient, kind: &str) -> Result<(), VerbError> {
    let v = client.query(kind, None)?;
    match v.as_str() {
        Some(text) => print!("{text}"),
        None => println!("{v}"),
    }
    Ok(())
}

fn print_status(status: &Json) {
    let job = status.get("job").and_then(Json::as_u64).unwrap_or(0);
    let state = status.get("state").and_then(Json::as_str).unwrap_or("?");
    let name = status.get("name").and_then(Json::as_str).unwrap_or("?");
    let nodes: Vec<String> = status
        .get("nodes")
        .and_then(Json::as_arr)
        .map(|ns| {
            ns.iter()
                .filter_map(Json::as_u64)
                .map(|n| format!("node{n}"))
                .collect()
        })
        .unwrap_or_default();
    println!(
        "job {job}: {state} '{name}' on [{}] (submitted t={:.1}s, {:.1}s remaining, {} preemption(s))",
        nodes.join(","),
        status.get("submit_secs").and_then(Json::as_f64).unwrap_or(0.0),
        status.get("remaining_secs").and_then(Json::as_f64).unwrap_or(0.0),
        status.get("preemptions").and_then(Json::as_u64).unwrap_or(0),
    );
}

fn print_ps(list: &Json) {
    println!("{:<8} {:<12} {:<20} NODES", "JOB", "STATE", "NAME");
    for status in list.as_arr().unwrap_or(&[]) {
        let nodes: Vec<String> = status
            .get("nodes")
            .and_then(Json::as_arr)
            .map(|ns| {
                ns.iter()
                    .filter_map(Json::as_u64)
                    .map(|n| n.to_string())
                    .collect()
            })
            .unwrap_or_default();
        println!(
            "{:<8} {:<12} {:<20} {}",
            status.get("job").and_then(Json::as_u64).unwrap_or(0),
            status.get("state").and_then(Json::as_str).unwrap_or("?"),
            status.get("name").and_then(Json::as_str).unwrap_or("?"),
            nodes.join(","),
        );
    }
}
