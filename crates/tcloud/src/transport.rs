//! The socket transport: `tcloud` talking to a live `taccd` daemon.
//!
//! The local [`crate::TcloudClient`] owns an in-process platform; this
//! module is the remote counterpart — a [`DaemonClient`] speaking the
//! daemon's framed JSON protocol over a Unix socket. The frame format
//! and the JSON value model both come from [`tacc_core::wire`], so the
//! client has no dependency on the daemon crate itself (the layer DAG
//! keeps `tcloud` and `taccd` siblings; the shared protocol lives one
//! layer down, in core).
//!
//! Every failure mode is a typed [`TransportError`] — this module has a
//! **zero panic budget** in `lint-baseline.json`: a daemon that
//! disappears, speaks a different protocol version, or corrupts a frame
//! must surface as an error value, never a panic.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tacc_core::wire::{self, obj, Json};
use tacc_core::Command;

/// Why a daemon conversation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The daemon socket refused every connection attempt (or the socket
    /// file does not exist). Carries the path and how many attempts the
    /// retry policy made.
    ConnectionRefused {
        /// The socket path that was tried.
        path: String,
        /// Total connection attempts made before giving up.
        attempts: u32,
    },
    /// The daemon speaks a different protocol version than this client.
    VersionMismatch {
        /// The version this client speaks.
        client: u64,
        /// The version the daemon reported (0 when unparseable).
        server: u64,
    },
    /// A response frame failed its checksum, length cap, or JSON parse.
    /// The connection cannot be resynchronized after this.
    MalformedFrame(String),
    /// The daemon answered with a typed error (`{"err":{...}}`).
    Daemon {
        /// Machine-readable error kind (e.g. `unknown-job`).
        kind: String,
        /// Human-readable explanation.
        message: String,
    },
    /// An I/O error mid-conversation (daemon died, socket closed).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::ConnectionRefused { path, attempts } => write!(
                f,
                "connection to {path} refused after {attempts} attempt(s) — is taccd running?"
            ),
            TransportError::VersionMismatch { client, server } => write!(
                f,
                "protocol version mismatch: client speaks v{client}, daemon speaks v{server}"
            ),
            TransportError::MalformedFrame(why) => write!(f, "malformed frame: {why}"),
            TransportError::Daemon { kind, message } => {
                write!(f, "daemon error [{kind}]: {message}")
            }
            TransportError::Io(why) => write!(f, "transport i/o error: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Connection retry policy: fixed-delay attempts. A daemon that was just
/// started (or restarted by CI mid-test) needs a moment to bind its
/// socket; a bounded retry absorbs that without hiding a daemon that is
/// genuinely down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connection attempts (>= 1).
    pub attempts: u32,
    /// Sleep between attempts, in milliseconds.
    pub delay_ms: u64,
}

impl Default for RetryPolicy {
    /// 10 attempts, 50 ms apart: half a second of patience.
    fn default() -> Self {
        RetryPolicy {
            attempts: 10,
            delay_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no waiting — for probes that must fail fast.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            delay_ms: 0,
        }
    }
}

/// A connected client of a live `taccd` daemon.
///
/// One request/response conversation at a time over one Unix socket.
/// Constructed by [`DaemonClient::connect`], which performs the hello
/// handshake and verifies the protocol version before returning.
#[derive(Debug)]
pub struct DaemonClient {
    stream: UnixStream,
    socket: PathBuf,
}

impl DaemonClient {
    /// Connects to the daemon at `socket`, retrying per `policy`, then
    /// performs the hello handshake.
    ///
    /// # Errors
    ///
    /// [`TransportError::ConnectionRefused`] when every attempt fails;
    /// [`TransportError::VersionMismatch`] when the daemon speaks a
    /// different protocol version; other variants for frame or I/O
    /// failures during the handshake.
    pub fn connect(socket: &Path, policy: RetryPolicy) -> Result<DaemonClient, TransportError> {
        let attempts = policy.attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 && policy.delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(policy.delay_ms));
            }
            match UnixStream::connect(socket) {
                Ok(stream) => {
                    let mut client = DaemonClient {
                        stream,
                        socket: socket.to_path_buf(),
                    };
                    client.hello()?;
                    return Ok(client);
                }
                Err(e) => {
                    // NotFound: daemon hasn't bound its socket yet —
                    // retryable exactly like a refused connection.
                    let retryable =
                        matches!(e.kind(), ErrorKind::ConnectionRefused | ErrorKind::NotFound);
                    if !retryable {
                        return Err(TransportError::Io(e.to_string()));
                    }
                }
            }
        }
        Err(TransportError::ConnectionRefused {
            path: socket.display().to_string(),
            attempts,
        })
    }

    /// The socket path this client is connected to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// The hello handshake: verifies the daemon speaks our protocol.
    fn hello(&mut self) -> Result<(), TransportError> {
        let req = obj(vec![
            ("v", Json::Num(wire::PROTOCOL_VERSION as f64)),
            ("hello", Json::Bool(true)),
        ]);
        let ok = self.round_trip(&req)?;
        let server = ok.get("protocol").and_then(Json::as_u64).unwrap_or(0);
        if server != wire::PROTOCOL_VERSION {
            return Err(TransportError::VersionMismatch {
                client: wire::PROTOCOL_VERSION,
                server,
            });
        }
        Ok(())
    }

    /// Sends a command to the daemon and returns the applied outcome
    /// (the `{"ok":{...}}` payload: seq, at_secs, outcome fields). The
    /// daemon journals and fsyncs the command before this returns Ok.
    ///
    /// # Errors
    ///
    /// [`TransportError::Daemon`] when the daemon rejects the command;
    /// transport variants when the conversation itself breaks.
    pub fn mutate(&mut self, command: &Command) -> Result<Json, TransportError> {
        let req = obj(vec![
            ("v", Json::Num(wire::PROTOCOL_VERSION as f64)),
            ("mutate", command.to_json()),
        ]);
        self.round_trip(&req)
    }

    /// Runs a read-only query against the daemon's live platform state.
    /// `kind` is one of `status`, `list`, `events`, `info`, `metrics`,
    /// `transitions`, `journal`; `job` accompanies the per-job kinds.
    ///
    /// # Errors
    ///
    /// [`TransportError::Daemon`] for unknown jobs or query kinds;
    /// transport variants when the conversation itself breaks.
    pub fn query(&mut self, kind: &str, job: Option<u64>) -> Result<Json, TransportError> {
        let mut q = vec![("kind", Json::Str(kind.to_owned()))];
        if let Some(job) = job {
            q.push(("job", Json::Num(job as f64)));
        }
        let req = obj(vec![
            ("v", Json::Num(wire::PROTOCOL_VERSION as f64)),
            ("query", obj(q)),
        ]);
        self.round_trip(&req)
    }

    /// One framed request/response exchange.
    fn round_trip(&mut self, request: &Json) -> Result<Json, TransportError> {
        let payload = request.to_string();
        self.stream
            .write_all(&wire::encode_frame(payload.as_bytes()))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let response = self.read_frame()?;
        let text = std::str::from_utf8(&response)
            .map_err(|_| TransportError::MalformedFrame("response is not UTF-8".to_owned()))?;
        let value = wire::parse(text).map_err(|e| TransportError::MalformedFrame(e.to_string()))?;
        if let Some(err) = value.get("err") {
            let kind = err
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_owned();
            let message = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned();
            // The daemon's own version check surfaces as a typed variant,
            // not a generic daemon error.
            if kind == "version-mismatch" {
                return Err(TransportError::VersionMismatch {
                    client: wire::PROTOCOL_VERSION,
                    server: 0,
                });
            }
            return Err(TransportError::Daemon { kind, message });
        }
        match value.get("ok") {
            Some(ok) => Ok(ok.clone()),
            None => Err(TransportError::MalformedFrame(
                "response has neither 'ok' nor 'err'".to_owned(),
            )),
        }
    }

    /// Reads one response frame, verifying length cap and checksum.
    fn read_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut header = [0u8; 8];
        self.stream.read_exact(&mut header).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                TransportError::Io("daemon closed the connection".to_owned())
            } else {
                TransportError::Io(e.to_string())
            }
        })?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len > wire::MAX_FRAME_LEN {
            return Err(TransportError::MalformedFrame(format!(
                "frame length {len} exceeds cap {}",
                wire::MAX_FRAME_LEN
            )));
        }
        let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let mut payload = vec![0u8; len];
        self.stream
            .read_exact(&mut payload)
            .map_err(|e| TransportError::Io(format!("short frame payload: {e}")))?;
        let actual = wire::crc32(&payload);
        if actual != expected {
            return Err(TransportError::MalformedFrame(format!(
                "checksum mismatch: header {expected:#010x}, payload {actual:#010x}"
            )));
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_to_missing_socket_is_refused_not_a_panic() {
        let err = DaemonClient::connect(
            Path::new("/tmp/definitely-no-such-taccd.sock"),
            RetryPolicy {
                attempts: 2,
                delay_ms: 1,
            },
        )
        .expect_err("no daemon there");
        match err {
            TransportError::ConnectionRefused { attempts, .. } => assert_eq!(attempts, 2),
            other => panic!("expected ConnectionRefused, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_defaults_are_bounded() {
        let p = RetryPolicy::default();
        assert!(p.attempts >= 1);
        assert!(p.attempts * (p.delay_ms as u32) <= 5_000, "bounded backoff");
        assert_eq!(RetryPolicy::none().attempts, 1);
    }

    #[test]
    fn errors_render_helpfully() {
        let e = TransportError::ConnectionRefused {
            path: "/tmp/x.sock".to_owned(),
            attempts: 3,
        };
        assert!(e.to_string().contains("is taccd running?"));
        let e = TransportError::VersionMismatch {
            client: 1,
            server: 2,
        };
        assert!(e.to_string().contains("v1"));
        assert!(e.to_string().contains("v2"));
        let e = TransportError::Daemon {
            kind: "unknown-job".to_owned(),
            message: "no such job 7".to_owned(),
        };
        assert!(e.to_string().contains("[unknown-job]"));
    }
}
