//! # tacc-tcloud
//!
//! The client layer of the reproduction: `tcloud`, the local CLI tool TACC
//! users drive the cluster with (paper §4).
//!
//! The paper highlights three properties, all modelled here:
//!
//! * **Serverless experience** — users submit tasks from anywhere and never
//!   maintain experiment environments: [`TcloudClient::submit`] takes a
//!   self-contained [`TaskSchema`] and returns a job handle immediately.
//! * **Distributed monitoring** — `tcloud` "can aggregate program status
//!   and output log files from all running nodes": [`TcloudClient::logs`]
//!   merges the per-node event streams of a job into one ordered view, and
//!   [`TcloudClient::kill`] stops a job across every node it runs on.
//! * **Cross-platform portability / multi-cluster** — "a user can submit
//!   their tasks to different cluster instances of TACC by simply changing
//!   a line of configuration": clients hold a registry of named cluster
//!   profiles and switch with [`TcloudClient::use_profile`].
//!
//! A small CLI-style command surface ([`TcloudClient::run_command`]) parses
//! `submit` / `ps` / `logs` / `events` / `why` / `metrics` / `get` / `kill`
//! / `wait` / `info` / `quota` / `top` / `drain` / `undrain` / `use`
//! commands, so examples read like real terminal sessions — including the
//! paper's "retrieve files ... simultaneously on multiple nodes" (`get`),
//! the operator's maintenance workflow (`drain`), and the observability
//! surface: `events` prints a job's typed event stream, `why` explains why
//! a job is waiting (quota exhausted, no feasible placement, blocked
//! backfill window), and `metrics` dumps the Prometheus text exposition of
//! every operational metric.
//!
//! ## Example
//!
//! ```
//! use tacc_core::PlatformConfig;
//! use tacc_tcloud::TcloudClient;
//! use tacc_workload::{GroupId, TaskSchema};
//!
//! let mut client = TcloudClient::with_profile("campus", PlatformConfig::default());
//! let schema = TaskSchema::builder("demo", GroupId::from_index(0))
//!     .build().expect("valid");
//! let job = client.submit(schema, 600.0).expect("submits");
//! client.wait(job).expect("job exists");
//! let logs = client.logs(job).expect("job exists");
//! assert!(logs.iter().any(|l| l.contains("completed")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cli;
mod client;
pub mod transport;

pub use cli::CommandOutput;
pub use client::{TcloudClient, TcloudError};
pub use transport::{DaemonClient, RetryPolicy, TransportError};

// Re-exported so downstream code can name the schema type without another
// direct dependency.
pub use tacc_workload::TaskSchema;
