//! The CLI command surface of `tcloud`.

use tacc_workload::JobId;

use crate::client::{TcloudClient, TcloudError};

/// The rendered result of one CLI command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutput {
    /// Human-readable output lines (what the terminal would print).
    pub lines: Vec<String>,
}

impl CommandOutput {
    fn one(line: String) -> Self {
        CommandOutput { lines: vec![line] }
    }

    /// All lines joined with newlines.
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }
}

impl TcloudClient {
    /// Parses and executes one CLI command.
    ///
    /// Supported commands (mirroring the real tool's verbs):
    ///
    /// ```text
    /// tcloud submit <schema-json> [--service <secs>]
    /// tcloud ps
    /// tcloud logs <job-id>
    /// tcloud events <job-id>
    /// tcloud timeline <job-id>
    /// tcloud goodput
    /// tcloud why <job-id>
    /// tcloud metrics
    /// tcloud kill <job-id>
    /// tcloud wait <job-id>
    /// tcloud info
    /// tcloud quota
    /// tcloud top
    /// tcloud get <job-id>
    /// tcloud reserve <gpus> <start-secs> <duration-secs>
    /// tcloud drain <node-index>
    /// tcloud undrain <node-index>
    /// tcloud use <profile>
    /// ```
    ///
    /// # Errors
    ///
    /// [`TcloudError::Usage`] for unknown verbs or malformed arguments,
    /// plus whatever the underlying operation returns.
    pub fn run_command(&mut self, argv: &[&str]) -> Result<CommandOutput, TcloudError> {
        match argv {
            ["submit", rest @ ..] => self.cmd_submit(rest),
            ["ps"] => Ok(self.cmd_ps()),
            ["logs", id] => {
                let job = parse_job(id)?;
                Ok(CommandOutput {
                    lines: self.logs(job)?,
                })
            }
            ["events", id] => {
                let job = parse_job(id)?;
                Ok(CommandOutput {
                    lines: self.events(job)?,
                })
            }
            ["timeline", id] => {
                let job = parse_job(id)?;
                Ok(CommandOutput {
                    lines: self.timeline(job)?,
                })
            }
            ["goodput"] => Ok(CommandOutput {
                lines: self.goodput_lines(),
            }),
            ["why", id] => {
                let job = parse_job(id)?;
                let reason = self.why(job)?;
                Ok(CommandOutput::one(format!("job {}: {reason}", job.value())))
            }
            ["metrics"] => Ok(CommandOutput {
                lines: self.metrics_text().lines().map(str::to_owned).collect(),
            }),
            ["kill", id] => {
                let job = parse_job(id)?;
                self.kill(job)?;
                Ok(CommandOutput::one(format!("killed job {}", job.value())))
            }
            ["wait", id] => {
                let job = parse_job(id)?;
                let state = self.wait(job)?;
                Ok(CommandOutput::one(format!(
                    "job {} finished: {state}",
                    job.value()
                )))
            }
            ["info"] => Ok(CommandOutput::one(self.cluster_info())),
            ["quota"] => Ok(self.cmd_quota()),
            ["top"] => Ok(self.cmd_top()),
            ["get", id] => {
                let job = parse_job(id)?;
                Ok(self.cmd_get(job)?)
            }
            ["reserve", gpus, start, duration] => self.cmd_reserve(gpus, start, duration),
            ["drain", node] => {
                let node = parse_node(node)?;
                if self.platform_mut().drain_node(node) {
                    Ok(CommandOutput::one(format!("{node} drained for maintenance")))
                } else {
                    Err(TcloudError::Usage(format!("no such node: {node}")))
                }
            }
            ["undrain", node] => {
                let node = parse_node(node)?;
                if self.platform_mut().undrain_node(node) {
                    Ok(CommandOutput::one(format!("{node} back in service")))
                } else {
                    Err(TcloudError::Usage(format!("no such node: {node}")))
                }
            }
            ["use", profile] => {
                self.use_profile(profile)?;
                Ok(CommandOutput::one(format!("switched to profile '{profile}'")))
            }
            _ => Err(TcloudError::Usage(
                "tcloud submit|ps|logs|events|timeline|goodput|why|metrics|kill|wait|info|quota|top|get|reserve|drain|undrain|use"
                    .to_owned(),
            )),
        }
    }

    fn cmd_submit(&mut self, rest: &[&str]) -> Result<CommandOutput, TcloudError> {
        let (json, service) = match rest {
            [json] => (*json, None),
            [json, "--service", secs] => (*json, Some(*secs)),
            _ => {
                return Err(TcloudError::Usage(
                    "tcloud submit <schema-json> [--service <secs>]".to_owned(),
                ))
            }
        };
        let service_secs = match service {
            Some(s) => s
                .parse::<f64>()
                .map_err(|_| TcloudError::Usage("--service expects seconds".to_owned()))?,
            None => {
                // Without an oracle the platform uses the user's estimate.
                let schema: tacc_workload::TaskSchema = serde_json::from_str(json)
                    .map_err(|e| TcloudError::InvalidTask(e.to_string()))?;
                schema.est_duration_secs
            }
        };
        let job = self.submit_json(json, service_secs)?;
        Ok(CommandOutput::one(format!("submitted job {}", job.value())))
    }

    /// `tcloud reserve`: carve a maintenance/teaching capacity window out
    /// of the cluster (paper §5: reserved slots for course deadlines).
    /// Routed through [`tacc_core::Command::Reserve`] so the same verb
    /// works locally and against a live daemon.
    fn cmd_reserve(
        &mut self,
        gpus: &str,
        start: &str,
        duration: &str,
    ) -> Result<CommandOutput, TcloudError> {
        let usage =
            || TcloudError::Usage("tcloud reserve <gpus> <start-secs> <duration-secs>".to_owned());
        let gpus: u32 = gpus.parse().map_err(|_| usage())?;
        let start: f64 = start.parse().map_err(|_| usage())?;
        let duration: f64 = duration.parse().map_err(|_| usage())?;
        let command = tacc_core::Command::Reserve {
            gpus,
            from_secs: start,
            until_secs: start + duration,
        };
        match self.platform_mut().apply_command(&command) {
            Ok(_) => Ok(CommandOutput::one(format!(
                "reserved {gpus} GPUs from {start}s to {}s",
                start + duration
            ))),
            Err(e) => Err(TcloudError::Usage(e.to_string())),
        }
    }

    fn cmd_ps(&self) -> CommandOutput {
        let mut lines = vec![format!(
            "{:<8} {:<12} {:<20} {:<8} {}",
            "JOB", "STATE", "NAME", "PREEMPT", "NODES"
        )];
        for status in self.list_jobs() {
            let nodes = status
                .nodes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            lines.push(format!(
                "{:<8} {:<12} {:<20} {:<8} {}",
                status.id.value(),
                status.state.to_string(),
                truncate(&status.name, 20),
                status.preemptions,
                nodes
            ));
        }
        CommandOutput { lines }
    }
}

impl TcloudClient {
    /// `tcloud get`: retrieve a job's output files from every node it ran
    /// on (the paper: "tcloud can also retrieve files ... simultaneously
    /// on multiple nodes").
    fn cmd_get(&self, job: tacc_workload::JobId) -> Result<CommandOutput, TcloudError> {
        if self.platform().job(job).is_none() {
            return Err(TcloudError::UnknownJob(job.value()));
        }
        let artifacts = self.platform().job_artifacts(job);
        if artifacts.is_empty() {
            return Ok(CommandOutput::one(format!(
                "job {} has not run yet; nothing to fetch",
                job.value()
            )));
        }
        let mut lines: Vec<String> = artifacts
            .iter()
            .map(|(node, file, mb)| format!("fetched {file} from {node} ({mb} MiB)"))
            .collect();
        let total: u32 = artifacts.iter().map(|&(_, _, mb)| mb).sum();
        lines.push(format!(
            "retrieved {} file(s), {} MiB total",
            artifacts.len(),
            total
        ));
        Ok(CommandOutput { lines })
    }

    /// `tcloud quota`: per-group quota and current usage.
    fn cmd_quota(&self) -> CommandOutput {
        let table = self.platform().scheduler().quota_table();
        let mut lines = vec![format!(
            "{:<8} {:>6} {:>11} {:>9}",
            "GROUP", "QUOTA", "GUARANTEED", "BORROWED"
        )];
        for gi in 0..table.group_count() {
            let g = tacc_workload::GroupId::from_index(gi);
            lines.push(format!(
                "{:<8} {:>6} {:>11} {:>9}",
                g.to_string(),
                table.quota(g),
                table.guaranteed_used(g),
                table.borrowed(g)
            ));
        }
        CommandOutput { lines }
    }

    /// `tcloud top`: per-node occupancy snapshot.
    fn cmd_top(&self) -> CommandOutput {
        let p = self.platform();
        let mut lines = vec![format!(
            "{:<8} {:<7} {:<9} {:>10} {:>7}",
            "NODE", "RACK", "GPU", "USED/TOTAL", "LEASES"
        )];
        for node in p.cluster().nodes() {
            lines.push(format!(
                "{:<8} {:<7} {:<9} {:>7}/{:<3} {:>6}",
                node.id().to_string(),
                node.rack().to_string(),
                node.gpu_model().to_string(),
                node.used().gpus,
                node.capacity().gpus,
                node.lease_count()
            ));
        }
        lines.push(format!(
            "total: {}/{} GPUs busy, {} running, {} queued",
            p.cluster().total_gpus() - p.cluster().free_gpus(),
            p.cluster().total_gpus(),
            p.scheduler().running_len(),
            p.scheduler().queue_len()
        ));
        CommandOutput { lines }
    }
}

fn parse_node(s: &str) -> Result<tacc_cluster::NodeId, TcloudError> {
    s.trim_start_matches("node")
        .parse::<usize>()
        .map(tacc_cluster::NodeId::from_index)
        .map_err(|_| TcloudError::Usage("expected a node index (e.g. 3 or node3)".to_owned()))
}

fn parse_job(s: &str) -> Result<JobId, TcloudError> {
    s.parse::<u64>()
        .map(JobId::from_value)
        .map_err(|_| TcloudError::Usage("expected a numeric job id".to_owned()))
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::{ClusterSpec, GpuModel};
    use tacc_core::PlatformConfig;
    use tacc_workload::{GroupId, GroupRoster, TaskSchema};

    fn client() -> TcloudClient {
        TcloudClient::with_profile(
            "campus",
            PlatformConfig {
                cluster: ClusterSpec::uniform(1, 2, GpuModel::A100, 8),
                roster: GroupRoster::campus_default(16),
                ..PlatformConfig::default()
            },
        )
    }

    fn schema_json() -> String {
        let schema = TaskSchema::builder("cli-job", GroupId::from_index(0))
            .est_duration_secs(120.0)
            .build()
            .expect("valid");
        serde_json::to_string(&schema).expect("serializes")
    }

    #[test]
    fn submit_ps_wait_logs_kill_flow() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: cannot build the JSON
        }
        let mut c = client();
        let json = schema_json();
        let out = c
            .run_command(&["submit", &json, "--service", "120"])
            .expect("valid submit");
        assert_eq!(out.text(), "submitted job 0");

        let ps = c.run_command(&["ps"]).expect("ps works");
        assert!(ps.text().contains("cli-job"));

        let wait = c.run_command(&["wait", "0"]).expect("wait works");
        assert!(wait.text().contains("completed"));

        let logs = c.run_command(&["logs", "0"]).expect("logs work");
        assert!(logs.lines.iter().any(|l| l.contains("completed")));

        // Terminal job can't be killed.
        assert!(c.run_command(&["kill", "0"]).is_err());
    }

    #[test]
    fn submit_defaults_service_to_estimate() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: cannot build the JSON
        }
        let mut c = client();
        let json = schema_json();
        c.run_command(&["submit", &json]).expect("estimate default");
        let state = c.wait(JobId::from_value(0)).expect("exists");
        assert!(state.is_terminal());
    }

    #[test]
    fn usage_errors() {
        let mut c = client();
        assert!(matches!(
            c.run_command(&["frobnicate"]),
            Err(TcloudError::Usage(_))
        ));
        assert!(matches!(
            c.run_command(&["logs", "not-a-number"]),
            Err(TcloudError::Usage(_))
        ));
        assert!(matches!(
            c.run_command(&["submit"]),
            Err(TcloudError::Usage(_))
        ));
    }

    #[test]
    fn info_and_use() {
        let mut c = client();
        let info = c.run_command(&["info"]).expect("info works");
        assert!(info.text().contains("16 GPUs"));
        assert!(c.run_command(&["use", "nowhere"]).is_err());
    }

    #[test]
    fn quota_and_top_snapshots() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: cannot build the JSON
        }
        let mut c = client();
        let json = schema_json();
        c.run_command(&["submit", &json, "--service", "100000"])
            .expect("submits");
        c.advance(3600.0); // job is now running
        let top = c.run_command(&["top"]).expect("top works");
        assert!(top.text().contains("node0"));
        assert!(top.text().contains("1/16 GPUs busy") || top.text().contains("GPUs busy"));
        let quota = c.run_command(&["quota"]).expect("quota works");
        assert!(quota.text().contains("GROUP"));
        assert!(quota.lines.len() > 1);
    }

    #[test]
    fn get_retrieves_artifacts_from_all_nodes() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: cannot build the JSON
        }
        let mut c = client();
        let schema = TaskSchema::builder("dist-get", GroupId::from_index(0))
            .workers(2)
            .resources(tacc_cluster::ResourceVec::gpus_only(8))
            .est_duration_secs(300.0)
            .build()
            .expect("valid");
        let json = serde_json::to_string(&schema).expect("serializes");
        c.run_command(&["submit", &json, "--service", "300"])
            .expect("submits");
        // Before it runs: nothing to fetch.
        let early = c.run_command(&["get", "0"]).expect("get works");
        assert!(early.text().contains("nothing to fetch"));
        c.run_command(&["wait", "0"]).expect("completes");
        let out = c.run_command(&["get", "0"]).expect("get works");
        assert!(out.text().contains("checkpoint.pt"));
        assert!(out.text().contains("worker-0.log"));
        assert!(out.text().contains("worker-1.log"));
        assert!(out.lines.last().expect("summary").contains("retrieved"));
        assert!(c.run_command(&["get", "42"]).is_err());
    }

    #[test]
    fn drain_and_undrain_via_cli() {
        let mut c = client();
        let out = c.run_command(&["drain", "0"]).expect("drains");
        assert!(out.text().contains("drained"));
        // Accepts the display form too.
        c.run_command(&["undrain", "node0"]).expect("undrains");
        assert!(c.run_command(&["drain", "99"]).is_err());
        assert!(c.run_command(&["drain", "not-a-node"]).is_err());
    }

    #[test]
    fn events_why_and_metrics_commands() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: cannot build the JSON
        }
        let mut c = client();
        // Saturate the 16-GPU cluster, then queue a 1-GPU job behind it.
        let filler = TaskSchema::builder("filler", GroupId::from_index(0))
            .workers(2)
            .resources(tacc_cluster::ResourceVec::gpus_only(8))
            .est_duration_secs(1e6)
            .build()
            .expect("valid");
        let fj = serde_json::to_string(&filler).expect("serializes");
        c.run_command(&["submit", &fj, "--service", "1000000"])
            .expect("submits");
        c.advance(1000.0);
        let blocked = TaskSchema::builder("blocked", GroupId::from_index(1))
            .resources(tacc_cluster::ResourceVec::gpus_only(1))
            .est_duration_secs(120.0)
            .build()
            .expect("valid");
        let bj = serde_json::to_string(&blocked).expect("serializes");
        c.run_command(&["submit", &bj, "--service", "120"])
            .expect("submits");
        c.advance(1000.0);

        // `why` names the concrete skip reason the scheduler recorded.
        let why = c.run_command(&["why", "1"]).expect("why works");
        assert!(
            why.text().contains("no feasible placement"),
            "{}",
            why.text()
        );

        // `events` shows the typed per-job event stream.
        let events = c.run_command(&["events", "1"]).expect("events work");
        assert!(events.text().contains("submitted"));
        assert!(events.text().contains("queued"));

        // `metrics` exposes series from several layers.
        let metrics = c.run_command(&["metrics"]).expect("metrics work");
        assert!(metrics.text().contains("tacc_core_jobs_submitted_total"));
        assert!(metrics.text().contains("tacc_sched_round_latency_seconds"));
        assert!(metrics.text().contains("tacc_cluster_free_gpus"));

        assert!(c.run_command(&["why", "42"]).is_err());
        assert!(c.run_command(&["events", "42"]).is_err());
        assert!(c.run_command(&["why", "not-a-number"]).is_err());
    }

    #[test]
    fn timeline_and_goodput_commands() {
        if !tacc_workload::serde_json_functional() {
            return; // typecheck-only serde_json stub: cannot build the JSON
        }
        let mut c = client();
        let json = schema_json();
        c.run_command(&["submit", &json, "--service", "120"])
            .expect("submits");
        c.run_command(&["wait", "0"]).expect("completes");

        let tl = c.run_command(&["timeline", "0"]).expect("timeline works");
        assert!(tl.text().contains("Queued"), "{}", tl.text());
        assert!(tl.text().contains("Running"));
        assert!(tl.text().contains("useful execution"));

        let gp = c.run_command(&["goodput"]).expect("goodput works");
        assert!(gp.text().contains("goodput"), "{}", gp.text());
        assert!(gp.text().contains("queue_wait"));

        assert!(c.run_command(&["timeline", "42"]).is_err());
        assert!(c.run_command(&["timeline", "not-a-number"]).is_err());
    }

    #[test]
    fn reserve_carves_a_capacity_window() {
        let mut c = client();
        let out = c
            .run_command(&["reserve", "8", "100", "600"])
            .expect("reserves");
        assert_eq!(out.text(), "reserved 8 GPUs from 100s to 700s");
        assert_eq!(
            c.platform().scheduler().capacity_windows().len(),
            1,
            "window lands in SchedulerConfig::capacity_windows"
        );
        // Validation errors surface as usage/command errors, not panics.
        assert!(c.run_command(&["reserve", "0", "100", "600"]).is_err());
        assert!(c.run_command(&["reserve", "9999", "100", "600"]).is_err());
        assert!(c.run_command(&["reserve", "8", "-1", "600"]).is_err());
        assert!(c.run_command(&["reserve", "8", "100", "0"]).is_err());
        assert!(c.run_command(&["reserve", "x", "100", "600"]).is_err());
    }

    #[test]
    fn truncate_handles_long_names() {
        assert_eq!(truncate("short", 10), "short");
        let long = truncate("a-very-long-task-name-indeed", 10);
        assert!(long.chars().count() <= 10);
        assert!(long.ends_with('…'));
    }
}
