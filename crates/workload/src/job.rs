//! Jobs: submitted task schemas with a lifecycle state machine.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::schema::TaskSchema;

/// Identifier of a submitted job. Dense per platform instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(u64);

impl JobId {
    /// Raw value (used as the cluster lease owner tag).
    pub fn value(self) -> u64 {
        self.0
    }

    /// Constructs a job id from a raw value (trace replay and tests).
    pub fn from_value(v: u64) -> Self {
        JobId(v)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle state of a job.
///
/// ```text
/// Submitted ─compile→ Queued ─place→ Running ─→ Completed
///                       ↑               │ ├──→ Failed (fatal)
///                       └── Preempted ←─┘ └──→ (failure w/ restart) Queued
/// ```
///
/// Any non-terminal state may transition to `Cancelled` (user kill).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted; the compiler layer is preparing the task instruction.
    Submitted,
    /// Instruction ready; waiting in the scheduling queue.
    Queued,
    /// Placed and executing.
    Running,
    /// Evicted by the scheduler; awaiting requeue.
    Preempted,
    /// Finished all its work.
    Completed,
    /// Terminated with an unrecoverable error.
    Failed,
    /// Killed by the user.
    Cancelled,
}

impl JobState {
    /// True for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Submitted => "submitted",
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Preempted => "preempted",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// A submitted job: its schema, its (oracle) service requirement, and its
/// progress through the lifecycle.
///
/// Times are simulation seconds. The *service requirement* is the wall time
/// the job needs on its requested allocation at nominal speed; the
/// execution layer stretches it by a slowdown factor reflecting placement
/// and hardware. The scheduler never reads the true service time — only the
/// user's (noisy) estimate in the schema — mirroring reality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    schema: TaskSchema,
    submit_secs: f64,
    service_secs: f64,
    state: JobState,
    remaining_secs: f64,
    first_start_secs: Option<f64>,
    last_start_secs: Option<f64>,
    finish_secs: Option<f64>,
    preemptions: u32,
    restarts: u32,
    wasted_secs: f64,
}

impl Job {
    /// Creates a job in the `Submitted` state.
    ///
    /// # Panics
    ///
    /// Panics if `service_secs` is not positive and finite, or the schema
    /// fails validation.
    pub fn new(id: JobId, schema: TaskSchema, submit_secs: f64, service_secs: f64) -> Self {
        assert!(
            service_secs > 0.0 && service_secs.is_finite(),
            "service time must be positive"
        );
        schema
            .validate()
            .unwrap_or_else(|e| panic!("invalid schema for {id}: {e}"));
        Job {
            id,
            schema,
            submit_secs,
            service_secs,
            state: JobState::Submitted,
            remaining_secs: service_secs,
            first_start_secs: None,
            last_start_secs: None,
            finish_secs: None,
            preemptions: 0,
            restarts: 0,
            wasted_secs: 0.0,
        }
    }

    /// The job identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The task schema this job was submitted with.
    pub fn schema(&self) -> &TaskSchema {
        &self.schema
    }

    /// Submission time (simulation seconds).
    pub fn submit_secs(&self) -> f64 {
        self.submit_secs
    }

    /// Oracle service requirement in seconds (not visible to the scheduler).
    pub fn service_secs(&self) -> f64 {
        self.service_secs
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.state
    }

    /// Remaining service in seconds.
    pub fn remaining_secs(&self) -> f64 {
        self.remaining_secs
    }

    /// Times this job was preempted.
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    /// Times this job restarted after a failure.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// GPU-seconds of lost progress from preemptions/failures.
    pub fn wasted_secs(&self) -> f64 {
        self.wasted_secs
    }

    /// When the job first started running, if it ever did.
    pub fn first_start_secs(&self) -> Option<f64> {
        self.first_start_secs
    }

    /// When the job reached a terminal state.
    pub fn finish_secs(&self) -> Option<f64> {
        self.finish_secs
    }

    /// Delay from submission to first start (`None` if it never started).
    pub fn queueing_delay_secs(&self) -> Option<f64> {
        self.first_start_secs.map(|s| s - self.submit_secs)
    }

    /// Job completion time: submission to terminal state (`None` while live).
    pub fn jct_secs(&self) -> Option<f64> {
        self.finish_secs.map(|f| f - self.submit_secs)
    }

    fn assert_state(&self, expected: &[JobState], op: &str) {
        assert!(
            expected.contains(&self.state),
            "{}: invalid {op} from state {}",
            self.id,
            self.state
        );
    }

    /// Compiler layer finished; the job enters the scheduling queue.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitted` or `Preempted`.
    pub fn enqueue(&mut self) {
        self.assert_state(&[JobState::Submitted, JobState::Preempted], "enqueue");
        self.state = JobState::Queued;
    }

    /// The job starts (or resumes) running at time `t`.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Queued`.
    pub fn start(&mut self, t: f64) {
        self.assert_state(&[JobState::Queued], "start");
        if self.first_start_secs.is_none() {
            self.first_start_secs = Some(t);
        }
        self.last_start_secs = Some(t);
        self.state = JobState::Running;
    }

    /// Records `elapsed` seconds of useful progress (called when the job is
    /// suspended or finishes).
    fn credit_progress(&mut self, elapsed: f64, lost: f64) {
        let useful = (elapsed - lost).max(0.0);
        self.remaining_secs = (self.remaining_secs - useful).max(0.0);
        self.wasted_secs += lost.min(elapsed).max(0.0);
    }

    /// The scheduler preempts the job at `t`. `progress_secs` is how long it
    /// ran since its last start; `lost_secs` of that is discarded (work since
    /// the last checkpoint).
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Running`.
    pub fn preempt(&mut self, _t: f64, progress_secs: f64, lost_secs: f64) {
        self.assert_state(&[JobState::Running], "preempt");
        self.credit_progress(progress_secs, lost_secs);
        self.preemptions += 1;
        self.state = JobState::Preempted;
    }

    /// A node failure interrupts the job at `t`; it loses `lost_secs` of the
    /// `progress_secs` it ran and goes back to `Preempted` for requeueing.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Running`.
    pub fn interrupt_for_restart(&mut self, _t: f64, progress_secs: f64, lost_secs: f64) {
        self.assert_state(&[JobState::Running], "interrupt");
        self.credit_progress(progress_secs, lost_secs);
        self.restarts += 1;
        self.state = JobState::Preempted;
    }

    /// The platform rejects the job at admission (e.g. its gang can never
    /// fit the cluster): `Submitted` → `Failed` without ever running.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Submitted`.
    pub fn reject(&mut self, t: f64) {
        self.assert_state(&[JobState::Submitted], "reject");
        self.finish_secs = Some(t);
        self.state = JobState::Failed;
    }

    /// The job finishes successfully at `t`.
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Running`.
    pub fn complete(&mut self, t: f64) {
        self.assert_state(&[JobState::Running], "complete");
        self.remaining_secs = 0.0;
        self.finish_secs = Some(t);
        self.state = JobState::Completed;
    }

    /// The job dies with an unrecoverable error at `t` after `progress_secs`
    /// of execution (all of it wasted).
    ///
    /// # Panics
    ///
    /// Panics unless the job is `Running`.
    pub fn fail(&mut self, t: f64, progress_secs: f64) {
        self.assert_state(&[JobState::Running], "fail");
        self.wasted_secs += progress_secs.max(0.0);
        self.finish_secs = Some(t);
        self.state = JobState::Failed;
    }

    /// The user cancels the job at `t`.
    ///
    /// # Panics
    ///
    /// Panics if the job is already terminal.
    pub fn cancel(&mut self, t: f64) {
        assert!(
            !self.state.is_terminal(),
            "{}: cancel on terminal state {}",
            self.id,
            self.state
        );
        self.finish_secs = Some(t);
        self.state = JobState::Cancelled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;

    fn job() -> Job {
        let schema = TaskSchema::builder("t", GroupId::from_index(0))
            .build()
            .expect("valid");
        Job::new(JobId::from_value(1), schema, 100.0, 600.0)
    }

    #[test]
    fn happy_path_lifecycle() {
        let mut j = job();
        assert_eq!(j.state(), JobState::Submitted);
        j.enqueue();
        assert_eq!(j.state(), JobState::Queued);
        j.start(150.0);
        assert_eq!(j.state(), JobState::Running);
        j.complete(750.0);
        assert_eq!(j.state(), JobState::Completed);
        assert_eq!(j.queueing_delay_secs(), Some(50.0));
        assert_eq!(j.jct_secs(), Some(650.0));
        assert_eq!(j.remaining_secs(), 0.0);
        assert!(j.state().is_terminal());
    }

    #[test]
    fn preemption_keeps_checkpointed_progress() {
        let mut j = job();
        j.enqueue();
        j.start(0.0);
        // Ran 200s, lost the 50s since the last checkpoint.
        j.preempt(200.0, 200.0, 50.0);
        assert_eq!(j.state(), JobState::Preempted);
        assert_eq!(j.preemptions(), 1);
        assert_eq!(j.remaining_secs(), 600.0 - 150.0);
        assert_eq!(j.wasted_secs(), 50.0);
        // Requeue and resume.
        j.enqueue();
        j.start(300.0);
        assert_eq!(j.first_start_secs(), Some(0.0)); // first start preserved
        j.complete(750.0);
        assert_eq!(j.jct_secs(), Some(650.0));
    }

    #[test]
    fn failure_restart_counts_waste() {
        let mut j = job();
        j.enqueue();
        j.start(0.0);
        j.interrupt_for_restart(100.0, 100.0, 100.0); // no checkpoint: all lost
        assert_eq!(j.restarts(), 1);
        assert_eq!(j.remaining_secs(), 600.0);
        assert_eq!(j.wasted_secs(), 100.0);
    }

    #[test]
    fn fatal_failure() {
        let mut j = job();
        j.enqueue();
        j.start(150.0);
        j.fail(180.0, 30.0);
        assert_eq!(j.state(), JobState::Failed);
        assert_eq!(j.wasted_secs(), 30.0);
        assert_eq!(j.jct_secs(), Some(80.0));
    }

    #[test]
    fn cancel_from_queue() {
        let mut j = job();
        j.enqueue();
        j.cancel(500.0);
        assert_eq!(j.state(), JobState::Cancelled);
        assert_eq!(j.queueing_delay_secs(), None);
        assert_eq!(j.jct_secs(), Some(400.0));
    }

    #[test]
    #[should_panic(expected = "invalid start")]
    fn start_requires_queued() {
        let mut j = job();
        j.start(0.0);
    }

    #[test]
    #[should_panic(expected = "terminal")]
    fn cancel_twice_panics() {
        let mut j = job();
        j.cancel(1.0);
        j.cancel(2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_rejected() {
        let schema = TaskSchema::builder("t", GroupId::from_index(0))
            .build()
            .expect("valid");
        let _ = Job::new(JobId::from_value(1), schema, 0.0, 0.0);
    }
}
