//! Jobs: submitted task schemas with a checked lifecycle state machine.
//!
//! The lifecycle is an explicit transition matrix ([`TRANSITION_MATRIX`])
//! driven by typed events ([`JobEvent`]). Every state change goes through
//! [`JobState::transition`], which either returns the successor state or a
//! typed [`IllegalTransition`] error — there is no panicking mutator API.
//! The platform layer routes all calls through `core::lifecycle`, so the
//! whole system has exactly one state-write site.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::schema::TaskSchema;

/// Identifier of a submitted job. Dense per platform instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(u64);

impl JobId {
    /// Raw value (used as the cluster lease owner tag).
    pub fn value(self) -> u64 {
        self.0
    }

    /// Constructs a job id from a raw value (trace replay and tests).
    pub fn from_value(v: u64) -> Self {
        JobId(v)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Lifecycle state of a job.
///
/// One edge per line; `tests/lifecycle_properties.rs` parses this block and
/// asserts it matches [`TRANSITION_MATRIX`] exactly, so keep the edge-list
/// format intact when editing.
///
/// ```text
/// Submitted ──submit──→ Submitted
/// Submitted ──enqueue──→ Queued
/// Submitted ──reject───→ Failed
/// Queued ──start──→ Running
/// Running ──complete──→ Completed
/// Running ──fail──→ Failed
/// Running ──preempt──→ Preempted
/// Running ──interrupt──→ Preempted
/// Preempted ──enqueue──→ Queued
/// Submitted|Queued|Running|Preempted ──cancel──→ Cancelled
/// ```
///
/// `Completed`, `Failed`, and `Cancelled` are terminal and absorbing: no
/// event leaves them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted; the compiler layer is preparing the task instruction.
    Submitted,
    /// Instruction ready; waiting in the scheduling queue.
    Queued,
    /// Placed and executing.
    Running,
    /// Evicted by the scheduler; awaiting requeue.
    Preempted,
    /// Finished all its work.
    Completed,
    /// Terminated with an unrecoverable error.
    Failed,
    /// Killed by the user.
    Cancelled,
}

impl JobState {
    /// Every state, in declaration order (drives exhaustive matrix tests).
    pub const ALL: [JobState; 7] = [
        JobState::Submitted,
        JobState::Queued,
        JobState::Running,
        JobState::Preempted,
        JobState::Completed,
        JobState::Failed,
        JobState::Cancelled,
    ];

    /// True for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }

    /// The checked transition function: applies `event` to `self` and
    /// returns the successor state, or a typed [`IllegalTransition`] if the
    /// matrix has no such edge.
    ///
    /// The match is exhaustive over the full `(state, event)` cross product
    /// with no wildcard row, so adding a state or event forces this function
    /// (and [`TRANSITION_MATRIX`]) to be revisited at compile time.
    pub fn transition(self, event: &JobEvent) -> Result<JobState, IllegalTransition> {
        use JobEventKind as K;
        use JobState as S;
        let next = match (self, event.kind()) {
            // Legal edges (mirror TRANSITION_MATRIX and the diagram above).
            (S::Submitted, K::Submit) => Some(S::Submitted),
            (S::Submitted | S::Preempted, K::Enqueue) => Some(S::Queued),
            (S::Submitted, K::Reject) => Some(S::Failed),
            (S::Queued, K::Start) => Some(S::Running),
            (S::Running, K::Complete) => Some(S::Completed),
            (S::Running, K::Fail) => Some(S::Failed),
            (S::Running, K::Preempt | K::Interrupt) => Some(S::Preempted),
            (S::Submitted | S::Queued | S::Running | S::Preempted, K::Cancel) => Some(S::Cancelled),
            // Terminal states are absorbing.
            (S::Completed | S::Failed | S::Cancelled, _) => None,
            // Every remaining live-state combination is illegal, spelled out
            // so no wildcard can swallow a future variant.
            (S::Submitted, K::Start | K::Preempt | K::Interrupt | K::Complete | K::Fail) => None,
            (
                S::Queued,
                K::Submit
                | K::Enqueue
                | K::Preempt
                | K::Interrupt
                | K::Reject
                | K::Complete
                | K::Fail,
            ) => None,
            (S::Running, K::Submit | K::Enqueue | K::Start | K::Reject) => None,
            (
                S::Preempted,
                K::Submit
                | K::Start
                | K::Preempt
                | K::Interrupt
                | K::Reject
                | K::Complete
                | K::Fail,
            ) => None,
        };
        next.ok_or(IllegalTransition {
            from: self,
            event: event.kind(),
        })
    }
}

impl JobState {
    /// Parses the lowercase `Display` name back into a state (used by the
    /// observability layer when replaying a transition JSONL export).
    /// Inverse of `Display` by construction, so the two can never drift.
    pub fn parse_name(s: &str) -> Option<JobState> {
        JobState::ALL.iter().copied().find(|v| v.to_string() == s)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Submitted => "submitted",
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Preempted => "preempted",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// A lifecycle event applied to a job. Carries the bookkeeping payload the
/// transition needs (timestamps, progress credit); the legality of the
/// transition itself depends only on the event's [`JobEventKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobEvent {
    /// Admission accepted the submission at `at_secs`. A self-loop on
    /// `Submitted`: no state change, but the transition log gains a record
    /// anchoring the job's timeline at its submission time, so span
    /// reconstruction from the stream alone knows when `Compiling` began.
    Submit {
        /// Simulation time of the submission.
        at_secs: f64,
    },
    /// Compiler finished (or a preempted job is requeued): enter the queue.
    Enqueue,
    /// Placed by the scheduler; starts (or resumes) running at `at_secs`.
    Start {
        /// Simulation time of the (re)start.
        at_secs: f64,
    },
    /// Scheduler eviction: ran `progress_secs` since the last start, of
    /// which `lost_secs` (work since the last checkpoint) is discarded.
    Preempt {
        /// Simulation time of the preemption.
        at_secs: f64,
        /// Wall seconds executed since the last start.
        progress_secs: f64,
        /// Portion of `progress_secs` lost (no checkpoint to resume from).
        lost_secs: f64,
    },
    /// Node-failure interruption with checkpoint-restart: like `Preempt`
    /// but counted as a restart rather than a preemption.
    Interrupt {
        /// Simulation time of the failure.
        at_secs: f64,
        /// Wall seconds executed since the last start.
        progress_secs: f64,
        /// Portion of `progress_secs` lost to the failure.
        lost_secs: f64,
    },
    /// Admission rejection: the job can never run (e.g. infeasible gang).
    Reject {
        /// Simulation time of the rejection.
        at_secs: f64,
    },
    /// Successful completion.
    Complete {
        /// Simulation time of completion.
        at_secs: f64,
    },
    /// Unrecoverable error after `progress_secs` of execution (all wasted).
    Fail {
        /// Simulation time of the failure.
        at_secs: f64,
        /// Wall seconds executed since the last start, all discarded.
        progress_secs: f64,
    },
    /// User kill.
    Cancel {
        /// Simulation time of the cancellation.
        at_secs: f64,
    },
}

impl JobEvent {
    /// The payload-free kind of this event (the matrix key).
    pub fn kind(&self) -> JobEventKind {
        match self {
            JobEvent::Submit { .. } => JobEventKind::Submit,
            JobEvent::Enqueue => JobEventKind::Enqueue,
            JobEvent::Start { .. } => JobEventKind::Start,
            JobEvent::Preempt { .. } => JobEventKind::Preempt,
            JobEvent::Interrupt { .. } => JobEventKind::Interrupt,
            JobEvent::Reject { .. } => JobEventKind::Reject,
            JobEvent::Complete { .. } => JobEventKind::Complete,
            JobEvent::Fail { .. } => JobEventKind::Fail,
            JobEvent::Cancel { .. } => JobEventKind::Cancel,
        }
    }
}

/// The kind of a [`JobEvent`], without payload. Keys the transition matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobEventKind {
    /// See [`JobEvent::Submit`].
    Submit,
    /// See [`JobEvent::Enqueue`].
    Enqueue,
    /// See [`JobEvent::Start`].
    Start,
    /// See [`JobEvent::Preempt`].
    Preempt,
    /// See [`JobEvent::Interrupt`].
    Interrupt,
    /// See [`JobEvent::Reject`].
    Reject,
    /// See [`JobEvent::Complete`].
    Complete,
    /// See [`JobEvent::Fail`].
    Fail,
    /// See [`JobEvent::Cancel`].
    Cancel,
}

impl JobEventKind {
    /// Every event kind, in declaration order (drives matrix tests).
    pub const ALL: [JobEventKind; 9] = [
        JobEventKind::Submit,
        JobEventKind::Enqueue,
        JobEventKind::Start,
        JobEventKind::Preempt,
        JobEventKind::Interrupt,
        JobEventKind::Reject,
        JobEventKind::Complete,
        JobEventKind::Fail,
        JobEventKind::Cancel,
    ];
}

impl JobEventKind {
    /// Parses the lowercase `Display` name back into a kind (used by the
    /// observability layer when replaying a transition JSONL export).
    /// Inverse of `Display` by construction, so the two can never drift.
    pub fn parse_name(s: &str) -> Option<JobEventKind> {
        JobEventKind::ALL
            .iter()
            .copied()
            .find(|v| v.to_string() == s)
    }
}

impl fmt::Display for JobEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobEventKind::Submit => "submit",
            JobEventKind::Enqueue => "enqueue",
            JobEventKind::Start => "start",
            JobEventKind::Preempt => "preempt",
            JobEventKind::Interrupt => "interrupt",
            JobEventKind::Reject => "reject",
            JobEventKind::Complete => "complete",
            JobEventKind::Fail => "fail",
            JobEventKind::Cancel => "cancel",
        };
        f.write_str(s)
    }
}

/// The lifecycle transition matrix as data: `(from, event, to)` rows.
///
/// [`JobState::transition`] is the exhaustively match-checked twin of this
/// table; `workload` unit tests and `tests/lifecycle_properties.rs` assert
/// the two agree over the full `(state, event)` cross product.
pub const TRANSITION_MATRIX: &[(JobState, JobEventKind, JobState)] = &[
    (
        JobState::Submitted,
        JobEventKind::Submit,
        JobState::Submitted,
    ),
    (JobState::Submitted, JobEventKind::Enqueue, JobState::Queued),
    (JobState::Submitted, JobEventKind::Reject, JobState::Failed),
    (
        JobState::Submitted,
        JobEventKind::Cancel,
        JobState::Cancelled,
    ),
    (JobState::Queued, JobEventKind::Start, JobState::Running),
    (JobState::Queued, JobEventKind::Cancel, JobState::Cancelled),
    (
        JobState::Running,
        JobEventKind::Complete,
        JobState::Completed,
    ),
    (JobState::Running, JobEventKind::Fail, JobState::Failed),
    (
        JobState::Running,
        JobEventKind::Preempt,
        JobState::Preempted,
    ),
    (
        JobState::Running,
        JobEventKind::Interrupt,
        JobState::Preempted,
    ),
    (JobState::Running, JobEventKind::Cancel, JobState::Cancelled),
    (JobState::Preempted, JobEventKind::Enqueue, JobState::Queued),
    (
        JobState::Preempted,
        JobEventKind::Cancel,
        JobState::Cancelled,
    ),
];

/// A rejected lifecycle transition: the matrix has no `from ──event→` edge.
///
/// Surfaced on the platform event bus as `PlatformEvent::IllegalTransition`
/// instead of mutating state (or panicking, as the pre-lifecycle-engine
/// mutators did).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IllegalTransition {
    /// The state the job was in when the event arrived.
    pub from: JobState,
    /// The event kind that had no edge from `from`.
    pub event: JobEventKind,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal transition: {} from state {}",
            self.event, self.from
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// A submitted job: its schema, its (oracle) service requirement, and its
/// progress through the lifecycle.
///
/// Times are simulation seconds. The *service requirement* is the wall time
/// the job needs on its requested allocation at nominal speed; the
/// execution layer stretches it by a slowdown factor reflecting placement
/// and hardware. The scheduler never reads the true service time — only the
/// user's (noisy) estimate in the schema — mirroring reality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    schema: TaskSchema,
    submit_secs: f64,
    service_secs: f64,
    state: JobState,
    remaining_secs: f64,
    first_start_secs: Option<f64>,
    last_start_secs: Option<f64>,
    finish_secs: Option<f64>,
    preemptions: u32,
    restarts: u32,
    wasted_secs: f64,
}

impl Job {
    /// Creates a job in the `Submitted` state.
    ///
    /// # Panics
    ///
    /// Panics if `service_secs` is not positive and finite, or the schema
    /// fails validation.
    pub fn new(id: JobId, schema: TaskSchema, submit_secs: f64, service_secs: f64) -> Self {
        assert!(
            service_secs > 0.0 && service_secs.is_finite(),
            "service time must be positive"
        );
        schema
            .validate()
            .unwrap_or_else(|e| panic!("invalid schema for {id}: {e}"));
        Job {
            id,
            schema,
            submit_secs,
            service_secs,
            state: JobState::Submitted,
            remaining_secs: service_secs,
            first_start_secs: None,
            last_start_secs: None,
            finish_secs: None,
            preemptions: 0,
            restarts: 0,
            wasted_secs: 0.0,
        }
    }

    /// The job identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The task schema this job was submitted with.
    pub fn schema(&self) -> &TaskSchema {
        &self.schema
    }

    /// Submission time (simulation seconds).
    pub fn submit_secs(&self) -> f64 {
        self.submit_secs
    }

    /// Oracle service requirement in seconds (not visible to the scheduler).
    pub fn service_secs(&self) -> f64 {
        self.service_secs
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.state
    }

    /// Remaining service in seconds.
    pub fn remaining_secs(&self) -> f64 {
        self.remaining_secs
    }

    /// Times this job was preempted.
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    /// Times this job restarted after a failure.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// GPU-seconds of lost progress from preemptions/failures.
    pub fn wasted_secs(&self) -> f64 {
        self.wasted_secs
    }

    /// When the job first started running, if it ever did.
    pub fn first_start_secs(&self) -> Option<f64> {
        self.first_start_secs
    }

    /// When the job reached a terminal state.
    pub fn finish_secs(&self) -> Option<f64> {
        self.finish_secs
    }

    /// Delay from submission to first start (`None` if it never started).
    pub fn queueing_delay_secs(&self) -> Option<f64> {
        self.first_start_secs.map(|s| s - self.submit_secs)
    }

    /// Job completion time: submission to terminal state (`None` while live).
    pub fn jct_secs(&self) -> Option<f64> {
        self.finish_secs.map(|f| f - self.submit_secs)
    }

    /// Records `elapsed` seconds of useful progress (called when the job is
    /// suspended or finishes).
    fn credit_progress(&mut self, elapsed: f64, lost: f64) {
        let useful = (elapsed - lost).max(0.0);
        self.remaining_secs = (self.remaining_secs - useful).max(0.0);
        self.wasted_secs += lost.min(elapsed).max(0.0);
    }

    /// Applies a lifecycle event: validates it against the transition
    /// matrix, performs the event's bookkeeping (timestamps, progress
    /// credit, counters), and commits the successor state.
    ///
    /// This is the only way to change a job's state. On an illegal event
    /// the job is left untouched and the typed error is returned — callers
    /// (the platform lifecycle module) surface it on the event bus.
    ///
    /// Outside of tests, call this only from `core::lifecycle` — a
    /// repo-wide write-site test enforces that every production caller
    /// lives there, keeping the whole system single-writer.
    pub fn apply_event(&mut self, event: JobEvent) -> Result<JobState, IllegalTransition> {
        let next = self.state.transition(&event)?;
        match event {
            JobEvent::Submit { .. } => {}
            JobEvent::Enqueue => {}
            JobEvent::Start { at_secs } => {
                if self.first_start_secs.is_none() {
                    self.first_start_secs = Some(at_secs);
                }
                self.last_start_secs = Some(at_secs);
            }
            JobEvent::Preempt {
                progress_secs,
                lost_secs,
                ..
            } => {
                self.credit_progress(progress_secs, lost_secs);
                self.preemptions += 1;
            }
            JobEvent::Interrupt {
                progress_secs,
                lost_secs,
                ..
            } => {
                self.credit_progress(progress_secs, lost_secs);
                self.restarts += 1;
            }
            JobEvent::Reject { at_secs } => {
                self.finish_secs = Some(at_secs);
            }
            JobEvent::Complete { at_secs } => {
                self.remaining_secs = 0.0;
                self.finish_secs = Some(at_secs);
            }
            JobEvent::Fail {
                at_secs,
                progress_secs,
            } => {
                self.wasted_secs += progress_secs.max(0.0);
                self.finish_secs = Some(at_secs);
            }
            JobEvent::Cancel { at_secs } => {
                self.finish_secs = Some(at_secs);
            }
        }
        self.state = next;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;

    fn job() -> Job {
        let schema = TaskSchema::builder("t", GroupId::from_index(0))
            .build()
            .expect("valid");
        Job::new(JobId::from_value(1), schema, 100.0, 600.0)
    }

    fn apply(j: &mut Job, event: JobEvent) -> JobState {
        j.apply_event(event).expect("legal transition")
    }

    #[test]
    fn happy_path_lifecycle() {
        let mut j = job();
        assert_eq!(j.state(), JobState::Submitted);
        apply(&mut j, JobEvent::Enqueue);
        assert_eq!(j.state(), JobState::Queued);
        apply(&mut j, JobEvent::Start { at_secs: 150.0 });
        assert_eq!(j.state(), JobState::Running);
        apply(&mut j, JobEvent::Complete { at_secs: 750.0 });
        assert_eq!(j.state(), JobState::Completed);
        assert_eq!(j.queueing_delay_secs(), Some(50.0));
        assert_eq!(j.jct_secs(), Some(650.0));
        assert_eq!(j.remaining_secs(), 0.0);
        assert!(j.state().is_terminal());
    }

    #[test]
    fn preemption_keeps_checkpointed_progress() {
        let mut j = job();
        apply(&mut j, JobEvent::Enqueue);
        apply(&mut j, JobEvent::Start { at_secs: 0.0 });
        // Ran 200s, lost the 50s since the last checkpoint.
        apply(
            &mut j,
            JobEvent::Preempt {
                at_secs: 200.0,
                progress_secs: 200.0,
                lost_secs: 50.0,
            },
        );
        assert_eq!(j.state(), JobState::Preempted);
        assert_eq!(j.preemptions(), 1);
        assert_eq!(j.remaining_secs(), 600.0 - 150.0);
        assert_eq!(j.wasted_secs(), 50.0);
        // Requeue and resume.
        apply(&mut j, JobEvent::Enqueue);
        apply(&mut j, JobEvent::Start { at_secs: 300.0 });
        assert_eq!(j.first_start_secs(), Some(0.0)); // first start preserved
        apply(&mut j, JobEvent::Complete { at_secs: 750.0 });
        assert_eq!(j.jct_secs(), Some(650.0));
    }

    #[test]
    fn failure_restart_counts_waste() {
        let mut j = job();
        apply(&mut j, JobEvent::Enqueue);
        apply(&mut j, JobEvent::Start { at_secs: 0.0 });
        // No checkpoint: all progress lost.
        apply(
            &mut j,
            JobEvent::Interrupt {
                at_secs: 100.0,
                progress_secs: 100.0,
                lost_secs: 100.0,
            },
        );
        assert_eq!(j.restarts(), 1);
        assert_eq!(j.remaining_secs(), 600.0);
        assert_eq!(j.wasted_secs(), 100.0);
    }

    #[test]
    fn fatal_failure() {
        let mut j = job();
        apply(&mut j, JobEvent::Enqueue);
        apply(&mut j, JobEvent::Start { at_secs: 150.0 });
        apply(
            &mut j,
            JobEvent::Fail {
                at_secs: 180.0,
                progress_secs: 30.0,
            },
        );
        assert_eq!(j.state(), JobState::Failed);
        assert_eq!(j.wasted_secs(), 30.0);
        assert_eq!(j.jct_secs(), Some(80.0));
    }

    #[test]
    fn cancel_from_queue() {
        let mut j = job();
        apply(&mut j, JobEvent::Enqueue);
        apply(&mut j, JobEvent::Cancel { at_secs: 500.0 });
        assert_eq!(j.state(), JobState::Cancelled);
        assert_eq!(j.queueing_delay_secs(), None);
        assert_eq!(j.jct_secs(), Some(400.0));
    }

    #[test]
    fn start_requires_queued() {
        let mut j = job();
        let err = j
            .apply_event(JobEvent::Start { at_secs: 0.0 })
            .expect_err("submitted jobs cannot start");
        assert_eq!(err.from, JobState::Submitted);
        assert_eq!(err.event, JobEventKind::Start);
        assert_eq!(j.state(), JobState::Submitted); // untouched
        assert_eq!(
            err.to_string(),
            "illegal transition: start from state submitted"
        );
    }

    #[test]
    fn terminal_states_absorb_cancel() {
        let mut j = job();
        apply(&mut j, JobEvent::Cancel { at_secs: 1.0 });
        let err = j
            .apply_event(JobEvent::Cancel { at_secs: 2.0 })
            .expect_err("cancel is not idempotent");
        assert_eq!(err.from, JobState::Cancelled);
        assert_eq!(j.finish_secs(), Some(1.0)); // first cancel's timestamp kept
    }

    #[test]
    fn transition_matrix_agrees_with_match() {
        // The data table and the exhaustive match must describe the same
        // relation over the full cross product.
        for &from in JobState::ALL.iter() {
            for &kind in JobEventKind::ALL.iter() {
                let row = TRANSITION_MATRIX
                    .iter()
                    .find(|&&(f, k, _)| f == from && k == kind)
                    .map(|&(_, _, to)| to);
                let event = sample_event(kind);
                let matched = from.transition(&event).ok();
                assert_eq!(
                    row, matched,
                    "matrix/match disagree on ({from:?}, {kind:?})"
                );
            }
        }
    }

    #[test]
    fn terminal_states_have_no_outgoing_edges() {
        for &(from, _, _) in TRANSITION_MATRIX {
            assert!(!from.is_terminal(), "terminal state {from:?} has an edge");
        }
    }

    fn sample_event(kind: JobEventKind) -> JobEvent {
        match kind {
            JobEventKind::Submit => JobEvent::Submit { at_secs: 0.0 },
            JobEventKind::Enqueue => JobEvent::Enqueue,
            JobEventKind::Start => JobEvent::Start { at_secs: 0.0 },
            JobEventKind::Preempt => JobEvent::Preempt {
                at_secs: 0.0,
                progress_secs: 0.0,
                lost_secs: 0.0,
            },
            JobEventKind::Interrupt => JobEvent::Interrupt {
                at_secs: 0.0,
                progress_secs: 0.0,
                lost_secs: 0.0,
            },
            JobEventKind::Reject => JobEvent::Reject { at_secs: 0.0 },
            JobEventKind::Complete => JobEvent::Complete { at_secs: 0.0 },
            JobEventKind::Fail => JobEvent::Fail {
                at_secs: 0.0,
                progress_secs: 0.0,
            },
            JobEventKind::Cancel => JobEvent::Cancel { at_secs: 0.0 },
        }
    }

    #[test]
    fn display_names_parse_back() {
        for s in JobState::ALL {
            assert_eq!(JobState::parse_name(&s.to_string()), Some(s));
        }
        for k in JobEventKind::ALL {
            assert_eq!(JobEventKind::parse_name(&k.to_string()), Some(k));
        }
        assert_eq!(JobState::parse_name("bogus"), None);
        assert_eq!(JobEventKind::parse_name("bogus"), None);
    }

    #[test]
    fn submit_is_a_recorded_self_loop() {
        let mut j = job();
        apply(&mut j, JobEvent::Submit { at_secs: 100.0 });
        assert_eq!(j.state(), JobState::Submitted);
        // Submission is telemetry-only: no bookkeeping changes.
        assert_eq!(j.remaining_secs(), 600.0);
        assert_eq!(j.finish_secs(), None);
        // Legal only from Submitted.
        apply(&mut j, JobEvent::Enqueue);
        let err = j
            .apply_event(JobEvent::Submit { at_secs: 200.0 })
            .expect_err("queued jobs cannot re-submit");
        assert_eq!(err.from, JobState::Queued);
        assert_eq!(err.event, JobEventKind::Submit);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_service_rejected() {
        let schema = TaskSchema::builder("t", GroupId::from_index(0))
            .build()
            .expect("valid");
        let _ = Job::new(JobId::from_value(1), schema, 0.0, 0.0);
    }
}
