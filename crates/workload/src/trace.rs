//! Trace files: the serializable record of a workload.

use serde::{Deserialize, Serialize};

use tacc_metrics::{Cdf, Summary};

use crate::schema::TaskSchema;

/// One submission in a trace: when, what, and how long it would truly run.
///
/// `service_secs` is the oracle service requirement used by the execution
/// model; schedulers only ever see `schema.est_duration_secs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Submission time in seconds from trace start.
    pub submit_secs: f64,
    /// The full, self-contained task schema.
    pub schema: TaskSchema,
    /// True service requirement in seconds.
    pub service_secs: f64,
    /// If set, the user kills this job this many seconds after submitting
    /// it (campus traces show a sizeable cancelled fraction).
    #[serde(default)]
    pub cancel_after_secs: Option<f64>,
}

/// A workload trace: submissions ordered by time.
///
/// Serializable to JSON so traces can be saved, shared and replayed — the
/// workload-side counterpart of the paper's reproducible task execution.
///
/// # Example
///
/// ```
/// use tacc_workload::{GenParams, TraceGenerator};
/// let trace = TraceGenerator::new(GenParams::default(), 7).generate_days(0.5);
/// if tacc_workload::serde_json_functional() {
///     let json = trace.to_json().expect("serializes");
///     let back = tacc_workload::Trace::from_json(&json).expect("parses");
///     assert_eq!(trace.len(), back.len());
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace from records, sorting them by submission time.
    pub fn new(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by(|a, b| {
            a.submit_secs
                .partial_cmp(&b.submit_secs)
                .expect("finite submit times")
        });
        Trace { records }
    }

    /// The records in submission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of submissions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no submissions.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time of the last submission (0 for an empty trace).
    pub fn horizon_secs(&self) -> f64 {
        self.records.last().map(|r| r.submit_secs).unwrap_or(0.0)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (effectively unreachable for
    /// well-formed traces).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a trace from JSON produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let t: Trace = serde_json::from_str(json)?;
        Ok(Trace::new(t.records))
    }

    /// Scales all submission times by `factor` (>1 spreads load out, <1
    /// compresses it) — the load-factor knob of experiment F3.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn with_time_scale(&self, factor: f64) -> Trace {
        assert!(factor > 0.0 && factor.is_finite(), "bad time scale");
        let records = self
            .records
            .iter()
            .map(|r| TraceRecord {
                submit_secs: r.submit_secs * factor,
                schema: r.schema.clone(),
                service_secs: r.service_secs,
                cancel_after_secs: r.cancel_after_secs,
            })
            .collect();
        Trace::new(records)
    }

    /// Characterization statistics for experiment F1.
    pub fn stats(&self) -> TraceStats {
        let durations: Vec<f64> = self.records.iter().map(|r| r.service_secs).collect();
        let gpus: Vec<f64> = self
            .records
            .iter()
            .map(|r| f64::from(r.schema.total_gpus()))
            .collect();
        let gpu_hours: f64 = self
            .records
            .iter()
            .map(|r| f64::from(r.schema.total_gpus()) * r.service_secs / 3600.0)
            .sum();
        TraceStats {
            submissions: self.records.len(),
            duration_summary: Summary::from_samples(&durations),
            duration_cdf: Cdf::from_samples(&durations),
            gpu_demand_summary: Summary::from_samples(&gpus),
            total_gpu_hours: gpu_hours,
        }
    }
}

/// Aggregate characterization of a trace (experiment F1's data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of submissions.
    pub submissions: usize,
    /// Summary of true service times (seconds).
    pub duration_summary: Summary,
    /// CDF of true service times (seconds).
    pub duration_cdf: Cdf,
    /// Summary of total GPU demand per job.
    pub gpu_demand_summary: Summary,
    /// Total work in the trace, GPU-hours.
    pub total_gpu_hours: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use crate::schema::TaskSchema;

    fn record(t: f64, service: f64) -> TraceRecord {
        TraceRecord {
            submit_secs: t,
            schema: TaskSchema::builder("x", GroupId::from_index(0))
                .build()
                .expect("valid"),
            service_secs: service,
            cancel_after_secs: None,
        }
    }

    #[test]
    fn new_sorts_by_time() {
        let t = Trace::new(vec![
            record(5.0, 10.0),
            record(1.0, 10.0),
            record(3.0, 10.0),
        ]);
        let times: Vec<f64> = t.records().iter().map(|r| r.submit_secs).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(t.horizon_secs(), 5.0);
    }

    #[test]
    fn json_round_trip() {
        if !crate::serde_json_functional() {
            return; // typecheck-only serde_json stub: nothing to round-trip
        }
        let t = Trace::new(vec![record(1.0, 60.0), record(2.0, 120.0)]);
        let json = t.to_json().expect("serializes");
        let back = Trace::from_json(&json).expect("parses");
        assert_eq!(t, back);
    }

    #[test]
    fn time_scale_stretches_arrivals() {
        let t = Trace::new(vec![record(10.0, 60.0), record(20.0, 60.0)]);
        let slow = t.with_time_scale(2.0);
        assert_eq!(slow.records()[1].submit_secs, 40.0);
        // Service times unchanged.
        assert_eq!(slow.records()[1].service_secs, 60.0);
    }

    #[test]
    fn stats_aggregate() {
        let t = Trace::new(vec![record(0.0, 3600.0), record(1.0, 7200.0)]);
        let s = t.stats();
        assert_eq!(s.submissions, 2);
        assert_eq!(s.duration_summary.count(), 2);
        // Each job asks 1 GPU: 1h + 2h = 3 GPU-hours.
        assert!((s.total_gpu_hours - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.horizon_secs(), 0.0);
        assert_eq!(t.stats().submissions, 0);
    }
}
