//! The synthetic campus trace generator.
//!
//! Substitutes for the production traces the ASPLOS'25 paper analyzes. The
//! generator is calibrated to the published shape of shared-GPU-cluster
//! traces (Philly/Helios/PAI and the TACC deployment itself):
//!
//! * **Arrivals** — Poisson process whose rate follows a diurnal cycle
//!   (daytime peak ≈ 2–3× the overnight trough) with a weekday/weekend
//!   factor;
//! * **Durations** — log-normal, heavy tailed: median tens of minutes, a
//!   tail of multi-day runs, truncated to a configurable range;
//! * **GPU demand** — overwhelmingly 1 GPU, then powers of two up to
//!   multi-node sizes;
//! * **Tenancy** — Zipf-skewed activity across research groups;
//! * **Mix** — mostly batch training, a daytime-heavy interactive slice,
//!   some inference sweeps and CPU batch jobs;
//! * **Estimates** — user-provided duration estimates are the true duration
//!   times a log-normal error factor (users misestimate badly, which is
//!   what makes SJF/backfill interesting).

use tacc_sim::DetRng;

use tacc_cluster::ResourceVec;
use tacc_sim::dist;
use tacc_sim::SeedStream;

use crate::group::{GroupId, GroupRoster};
use crate::schema::{ModelProfile, QosClass, RuntimeEnv, TaskKind, TaskSchema};
use crate::trace::{Trace, TraceRecord};

/// Tunable parameters of the trace generator.
///
/// The defaults reproduce the canonical campus workload used throughout the
/// experiment suite; experiments that sweep a knob (load factor, multi-node
/// fraction) start from `GenParams::default()` and override one field.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// The research groups and their activity weights.
    pub roster: GroupRoster,
    /// Mean submissions per hour at the diurnal peak.
    pub peak_jobs_per_hour: f64,
    /// Trough-to-peak ratio of the diurnal cycle (0..1).
    pub diurnal_trough_ratio: f64,
    /// Weekend arrival-rate multiplier (0..1].
    pub weekend_factor: f64,
    /// Log-normal `mu` of true durations (ln seconds).
    pub duration_mu: f64,
    /// Log-normal `sigma` of true durations.
    pub duration_sigma: f64,
    /// Truncation range for durations, seconds.
    pub duration_range_secs: (f64, f64),
    /// Weights over per-job total GPU counts `[1, 2, 4, 8, 16, 32, 64]`.
    pub gpu_count_weights: [f64; 7],
    /// Fraction of submissions that are interactive sessions.
    pub interactive_fraction: f64,
    /// Fraction that are inference sweeps.
    pub inference_fraction: f64,
    /// Fraction that are CPU-only batch jobs.
    pub cpu_fraction: f64,
    /// Fraction of batch training jobs submitted as best-effort QoS.
    pub best_effort_fraction: f64,
    /// Sigma of the log-normal user-estimate error factor.
    pub estimate_error_sigma: f64,
    /// Fraction of submissions the user later cancels.
    pub cancel_fraction: f64,
    /// Fraction of multi-worker best-effort training jobs submitted as
    /// elastic (shrinkable gangs). 0 disables elasticity.
    pub elastic_fraction: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            roster: GroupRoster::campus_default(256),
            peak_jobs_per_hour: 40.0,
            diurnal_trough_ratio: 0.35,
            weekend_factor: 0.55,
            // exp(7.0) ≈ 1097 s ≈ 18 min median, sigma 1.8 gives a long tail.
            duration_mu: 7.0,
            duration_sigma: 1.8,
            duration_range_secs: (60.0, 7.0 * 86_400.0),
            gpu_count_weights: [0.68, 0.12, 0.08, 0.06, 0.035, 0.018, 0.007],
            interactive_fraction: 0.25,
            inference_fraction: 0.08,
            cpu_fraction: 0.05,
            best_effort_fraction: 0.30,
            estimate_error_sigma: 0.9,
            cancel_fraction: 0.06,
            elastic_fraction: 0.0,
        }
    }
}

impl GenParams {
    /// Scales the arrival rate by `factor` (the load knob of experiment F3).
    pub fn with_load_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "load factor must be positive");
        self.peak_jobs_per_hour *= factor;
        self
    }

    /// Overrides the multi-GPU demand weights so that `fraction` of jobs are
    /// multi-node scale (≥16 GPUs) — the knob of experiment F4.
    pub fn with_multi_node_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let single = 1.0 - fraction;
        // Keep the small-job shape, rescale the big tail.
        self.gpu_count_weights = [
            single * 0.72,
            single * 0.14,
            single * 0.09,
            single * 0.05,
            fraction * 0.6,
            fraction * 0.3,
            fraction * 0.1,
        ];
        self
    }
}

/// Deterministic trace generator.
///
/// Two generators constructed with the same parameters and seed produce
/// byte-identical traces.
#[derive(Debug)]
pub struct TraceGenerator {
    params: GenParams,
    arrivals_rng: DetRng,
    shape_rng: DetRng,
}

const GPU_COUNTS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];
const GPUS_PER_NODE: u32 = 8;

impl TraceGenerator {
    /// Creates a generator from parameters and a master seed.
    pub fn new(params: GenParams, seed: u64) -> Self {
        let seeds = SeedStream::new(seed);
        TraceGenerator {
            params,
            arrivals_rng: seeds.stream("trace-arrivals"),
            shape_rng: seeds.stream("trace-shape"),
        }
    }

    /// The parameters this generator runs with.
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// Generates a trace spanning `days` simulated days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is not positive.
    pub fn generate_days(&mut self, days: f64) -> Trace {
        assert!(days > 0.0, "trace must span positive time");
        let horizon = days * 86_400.0;
        let peak_rate = self.params.peak_jobs_per_hour / 3600.0; // per second
        let mut records = Vec::new();
        let mut t = 0.0;
        let mut counter: u64 = 0;
        // Thinning (rejection) sampling of the non-homogeneous Poisson
        // process: propose at the peak rate, accept with rate(t)/peak.
        loop {
            t += dist::exponential(&mut self.arrivals_rng, peak_rate);
            if t >= horizon {
                break;
            }
            let accept_p = self.relative_rate(t);
            if !dist::coin(&mut self.arrivals_rng, accept_p) {
                continue;
            }
            counter += 1;
            records.push(self.sample_record(t, counter));
        }
        Trace::new(records)
    }

    /// Relative arrival rate at time `t` (peak = 1.0).
    fn relative_rate(&self, t_secs: f64) -> f64 {
        let hour_of_day = (t_secs / 3600.0) % 24.0;
        let day = (t_secs / 86_400.0).floor() as u64;
        // Peak at 15:00, trough at 03:00 (campus users work afternoons/nights).
        let phase = (hour_of_day - 15.0) / 24.0 * std::f64::consts::TAU;
        let trough = self.params.diurnal_trough_ratio;
        let diurnal = trough + (1.0 - trough) * (0.5 + 0.5 * phase.cos());
        let weekend = if day % 7 >= 5 {
            self.params.weekend_factor
        } else {
            1.0
        };
        (diurnal * weekend).clamp(0.0, 1.0)
    }

    fn sample_kind(&mut self) -> TaskKind {
        let p = &self.params;
        let weights = [
            p.interactive_fraction,
            p.inference_fraction,
            p.cpu_fraction,
            (1.0 - p.interactive_fraction - p.inference_fraction - p.cpu_fraction).max(0.0),
        ];
        match dist::weighted_index(&mut self.shape_rng, &weights) {
            0 => TaskKind::Interactive,
            1 => TaskKind::Inference,
            2 => TaskKind::CpuBatch,
            _ => TaskKind::Training,
        }
    }

    fn sample_duration(&mut self, kind: TaskKind) -> f64 {
        let p = &self.params;
        let (mu, sigma) = match kind {
            // Interactive sessions: shorter, tighter (median ~1h capped).
            TaskKind::Interactive => (p.duration_mu + 0.8, 0.9),
            // Inference sweeps: short.
            TaskKind::Inference => (p.duration_mu - 1.0, 1.0),
            TaskKind::CpuBatch => (p.duration_mu - 0.5, 1.2),
            TaskKind::Training => (p.duration_mu, p.duration_sigma),
        };
        let (lo, hi) = p.duration_range_secs;
        dist::log_normal(&mut self.shape_rng, mu, sigma).clamp(lo, hi)
    }

    fn sample_gpus(&mut self, kind: TaskKind) -> u32 {
        match kind {
            TaskKind::CpuBatch => 0,
            // Interactive sessions take 1-2 GPUs.
            TaskKind::Interactive => {
                if dist::coin(&mut self.shape_rng, 0.85) {
                    1
                } else {
                    2
                }
            }
            _ => {
                let idx = dist::weighted_index(&mut self.shape_rng, &self.params.gpu_count_weights);
                GPU_COUNTS[idx]
            }
        }
    }

    fn sample_group(&mut self) -> GroupId {
        let idx = dist::weighted_index(&mut self.shape_rng, self.params.roster.weights());
        GroupId::from_index(idx)
    }

    fn sample_env(&mut self, kind: TaskKind, counter: u64) -> RuntimeEnv {
        // A small set of shared images and dependency bundles so that the
        // compiler cache has realistic cross-job overlap (experiment T3).
        let images = [
            "pytorch-2.1-cuda12",
            "pytorch-1.13-cuda11",
            "tensorflow-2.14",
            "jax-0.4-cuda12",
        ];
        let img = images[dist::weighted_index(&mut self.shape_rng, &[0.55, 0.2, 0.15, 0.1])];
        let mut deps = vec![("common-ml-stack".to_owned(), 1800)];
        if dist::coin(&mut self.shape_rng, 0.4) {
            deps.push(("transformers".to_owned(), 450));
        }
        if dist::coin(&mut self.shape_rng, 0.25) {
            deps.push(("datasets-tooling".to_owned(), 300));
        }
        let dataset = match kind {
            TaskKind::Training | TaskKind::Inference => {
                let datasets = [
                    ("imagenet-subset", 12_000u32),
                    ("coco", 20_000),
                    ("wikitext", 600),
                    ("librispeech", 28_000),
                    ("private-lab-data", 4_000),
                ];
                let (name, size) = datasets
                    [dist::weighted_index(&mut self.shape_rng, &[0.3, 0.2, 0.25, 0.1, 0.15])];
                Some((name.to_owned(), size))
            }
            _ => None,
        };
        RuntimeEnv {
            image: img.to_owned(),
            dependencies: deps,
            dataset,
            // Code varies per job (unique suffix in size keeps cache honest).
            code_mb: 3 + (counter % 5) as u32,
        }
    }

    fn sample_model(&mut self, gpus: u32) -> ModelProfile {
        // Bigger allocations tend to train bigger models.
        let big_p = (f64::from(gpus) / 64.0).clamp(0.05, 0.9);
        if dist::coin(&mut self.shape_rng, big_p) {
            // The large-model tier: GPT-2-scale, BERT-large-scale, or (for
            // the biggest gangs) a 7B-LLM shard profile.
            let weights = if gpus >= 32 {
                [0.35, 0.25, 0.40]
            } else {
                [0.5, 0.4, 0.1]
            };
            match dist::weighted_index(&mut self.shape_rng, &weights) {
                0 => ModelProfile::gpt2_like(),
                1 => ModelProfile::bert_large_like(),
                _ => ModelProfile::llm_7b_like(),
            }
        } else {
            match dist::weighted_index(&mut self.shape_rng, &[0.5, 0.3, 0.2]) {
                0 => ModelProfile::resnet50_like(),
                1 => ModelProfile::vit_like(),
                _ => ModelProfile::small_cnn(),
            }
        }
    }

    fn sample_record(&mut self, t: f64, counter: u64) -> TraceRecord {
        let kind = self.sample_kind();
        let service = self.sample_duration(kind);
        let total_gpus = self.sample_gpus(kind);
        let group = self.sample_group();
        let env = self.sample_env(kind, counter);

        // Shape the gang: jobs larger than a node split into 8-GPU workers.
        let (workers, per_worker_gpus) = if total_gpus > GPUS_PER_NODE {
            (total_gpus / GPUS_PER_NODE, GPUS_PER_NODE)
        } else {
            (1, total_gpus.max(1))
        };
        let resources = if kind.is_cpu_only() {
            ResourceVec::cpu_only(
                4 + (dist::uniform(&mut self.shape_rng, 0.0, 12.0) as u32),
                16,
            )
        } else {
            ResourceVec::gpus_only(per_worker_gpus)
        };

        let qos = if kind == TaskKind::Training
            && dist::coin(&mut self.shape_rng, self.params.best_effort_fraction)
        {
            QosClass::BestEffort
        } else {
            QosClass::Guaranteed
        };

        // User estimates are noisy: true * lognormal(0, sigma).
        let err = dist::log_normal(&mut self.shape_rng, 0.0, self.params.estimate_error_sigma);
        let est = (service * err).clamp(60.0, 14.0 * 86_400.0);

        let elastic = workers > 1
            && qos == QosClass::BestEffort
            && dist::coin(&mut self.shape_rng, self.params.elastic_fraction);
        let mut builder = TaskSchema::builder(&format!("job-{counter}"), group)
            .workers(workers)
            .resources(resources)
            .qos(qos)
            .kind(kind)
            .env(env)
            .elastic(elastic)
            .est_duration_secs(est);
        if !kind.is_cpu_only() {
            builder = builder.model(self.sample_model(total_gpus));
        }
        let schema = builder
            .build()
            .expect("generator always produces valid schemas");
        // Guard against the codegen bug documented in the workspace
        // Cargo.toml: a miscompilation here would silently corrupt every
        // downstream experiment, so fail loudly instead.
        assert!(
            schema.workers == 1 || schema.resources.gpus == GPUS_PER_NODE,
            "gang shape corrupted: workers={} res={} (total={total_gpus} w={workers} per={per_worker_gpus})",
            schema.workers,
            schema.resources
        );
        // A slice of jobs gets killed by its user — sometimes while still
        // queued, sometimes mid-run.
        let cancel_after_secs = if dist::coin(&mut self.shape_rng, self.params.cancel_fraction) {
            Some(service * dist::uniform(&mut self.shape_rng, 0.05, 1.2))
        } else {
            None
        };
        TraceRecord {
            submit_secs: t,
            schema,
            service_secs: service,
            cancel_after_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TaskKind;
    use rand::RngCore;

    /// Draws `n` u64s from an rng — helper for determinism tests.
    fn drain(rng: &mut DetRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.next_u64()).collect()
    }

    fn day_trace(seed: u64) -> Trace {
        TraceGenerator::new(GenParams::default(), seed).generate_days(2.0)
    }

    #[test]
    fn deterministic_for_seed() {
        let a = day_trace(11);
        let b = day_trace(11);
        assert_eq!(a, b);
        let c = day_trace(12);
        assert_ne!(a, c);
    }

    #[test]
    fn volume_is_plausible() {
        let t = day_trace(1);
        // Peak 40/h with diurnal+weekday shaping: expect roughly 0.5-0.9 of
        // peak*48h = 1920; sanity band is generous.
        assert!(t.len() > 600, "too few jobs: {}", t.len());
        assert!(t.len() < 1920, "too many jobs: {}", t.len());
    }

    #[test]
    fn all_schemas_valid_and_sorted() {
        let t = day_trace(2);
        let mut last = 0.0;
        for r in t.records() {
            assert!(r.submit_secs >= last);
            last = r.submit_secs;
            r.schema.validate().expect("generated schema valid");
            assert!(r.service_secs >= 60.0);
            assert!(r.service_secs <= 7.0 * 86_400.0);
        }
    }

    #[test]
    fn gpu_demand_is_power_of_two_dominated_by_singles() {
        let t = day_trace(3);
        let gpu_jobs: Vec<u32> = t
            .records()
            .iter()
            .filter(|r| !r.schema.kind.is_cpu_only())
            .map(|r| r.schema.total_gpus())
            .collect();
        assert!(gpu_jobs.iter().all(|g| GPU_COUNTS.contains(g)));
        let singles = gpu_jobs.iter().filter(|&&g| g == 1).count() as f64;
        assert!(singles / gpu_jobs.len() as f64 > 0.5);
    }

    #[test]
    fn durations_heavy_tailed() {
        let t = day_trace(4);
        let stats = t.stats();
        // Mean far above median is the heavy-tail signature.
        assert!(stats.duration_summary.mean() > 1.5 * stats.duration_summary.p50());
    }

    #[test]
    fn diurnal_rate_shape() {
        let g = TraceGenerator::new(GenParams::default(), 5);
        let afternoon = g.relative_rate(15.0 * 3600.0);
        let night = g.relative_rate(3.0 * 3600.0);
        assert!(afternoon > 0.99);
        assert!(night < 0.5);
        // Weekend damping (day 5 = Saturday).
        let sat_noon = g.relative_rate((5.0 * 24.0 + 15.0) * 3600.0);
        assert!(sat_noon < afternoon);
    }

    #[test]
    fn group_activity_is_skewed() {
        let t = day_trace(6);
        let mut counts = vec![0usize; 8];
        for r in t.records() {
            counts[r.schema.group.index()] += 1;
        }
        assert!(counts[0] > counts[7] * 3, "counts {counts:?}");
    }

    #[test]
    fn kind_mix_matches_fractions() {
        let t = day_trace(7);
        let n = t.len() as f64;
        let interactive = t
            .records()
            .iter()
            .filter(|r| r.schema.kind == TaskKind::Interactive)
            .count() as f64;
        assert!((interactive / n - 0.25).abs() < 0.08);
    }

    #[test]
    fn load_factor_scales_volume() {
        let base = day_trace(8).len() as f64;
        let heavy = TraceGenerator::new(GenParams::default().with_load_factor(2.0), 8)
            .generate_days(2.0)
            .len() as f64;
        let ratio = heavy / base;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn multi_node_fraction_knob() {
        let params = GenParams::default().with_multi_node_fraction(0.5);
        let t = TraceGenerator::new(params, 9).generate_days(2.0);
        let training: Vec<&TraceRecord> = t
            .records()
            .iter()
            .filter(|r| matches!(r.schema.kind, TaskKind::Training | TaskKind::Inference))
            .collect();
        let multi = training
            .iter()
            .filter(|r| r.schema.total_gpus() >= 16)
            .count() as f64;
        let frac = multi / training.len() as f64;
        assert!((0.35..0.65).contains(&frac), "frac {frac}");
    }

    #[test]
    fn multi_worker_jobs_split_by_node() {
        let t = day_trace(10);
        for r in t.records() {
            if r.schema.workers > 1 {
                assert_eq!(r.schema.resources.gpus, GPUS_PER_NODE);
            }
        }
    }

    #[test]
    fn cancellations_match_fraction() {
        let t = day_trace(12);
        let cancelled = t
            .records()
            .iter()
            .filter(|r| r.cancel_after_secs.is_some())
            .count() as f64;
        let frac = cancelled / t.len() as f64;
        assert!((frac - 0.06).abs() < 0.03, "fraction {frac}");
        for r in t.records() {
            if let Some(after) = r.cancel_after_secs {
                assert!(after > 0.0);
            }
        }
    }

    #[test]
    fn rng_streams_are_separate() {
        let seeds = SeedStream::new(99);
        let mut a = seeds.stream("trace-arrivals");
        let mut s = seeds.stream("trace-shape");
        assert_ne!(drain(&mut a, 4), drain(&mut s, 4));
    }
}
