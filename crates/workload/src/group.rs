//! Research groups: the tenants sharing the campus cluster.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a research group (tenant). Dense, assigned by the roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(u32);

impl GroupId {
    /// Dense index of this group.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a group id from a raw index (for traces and tests).
    pub fn from_index(index: usize) -> Self {
        GroupId(u32::try_from(index).expect("group index fits in u32"))
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

/// The set of groups sharing a cluster, with their GPU quotas and activity
/// weights.
///
/// Quotas are expressed in GPUs and are what the quota scheduling policy
/// guarantees; activity weights drive how much load the trace generator
/// attributes to each group (campus usage is heavily skewed: a few labs
/// generate most jobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupRoster {
    names: Vec<String>,
    quotas: Vec<u32>,
    weights: Vec<f64>,
}

impl GroupRoster {
    /// Creates a roster from `(name, gpu_quota, activity_weight)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or any weight is negative.
    pub fn new(groups: Vec<(String, u32, f64)>) -> Self {
        assert!(!groups.is_empty(), "roster needs at least one group");
        assert!(
            groups.iter().all(|&(_, _, w)| w >= 0.0),
            "weights must be nonnegative"
        );
        let mut names = Vec::with_capacity(groups.len());
        let mut quotas = Vec::with_capacity(groups.len());
        let mut weights = Vec::with_capacity(groups.len());
        for (name, quota, weight) in groups {
            names.push(name);
            quotas.push(quota);
            weights.push(weight);
        }
        GroupRoster {
            names,
            quotas,
            weights,
        }
    }

    /// The canonical 8-group campus roster used across the experiment suite.
    ///
    /// Quotas sum to `total_gpus`; activity is Zipf-skewed (the first groups
    /// are the heavy labs). Quota split mirrors activity so the borrowing
    /// experiments (F2) have both over- and under-subscribed groups.
    pub fn campus_default(total_gpus: u32) -> Self {
        // Zipf(1.0)-ish weights over 8 groups.
        let raw: Vec<f64> = (1..=8).map(|i| 1.0 / i as f64).collect();
        let sum: f64 = raw.iter().sum();
        let mut quotas: Vec<u32> = raw
            .iter()
            .map(|w| ((w / sum) * f64::from(total_gpus)).floor() as u32)
            .collect();
        // Hand the rounding remainder to the largest group.
        let assigned: u32 = quotas.iter().sum();
        quotas[0] += total_gpus - assigned;
        let groups = (0..8)
            .map(|i| (format!("lab{i}"), quotas[i], raw[i]))
            .collect();
        GroupRoster::new(groups)
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the roster has no groups (never true for constructed rosters).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over group ids.
    pub fn ids(&self) -> impl Iterator<Item = GroupId> {
        (0..self.names.len()).map(GroupId::from_index)
    }

    /// Name of a group.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in this roster.
    pub fn name(&self, id: GroupId) -> &str {
        &self.names[id.index()]
    }

    /// GPU quota of a group.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in this roster.
    pub fn quota(&self, id: GroupId) -> u32 {
        self.quotas[id.index()]
    }

    /// Activity weight of a group (relative job-generation rate).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in this roster.
    pub fn weight(&self, id: GroupId) -> f64 {
        self.weights[id.index()]
    }

    /// All activity weights, indexed by group.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of all quotas.
    pub fn total_quota(&self) -> u32 {
        self.quotas.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_default_partitions_quota() {
        let r = GroupRoster::campus_default(256);
        assert_eq!(r.len(), 8);
        assert_eq!(r.total_quota(), 256);
        // Heaviest group first.
        assert!(r.quota(GroupId::from_index(0)) > r.quota(GroupId::from_index(7)));
        assert!(r.weight(GroupId::from_index(0)) > r.weight(GroupId::from_index(7)));
    }

    #[test]
    fn roster_lookup() {
        let r = GroupRoster::new(vec![
            ("vision".to_owned(), 16, 2.0),
            ("nlp".to_owned(), 8, 1.0),
        ]);
        let ids: Vec<GroupId> = r.ids().collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(r.name(ids[0]), "vision");
        assert_eq!(r.quota(ids[1]), 8);
        assert_eq!(r.weights(), &[2.0, 1.0]);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_roster_rejected() {
        let _ = GroupRoster::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_weight_rejected() {
        let _ = GroupRoster::new(vec![("x".to_owned(), 1, -1.0)]);
    }
}
