//! The self-contained task schema (paper §3.1, Task Schema Layer).

use serde::{Deserialize, Serialize};
use std::fmt;

use tacc_cluster::ResourceVec;

use crate::group::GroupId;

/// Quality-of-service class of a task.
///
/// `Guaranteed` tasks run within their group's quota and are never
/// preempted; `BestEffort` tasks may use idle capacity borrowed from other
/// groups and can be preempted when the owner reclaims it. This is the
/// mechanism behind the quota-borrowing experiments (F2/F5).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum QosClass {
    /// Runs within the group quota; not preemptible.
    #[default]
    Guaranteed,
    /// Runs on borrowed/idle capacity; preemptible on reclaim.
    BestEffort,
}

impl QosClass {
    /// Whether the scheduler may preempt tasks of this class.
    pub fn preemptible(self) -> bool {
        matches!(self, QosClass::BestEffort)
    }
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosClass::Guaranteed => f.write_str("guaranteed"),
            QosClass::BestEffort => f.write_str("best-effort"),
        }
    }
}

/// What kind of application a task is; drives duration/demand shape in the
/// generator and runtime selection in the execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Batch DNN training (the dominant class).
    Training,
    /// Interactive development session (notebooks, debugging).
    Interactive,
    /// Batch inference / evaluation sweeps.
    Inference,
    /// CPU-only preprocessing or analysis.
    CpuBatch,
}

impl TaskKind {
    /// True for tasks that request no GPUs.
    pub fn is_cpu_only(self) -> bool {
        matches!(self, TaskKind::CpuBatch)
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskKind::Training => "training",
            TaskKind::Interactive => "interactive",
            TaskKind::Inference => "inference",
            TaskKind::CpuBatch => "cpu-batch",
        };
        f.write_str(s)
    }
}

/// Which underlying runtime system the user asks the execution layer for.
///
/// Per the paper, the choice "could be either indicated in the user's task
/// description or dynamically determined by the other layers" — `Auto`
/// defers to the execution layer's selection logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RuntimePreference {
    /// Let the platform choose (the default and common case).
    #[default]
    Auto,
    /// All-reduce based data-parallel training (DDP-style).
    AllReduce,
    /// Parameter-server based training.
    ParameterServer,
    /// In-network aggregation on programmable switches (ATP-style): the
    /// rack switch sums gradients at line rate. Only available to gangs
    /// that fit in one rack; the execution layer falls back to all-reduce
    /// otherwise.
    InNetworkAggregation,
    /// Plain single-process execution.
    SingleProcess,
}

/// The runtime environment a task needs: container image, dependencies and
/// dataset. Sizes are carried so the compiler layer can model provisioning
/// cost and delta caching (experiment T3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeEnv {
    /// Base image name (e.g. `pytorch-2.1-cuda12`).
    pub image: String,
    /// Third-party dependency bundles, as (name, size in MiB).
    pub dependencies: Vec<(String, u32)>,
    /// Input dataset reference and size in MiB (0 for none).
    pub dataset: Option<(String, u32)>,
    /// User code size in MiB (almost always tiny; kept for cache math).
    pub code_mb: u32,
}

impl RuntimeEnv {
    /// A minimal environment with just an image and small user code.
    pub fn image_only(image: &str) -> Self {
        RuntimeEnv {
            image: image.to_owned(),
            dependencies: Vec::new(),
            dataset: None,
            code_mb: 5,
        }
    }

    /// Total bytes the compiler would have to materialize with no cache, in MiB.
    pub fn total_mb(&self) -> u64 {
        let deps: u64 = self.dependencies.iter().map(|&(_, s)| u64::from(s)).sum();
        let data: u64 = self
            .dataset
            .as_ref()
            .map(|&(_, s)| u64::from(s))
            .unwrap_or(0);
        deps + data + u64::from(self.code_mb)
    }
}

/// Communication-relevant profile of the model a training task runs.
///
/// The execution layer's iteration-time model (experiment F6) needs the
/// parameter size (bytes moved per all-reduce round) and the per-GPU compute
/// time per iteration on the reference GPU (V100).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model parameters in MiB (gradient volume per synchronization round).
    pub param_mb: f64,
    /// Compute time of one iteration on one reference GPU, in seconds.
    pub compute_secs_per_iter: f64,
}

impl ModelProfile {
    /// A ResNet-50-like profile: ~100 MiB of parameters, short iterations.
    pub fn resnet50_like() -> Self {
        ModelProfile {
            param_mb: 100.0,
            compute_secs_per_iter: 0.3,
        }
    }

    /// A GPT-2-like profile: ~1.5 GiB of parameters, long iterations.
    pub fn gpt2_like() -> Self {
        ModelProfile {
            param_mb: 1500.0,
            compute_secs_per_iter: 1.2,
        }
    }

    /// A small-CNN profile used by interactive/debug sessions.
    pub fn small_cnn() -> Self {
        ModelProfile {
            param_mb: 20.0,
            compute_secs_per_iter: 0.08,
        }
    }

    /// A BERT-large-like profile: ~1.3 GiB of parameters, medium
    /// iterations — the classic NLP fine-tuning workhorse.
    pub fn bert_large_like() -> Self {
        ModelProfile {
            param_mb: 1_300.0,
            compute_secs_per_iter: 0.6,
        }
    }

    /// A ViT-like profile: vision transformer, ~350 MiB of parameters.
    pub fn vit_like() -> Self {
        ModelProfile {
            param_mb: 350.0,
            compute_secs_per_iter: 0.45,
        }
    }

    /// A 7B-LLM-like profile under tensor/data hybrid parallelism:
    /// gradients sharded to ~3.5 GiB per data-parallel rank group, long
    /// iterations. Stress-tests the communication models.
    pub fn llm_7b_like() -> Self {
        ModelProfile {
            param_mb: 3_500.0,
            compute_secs_per_iter: 2.5,
        }
    }
}

/// The self-contained description of a task (paper §3.1).
///
/// "All tasks submitted to TACC should be described with this
/// self-contained, unified task schema, which guarantees consistent and
/// reproducible task execution." Every field group called out by the paper
/// is present: compute/network resources and QoS; application code,
/// dependencies and input dataset; runtime environment and provisioning
/// configuration.
///
/// Construct with [`TaskSchema::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSchema {
    /// Human-readable task name.
    pub name: String,
    /// Submitting research group (tenant).
    pub group: GroupId,
    /// Number of parallel workers (gang size). 1 for single-process tasks.
    pub workers: u32,
    /// Resources **per worker**.
    pub resources: ResourceVec,
    /// QoS class (quota vs. borrowed capacity).
    pub qos: QosClass,
    /// Application kind.
    pub kind: TaskKind,
    /// Requested runtime system.
    pub runtime: RuntimePreference,
    /// Runtime environment (image, deps, dataset).
    pub env: RuntimeEnv,
    /// The user's estimate of run duration in seconds (scheduling hint for
    /// SJF/backfill; real traces show this is noisy, and the generator
    /// models that noise).
    pub est_duration_secs: f64,
    /// Communication profile for distributed training tasks.
    pub model: Option<ModelProfile>,
    /// Whether the scheduler may start this task with fewer workers than
    /// requested (Pollux-style elastic admission): a shrunken gang runs
    /// proportionally longer. Only meaningful for data-parallel training.
    #[serde(default)]
    pub elastic: bool,
}

impl TaskSchema {
    /// Starts building a schema for a named task owned by `group`.
    pub fn builder(name: &str, group: GroupId) -> TaskSchemaBuilder {
        TaskSchemaBuilder {
            schema: TaskSchema {
                name: name.to_owned(),
                group,
                workers: 1,
                resources: ResourceVec::gpus_only(1),
                qos: QosClass::Guaranteed,
                kind: TaskKind::Training,
                runtime: RuntimePreference::Auto,
                env: RuntimeEnv::image_only("pytorch-2.1-cuda12"),
                est_duration_secs: 3600.0,
                model: Some(ModelProfile::resnet50_like()),
                elastic: false,
            },
        }
    }

    /// Total resources across all workers.
    pub fn total_resources(&self) -> ResourceVec {
        let mut total = ResourceVec::ZERO;
        for _ in 0..self.workers {
            total += self.resources;
        }
        total
    }

    /// Total GPUs across all workers.
    pub fn total_gpus(&self) -> u32 {
        self.resources.gpus * self.workers
    }

    /// Whether this is a multi-worker (gang-scheduled) task.
    pub fn is_distributed(&self) -> bool {
        self.workers > 1
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found:
    /// zero workers, zero resources for a non-CPU task, or a non-positive
    /// duration estimate.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("task must have at least one worker".to_owned());
        }
        if self.resources.is_zero() {
            return Err("task requests no resources".to_owned());
        }
        if self.kind.is_cpu_only() && self.resources.gpus > 0 {
            return Err("cpu-batch task must not request GPUs".to_owned());
        }
        if !self.kind.is_cpu_only() && self.resources.gpus == 0 {
            return Err(format!("{} task must request at least one GPU", self.kind));
        }
        if !(self.est_duration_secs > 0.0 && self.est_duration_secs.is_finite()) {
            return Err("estimated duration must be positive".to_owned());
        }
        if self.is_distributed() && self.model.is_none() && self.kind == TaskKind::Training {
            return Err("distributed training task needs a model profile".to_owned());
        }
        Ok(())
    }
}

/// Builder for [`TaskSchema`] (see [C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#builders-enable-construction-of-complex-values-c-builder
#[derive(Debug, Clone)]
pub struct TaskSchemaBuilder {
    schema: TaskSchema,
}

impl TaskSchemaBuilder {
    /// Sets the gang size (number of parallel workers).
    pub fn workers(mut self, workers: u32) -> Self {
        self.schema.workers = workers;
        self
    }

    /// Sets per-worker resources.
    pub fn resources(mut self, resources: ResourceVec) -> Self {
        self.schema.resources = resources;
        self
    }

    /// Sets the QoS class.
    pub fn qos(mut self, qos: QosClass) -> Self {
        self.schema.qos = qos;
        self
    }

    /// Sets the task kind.
    pub fn kind(mut self, kind: TaskKind) -> Self {
        self.schema.kind = kind;
        if kind.is_cpu_only() {
            self.schema.resources = ResourceVec::cpu_only(
                self.schema.resources.cpu_cores.max(1),
                self.schema.resources.mem_gb.max(1),
            );
            self.schema.model = None;
        }
        self
    }

    /// Sets the runtime preference.
    pub fn runtime(mut self, runtime: RuntimePreference) -> Self {
        self.schema.runtime = runtime;
        self
    }

    /// Sets the runtime environment.
    pub fn env(mut self, env: RuntimeEnv) -> Self {
        self.schema.env = env;
        self
    }

    /// Sets the user's duration estimate in seconds.
    pub fn est_duration_secs(mut self, secs: f64) -> Self {
        self.schema.est_duration_secs = secs;
        self
    }

    /// Sets the model communication profile.
    pub fn model(mut self, model: ModelProfile) -> Self {
        self.schema.model = Some(model);
        self
    }

    /// Marks the task elastic: the scheduler may admit it with a smaller
    /// gang (halving workers down to 1) when the full gang does not fit.
    pub fn elastic(mut self, elastic: bool) -> Self {
        self.schema.elastic = elastic;
        self
    }

    /// Finishes and validates the schema.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSchema::validate`] failures.
    pub fn build(self) -> Result<TaskSchema, String> {
        self.schema.validate()?;
        Ok(self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TaskSchemaBuilder {
        TaskSchema::builder("unit", GroupId::from_index(0))
    }

    #[test]
    fn builder_defaults_are_valid() {
        let s = base().build().expect("defaults valid");
        assert_eq!(s.workers, 1);
        assert_eq!(s.total_gpus(), 1);
        assert!(!s.is_distributed());
        assert_eq!(s.qos, QosClass::Guaranteed);
    }

    #[test]
    fn total_resources_scale_with_workers() {
        let s = base()
            .workers(4)
            .resources(ResourceVec::gpus_only(2))
            .build()
            .expect("valid");
        assert_eq!(s.total_gpus(), 8);
        assert_eq!(s.total_resources().cpu_cores, 4 * 16);
        assert!(s.is_distributed());
    }

    #[test]
    fn validation_rejects_bad_schemas() {
        assert!(base().workers(0).build().is_err());
        assert!(base().resources(ResourceVec::ZERO).build().is_err());
        assert!(base().est_duration_secs(0.0).build().is_err());
        assert!(base().est_duration_secs(f64::NAN).build().is_err());
    }

    #[test]
    fn cpu_kind_strips_gpus() {
        let s = base().kind(TaskKind::CpuBatch).build().expect("valid");
        assert_eq!(s.resources.gpus, 0);
        assert!(s.model.is_none());
        assert!(s.kind.is_cpu_only());
    }

    #[test]
    fn qos_preemptibility() {
        assert!(!QosClass::Guaranteed.preemptible());
        assert!(QosClass::BestEffort.preemptible());
    }

    #[test]
    fn env_total_size() {
        let env = RuntimeEnv {
            image: "img".to_owned(),
            dependencies: vec![("torch".to_owned(), 800), ("cuda".to_owned(), 2000)],
            dataset: Some(("imagenet-subset".to_owned(), 5000)),
            code_mb: 5,
        };
        assert_eq!(env.total_mb(), 7805);
        assert_eq!(RuntimeEnv::image_only("x").total_mb(), 5);
    }

    #[test]
    fn schema_serde_round_trip() {
        if !crate::serde_json_functional() {
            return; // typecheck-only serde_json stub: nothing to round-trip
        }
        let s = base()
            .workers(2)
            .qos(QosClass::BestEffort)
            .model(ModelProfile::gpt2_like())
            .build()
            .expect("valid");
        let json = serde_json::to_string(&s).expect("serializes");
        let back: TaskSchema = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(s, back);
    }
}
