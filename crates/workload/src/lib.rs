//! # tacc-workload
//!
//! Layer 1 of the TACC workflow abstraction — the **task schema** — plus the
//! job model and the synthetic campus trace generator that substitutes for
//! the production traces the paper's evaluation draws on.
//!
//! The paper requires every task submitted to the platform to be described
//! by a *self-contained, unified task schema* covering resources and QoS,
//! code/dependencies/dataset, and runtime environment ([`TaskSchema`]).
//! Schemas are serializable ([`serde`]), which is what makes task execution
//! reproducible across cluster instances.
//!
//! On top of the schema this crate defines:
//!
//! * [`Job`] — a submitted schema instance with its lifecycle state machine
//!   (pending → queued → running → completed/failed, with preemption loops);
//! * [`GroupId`] / [`GroupRoster`] — the research groups (tenants) sharing
//!   the cluster;
//! * [`TraceGenerator`] / [`Trace`] — a calibrated synthetic trace: diurnal
//!   Poisson arrivals, heavy-tailed log-normal durations, power-of-two GPU
//!   demands and skewed group activity, matching the published shape of
//!   shared-GPU-cluster traces.
//!
//! ## Example
//!
//! ```
//! use tacc_workload::{TraceGenerator, GenParams};
//!
//! let trace = TraceGenerator::new(GenParams::default(), 42).generate_days(1.0);
//! assert!(!trace.is_empty());
//! // Every record carries a full, self-contained task schema.
//! let rec = &trace.records()[0];
//! assert!(rec.schema.resources.gpus >= 1 || rec.schema.kind.is_cpu_only());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod group;
mod job;
mod schema;
mod trace;

pub use gen::{GenParams, TraceGenerator};
pub use group::{GroupId, GroupRoster};
pub use job::{IllegalTransition, Job, JobEvent, JobEventKind, JobId, JobState, TRANSITION_MATRIX};
pub use schema::{
    ModelProfile, QosClass, RuntimeEnv, RuntimePreference, TaskKind, TaskSchema, TaskSchemaBuilder,
};
pub use trace::{Trace, TraceRecord, TraceStats};

/// True when the linked `serde_json` implementation is functional.
///
/// Offline build sandboxes substitute a typecheck-only `serde_json` stub
/// whose `to_string`/`from_str` panic with `unimplemented!`. JSON
/// round-trip tests across the workspace probe this once per process
/// (the result is cached) and self-skip under the stub, so `cargo test`
/// is green both online and in the stubbed sandbox.
pub fn serde_json_functional() -> bool {
    use std::sync::OnceLock;
    static FUNCTIONAL: OnceLock<bool> = OnceLock::new();
    *FUNCTIONAL.get_or_init(|| {
        std::panic::catch_unwind(|| serde_json::to_string(&0u8).is_ok()).unwrap_or(false)
    })
}

// Traces and rosters are shared by reference across the experiment
// runner's worker threads; this guard keeps them `Send + Sync`.
const _: () = {
    const fn shareable<T: Send + Sync>() {}
    shareable::<Trace>();
    shareable::<TaskSchema>();
    shareable::<GroupRoster>();
    shareable::<TraceGenerator>();
};
