//! Property tests for the job lifecycle transition matrix.
//!
//! The matrix is small enough to enumerate exhaustively, so the "random"
//! coverage here is belt-and-braces: a deterministic xorshift generator
//! (no external proptest dependency) drives long event sequences and
//! asserts the machine can never leave the legal state graph, while the
//! exhaustive checks pin the matrix to the doc-comment diagram in
//! `src/job.rs` and to the structural properties the platform relies on.

use tacc_workload::{
    GroupId, Job, JobEvent, JobEventKind, JobId, JobState, TaskSchema, TRANSITION_MATRIX,
};

/// Deterministic xorshift64* PRNG — reproducible without extra crates.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[(self.next() % items.len() as u64) as usize]
    }
}

/// A representative event for each kind (payloads don't affect the matrix).
fn sample_event(kind: JobEventKind) -> JobEvent {
    match kind {
        JobEventKind::Submit => JobEvent::Submit { at_secs: 0.0 },
        JobEventKind::Enqueue => JobEvent::Enqueue,
        JobEventKind::Start => JobEvent::Start { at_secs: 1.0 },
        JobEventKind::Preempt => JobEvent::Preempt {
            at_secs: 2.0,
            progress_secs: 1.0,
            lost_secs: 0.0,
        },
        JobEventKind::Interrupt => JobEvent::Interrupt {
            at_secs: 2.0,
            progress_secs: 1.0,
            lost_secs: 0.5,
        },
        JobEventKind::Reject => JobEvent::Reject { at_secs: 1.0 },
        JobEventKind::Complete => JobEvent::Complete { at_secs: 3.0 },
        JobEventKind::Fail => JobEvent::Fail {
            at_secs: 3.0,
            progress_secs: 1.0,
        },
        JobEventKind::Cancel => JobEvent::Cancel { at_secs: 3.0 },
    }
}

fn matrix_edge(from: JobState, kind: JobEventKind) -> Option<JobState> {
    TRANSITION_MATRIX
        .iter()
        .find(|(f, k, _)| *f == from && *k == kind)
        .map(|(_, _, to)| *to)
}

/// Random event sequences can never reach a state outside the legal
/// graph: every accepted transition is a matrix edge, every rejection
/// leaves the state untouched, and the error names the exact attempt.
#[test]
fn random_sequences_never_leave_the_matrix() {
    let mut rng = XorShift(0x5EED_CAFE_F00D_0001);
    for _ in 0..2_000 {
        let mut state = JobState::Submitted;
        for _ in 0..64 {
            let kind = rng.pick(&JobEventKind::ALL);
            let event = sample_event(kind);
            match state.transition(&event) {
                Ok(next) => {
                    assert_eq!(
                        matrix_edge(state, kind),
                        Some(next),
                        "accepted transition {state} --{kind}--> {next} is not a matrix edge"
                    );
                    state = next;
                }
                Err(err) => {
                    assert_eq!(matrix_edge(state, kind), None);
                    assert_eq!(err.from, state);
                    assert_eq!(err.event, kind);
                }
            }
        }
    }
}

/// Terminal states are absorbing: no event of any kind leaves them.
#[test]
fn terminal_states_are_absorbing() {
    for state in JobState::ALL {
        if !state.is_terminal() {
            continue;
        }
        for kind in JobEventKind::ALL {
            assert!(
                state.transition(&sample_event(kind)).is_err(),
                "terminal {state} must absorb {kind}"
            );
        }
        assert!(
            !TRANSITION_MATRIX.iter().any(|(f, _, _)| *f == state),
            "matrix must have no outgoing edges from terminal {state}"
        );
    }
}

/// `Cancelled` is reachable in one step from every non-terminal state —
/// a user kill must never be refused while the job is live.
#[test]
fn cancelled_reachable_from_every_non_terminal() {
    for state in JobState::ALL {
        if state.is_terminal() {
            continue;
        }
        assert_eq!(
            state.transition(&sample_event(JobEventKind::Cancel)),
            Ok(JobState::Cancelled),
            "cancel must be legal from {state}"
        );
    }
}

/// Every non-terminal state has a path to some terminal state (no live
/// state can trap a job forever).
#[test]
fn no_live_state_is_a_trap() {
    for start in JobState::ALL {
        let mut reachable = vec![start];
        let mut frontier = vec![start];
        while let Some(s) = frontier.pop() {
            for (f, _, to) in TRANSITION_MATRIX {
                if *f == s && !reachable.contains(to) {
                    reachable.push(*to);
                    frontier.push(*to);
                }
            }
        }
        assert!(
            reachable.iter().any(|s| s.is_terminal()),
            "{start} cannot reach any terminal state"
        );
    }
}

/// The doc-comment diagram in `src/job.rs` is parsed and compared
/// edge-for-edge against [`TRANSITION_MATRIX`]: the documentation can
/// not drift from the code.
#[test]
fn matrix_agrees_with_doc_diagram() {
    let source = include_str!("../src/job.rs");
    let mut doc_edges: Vec<(JobState, JobEventKind, JobState)> = Vec::new();
    let mut in_diagram = false;
    for line in source.lines() {
        let line = line.trim_start_matches("///").trim();
        if line == "```text" {
            in_diagram = true;
            continue;
        }
        if in_diagram && line == "```" {
            break;
        }
        if !in_diagram || line.is_empty() {
            continue;
        }
        // `Submitted ──enqueue──→ Queued`: strip the arrow glyphs and the
        // tokens fall out as [from, event, to].
        let cleaned: String = line
            .chars()
            .map(|c| if c == '─' || c == '→' { ' ' } else { c })
            .collect();
        let tokens: Vec<&str> = cleaned.split_whitespace().collect();
        assert_eq!(tokens.len(), 3, "unparsable diagram line: {line}");
        let event = parse_event(tokens[1]);
        let to = parse_state(tokens[2]);
        for from in tokens[0].split('|') {
            doc_edges.push((parse_state(from), event, to));
        }
    }
    assert!(in_diagram, "no ```text diagram found in src/job.rs");

    let mut matrix: Vec<_> = TRANSITION_MATRIX.to_vec();
    let key = |e: &(JobState, JobEventKind, JobState)| format!("{}|{}|{}", e.0, e.1, e.2);
    doc_edges.sort_by_key(key);
    matrix.sort_by_key(key);
    assert_eq!(
        doc_edges, matrix,
        "doc diagram and TRANSITION_MATRIX disagree"
    );
}

fn parse_state(name: &str) -> JobState {
    JobState::ALL
        .into_iter()
        .find(|s| format!("{s:?}") == name)
        .unwrap_or_else(|| panic!("unknown state in diagram: {name}"))
}

fn parse_event(name: &str) -> JobEventKind {
    JobEventKind::ALL
        .into_iter()
        .find(|k| k.to_string() == name)
        .unwrap_or_else(|| panic!("unknown event in diagram: {name}"))
}

/// `Job::apply_event` refuses illegal events without touching any field:
/// the state, counters, and timings after a rejection are bit-identical
/// to before.
#[test]
fn rejected_events_leave_the_job_untouched() {
    let schema = TaskSchema::builder("prop", GroupId::from_index(0))
        .resources(tacc_cluster::ResourceVec::gpus_only(1))
        .est_duration_secs(600.0)
        .build()
        .expect("valid");
    let mut rng = XorShift(0xBAD_5EED);
    for _ in 0..200 {
        let mut job = Job::new(JobId::from_value(1), schema.clone(), 0.0, 600.0);
        for _ in 0..48 {
            let kind = rng.pick(&JobEventKind::ALL);
            let before = (
                job.state(),
                job.preemptions(),
                job.restarts(),
                job.remaining_secs(),
                job.wasted_secs(),
                job.finish_secs(),
            );
            match job.apply_event(sample_event(kind)) {
                Ok(next) => assert_eq!(job.state(), next),
                Err(err) => {
                    let after = (
                        job.state(),
                        job.preemptions(),
                        job.restarts(),
                        job.remaining_secs(),
                        job.wasted_secs(),
                        job.finish_secs(),
                    );
                    assert_eq!(before, after, "rejected {err} must not mutate the job");
                }
            }
        }
    }
}
