//! Cluster state: construction, leasing and fragmentation accounting.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gpu::GpuModel;
use crate::node::{Node, NodeId};
use crate::resources::ResourceVec;
use crate::topology::{LinkSpeeds, RackId, Topology};

/// Identifier of a resource lease issued by [`Cluster::allocate`].
///
/// The value is a generational index into the cluster's lease arena: the
/// low 32 bits are the slot, the high 32 bits the slot's generation at
/// grant time. A released slot bumps its generation, so a stale id can
/// never resolve to a lease that reused the slot (classic ABA protection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LeaseId(u64);

impl LeaseId {
    /// Raw value, for logging.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Constructs an arbitrary lease id for unit tests in this workspace.
    #[doc(hidden)]
    pub fn for_tests(v: u64) -> Self {
        LeaseId(v)
    }

    pub(crate) fn compose(slot: u32, generation: u32) -> Self {
        LeaseId(u64::from(generation) << 32 | u64::from(slot))
    }

    pub(crate) fn slot(self) -> usize {
        (self.0 & u64::from(u32::MAX)) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease{}", self.0)
    }
}

/// A granted multi-node allocation: which nodes hold how much, for whom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    id: LeaseId,
    owner: u64,
    shares: Vec<(NodeId, ResourceVec)>,
}

impl Lease {
    /// The lease identifier (pass to [`Cluster::release`]).
    pub fn id(&self) -> LeaseId {
        self.id
    }

    /// The opaque owner tag supplied at allocation (the platform uses job ids).
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Per-node shares of the allocation.
    pub fn shares(&self) -> &[(NodeId, ResourceVec)] {
        &self.shares
    }

    /// The nodes this lease spans (in share order).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.shares.iter().map(|&(n, _)| n).collect()
    }

    /// Total resources across all shares.
    pub fn total(&self) -> ResourceVec {
        self.shares.iter().map(|&(_, r)| r).sum()
    }
}

/// Errors returned by cluster allocation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The referenced node does not exist in this cluster.
    UnknownNode(NodeId),
    /// A requested share does not fit in the node's free resources.
    InsufficientResources {
        /// The node that could not satisfy the share.
        node: NodeId,
    },
    /// The lease is not (or no longer) active.
    UnknownLease(LeaseId),
    /// An allocation request contained no shares.
    EmptyRequest,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::InsufficientResources { node } => {
                write!(f, "insufficient free resources on {node}")
            }
            ClusterError::UnknownLease(l) => write!(f, "unknown lease {l}"),
            ClusterError::EmptyRequest => write!(f, "allocation request has no shares"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Declarative description of a cluster to build: racks of nodes grouped in
/// homogeneous pools.
///
/// # Example
///
/// ```
/// use tacc_cluster::{ClusterSpec, GpuModel, LinkSpeeds};
/// let spec = ClusterSpec::builder()
///     .pool(GpuModel::A100, 2, 4, 8) // 2 racks x 4 nodes x 8 GPUs
///     .pool(GpuModel::Rtx3090, 1, 8, 4)
///     .speeds(LinkSpeeds::campus_default())
///     .build();
/// assert_eq!(spec.total_nodes(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pools: Vec<PoolSpec>,
    speeds: LinkSpeeds,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PoolSpec {
    model: GpuModel,
    racks: u32,
    nodes_per_rack: u32,
    gpus_per_node: u32,
}

impl ClusterSpec {
    /// Starts building a spec.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder {
            pools: Vec::new(),
            speeds: LinkSpeeds::campus_default(),
        }
    }

    /// A homogeneous cluster: `racks` × `nodes_per_rack` nodes of `model`
    /// with `gpus_per_node` GPUs each, default campus link speeds.
    pub fn uniform(racks: u32, nodes_per_rack: u32, model: GpuModel, gpus_per_node: u32) -> Self {
        ClusterSpec::builder()
            .pool(model, racks, nodes_per_rack, gpus_per_node)
            .build()
    }

    /// Total node count across pools.
    pub fn total_nodes(&self) -> usize {
        self.pools
            .iter()
            .map(|p| (p.racks * p.nodes_per_rack) as usize)
            .sum()
    }

    /// Total GPU count across pools.
    pub fn total_gpus(&self) -> u32 {
        self.pools
            .iter()
            .map(|p| p.racks * p.nodes_per_rack * p.gpus_per_node)
            .sum()
    }
}

/// Builder for [`ClusterSpec`].
#[derive(Debug, Clone)]
pub struct ClusterSpecBuilder {
    pools: Vec<PoolSpec>,
    speeds: LinkSpeeds,
}

impl ClusterSpecBuilder {
    /// Adds a homogeneous pool: `racks` racks of `nodes_per_rack` nodes,
    /// each with `gpus_per_node` GPUs of `model`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn pool(
        mut self,
        model: GpuModel,
        racks: u32,
        nodes_per_rack: u32,
        gpus_per_node: u32,
    ) -> Self {
        assert!(
            racks > 0 && nodes_per_rack > 0 && gpus_per_node > 0,
            "pool dimensions must be positive"
        );
        self.pools.push(PoolSpec {
            model,
            racks,
            nodes_per_rack,
            gpus_per_node,
        });
        self
    }

    /// Overrides the link speeds (default: [`LinkSpeeds::campus_default`]).
    pub fn speeds(mut self, speeds: LinkSpeeds) -> Self {
        self.speeds = speeds;
        self
    }

    /// Finishes the spec.
    ///
    /// # Panics
    ///
    /// Panics if no pool was added.
    pub fn build(self) -> ClusterSpec {
        assert!(!self.pools.is_empty(), "cluster needs at least one pool");
        ClusterSpec {
            pools: self.pools,
            speeds: self.speeds,
        }
    }
}

/// A generational slab of active leases — dense slots plus a LIFO free
/// list. Slot indices recycle; generations make recycled ids distinct.
///
/// Single-writer contract: slots change only through
/// [`LeaseArena::insert_with`] and [`LeaseArena::remove`], both called
/// exclusively from [`Cluster::allocate`]/[`Cluster::release`] (enforced
/// by `tacc-lint`'s ownership rules).
#[derive(Debug, Clone, Default)]
struct LeaseArena {
    slots: Vec<LeaseSlot>,
    free: Vec<u32>,
    live: usize,
    /// Fresh slots pushed (the arena grew).
    allocs: u64,
    /// Slots recycled off the free list.
    reuses: u64,
}

#[derive(Debug, Clone)]
struct LeaseSlot {
    generation: u32,
    lease: Option<Lease>,
}

impl LeaseArena {
    /// Claims a slot (recycling the most recently freed one first, so hot
    /// slots stay cache-resident), builds the lease from its new id, and
    /// stores it.
    fn insert_with(&mut self, make: impl FnOnce(LeaseId) -> Lease) -> LeaseId {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.reuses += 1;
                slot
            }
            None => {
                self.allocs += 1;
                self.slots.push(LeaseSlot {
                    generation: 0,
                    lease: None,
                });
                // tacc-lint: allow(panic-surface, reason = "2^32 concurrent leases would exhaust memory long before this narrows; guards the packed slot|generation id layout")
                u32::try_from(self.slots.len() - 1).expect("lease slot fits u32")
            }
        };
        let id = LeaseId::compose(slot, self.slots[slot as usize].generation);
        self.slots[slot as usize].lease = Some(make(id));
        self.live += 1;
        id
    }

    fn get(&self, id: LeaseId) -> Option<&Lease> {
        let slot = self.slots.get(id.slot())?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.lease.as_ref()
    }

    /// Removes the lease, bumps the slot's generation (invalidating the
    /// id), and recycles the slot.
    fn remove(&mut self, id: LeaseId) -> Option<Lease> {
        let slot = self.slots.get_mut(id.slot())?;
        if slot.generation != id.generation() {
            return None;
        }
        let lease = slot.lease.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free
            // tacc-lint: allow(panic-surface, reason = "slot indices were produced by insert_with's own u32 narrowing; re-narrowing a stored id cannot fail")
            .push(u32::try_from(id.slot()).expect("slot fits u32"));
        self.live -= 1;
        Some(lease)
    }

    /// Live leases in slot order (the arena's dense iteration order; grant
    /// order is not reconstructible once slots recycle).
    fn iter(&self) -> impl Iterator<Item = &Lease> {
        self.slots.iter().filter_map(|s| s.lease.as_ref())
    }
}

/// The live, allocatable cluster: nodes, topology and active leases.
///
/// This is the single authority on who holds what; the scheduler proposes
/// placements, but only a successful [`Cluster::allocate`] commits them, and
/// the invariant "sum of leases + free == capacity, per node" is enforced
/// here (checked in tests and by debug assertions).
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    topology: Topology,
    leases: LeaseArena,
    alloc_failures: u64,
    // Incrementally maintained aggregates, updated on every reserve/release
    // (the only paths that change a node's free vector). They answer the
    // scheduler's per-round and per-skip queries in O(1)/O(log n) instead of
    // an O(nodes) scan, and deliberately mirror the historical scan-based
    // semantics: drained nodes still count (draining toggles schedulability,
    // not free capacity).
    total_capacity: ResourceVec,
    free_gpus_total: u32,
    /// Histogram of nodes by free-GPU count (`free gpus -> node count`);
    /// the greatest key is the largest free block.
    free_block_counts: BTreeMap<u32, u32>,
    /// Sorted free-capacity index over *schedulable* nodes, keyed by
    /// `(free gpus, free cpu cores, node index)` — exactly the placement
    /// planner's candidate order, maintained incrementally on every lease
    /// grant/release and drain/undrain so planning never re-collects and
    /// re-sorts the node list.
    free_index: BTreeSet<(u32, u32, u32)>,
    /// Re-index operations applied to `free_index` (deterministic work
    /// counter, CI-gated).
    free_index_updates: u64,
    /// Monotonic mutation counter; see [`Cluster::version`].
    version: u64,
}

impl Cluster {
    /// Materializes a cluster from a spec.
    ///
    /// Nodes are numbered pool by pool, rack by rack, so ids are stable for
    /// a given spec.
    pub fn new(spec: ClusterSpec) -> Self {
        let mut nodes = Vec::with_capacity(spec.total_nodes());
        let mut racks = Vec::with_capacity(spec.total_nodes());
        let mut nvlink = Vec::with_capacity(spec.total_nodes());
        let mut rack_counter: u32 = 0;
        for pool in &spec.pools {
            let has_nvlink = pool.model.spec().has_nvlink;
            for _ in 0..pool.racks {
                let rack = RackId(rack_counter);
                rack_counter += 1;
                for _ in 0..pool.nodes_per_rack {
                    let id = NodeId(u32::try_from(nodes.len()).expect("node count fits u32"));
                    nodes.push(Node::new(id, rack, pool.model, pool.gpus_per_node));
                    racks.push(rack);
                    nvlink.push(has_nvlink);
                }
            }
        }
        let total_capacity = nodes.iter().map(Node::capacity).sum();
        let free_gpus_total = nodes.iter().map(|n| n.free().gpus).sum();
        let mut free_block_counts: BTreeMap<u32, u32> = BTreeMap::new();
        for node in &nodes {
            *free_block_counts.entry(node.free().gpus).or_insert(0) += 1;
        }
        let free_index = nodes
            .iter()
            .map(|n| (n.free().gpus, n.free().cpu_cores, n.id().0))
            .collect();
        Cluster {
            nodes,
            topology: Topology::new(racks, nvlink, spec.speeds),
            leases: LeaseArena::default(),
            alloc_failures: 0,
            total_capacity,
            free_gpus_total,
            free_block_counts,
            free_index,
            free_index_updates: 0,
            version: 0,
        }
    }

    /// Monotonic state-version counter, bumped by every successful mutation
    /// (allocate, release, drain, undrain). Two observations of the *same*
    /// cluster with equal versions saw identical state, so callers may cache
    /// expensive derived state keyed by this value — the scheduler uses it
    /// to reuse its reclaim-feasibility snapshot across an unchanged round.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Re-indexes one node after a reserve/release moved its free vector
    /// from `old` to `new`: the free-GPU histogram, the free-GPU total,
    /// and the sorted free-capacity index (the single write site for all
    /// three — the lint ownership rules pin them here).
    fn note_free_change(&mut self, idx: usize, old: ResourceVec, new: ResourceVec) {
        if old.gpus != new.gpus {
            match self.free_block_counts.get_mut(&old.gpus) {
                Some(count) if *count > 1 => *count -= 1,
                _ => {
                    self.free_block_counts.remove(&old.gpus);
                }
            }
            *self.free_block_counts.entry(new.gpus).or_insert(0) += 1;
            self.free_gpus_total = self.free_gpus_total + new.gpus - old.gpus;
        }
        // The index tracks schedulable nodes only; drained nodes re-enter
        // it (with their then-current free vector) on undrain.
        if (old.gpus, old.cpu_cores) != (new.gpus, new.cpu_cores)
            && self.nodes[idx].is_schedulable()
        {
            let idx = idx as u32;
            self.free_index.remove(&(old.gpus, old.cpu_cores, idx));
            self.free_index.insert((new.gpus, new.cpu_cores, idx));
            self.free_index_updates += 1;
        }
    }

    /// Number of failed [`Cluster::allocate`] calls over this cluster's
    /// lifetime (operational counter; clones inherit the current value).
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// The network/rack topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.capacity().gpus).sum()
    }

    /// Currently free GPUs across all nodes (O(1), incrementally indexed).
    pub fn free_gpus(&self) -> u32 {
        self.free_gpus_total
    }

    /// Total capacity vector of the cluster (cached at construction; node
    /// capacities are immutable afterwards).
    pub fn total_capacity(&self) -> ResourceVec {
        self.total_capacity
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.leases.live
    }

    /// Looks up an active lease (O(1): generational-index arena access).
    pub fn lease(&self, id: LeaseId) -> Option<&Lease> {
        self.leases.get(id)
    }

    /// Iterates over active leases in arena slot order (deterministic, but
    /// not grant order once slots recycle).
    pub fn leases(&self) -> impl Iterator<Item = &Lease> {
        self.leases.iter()
    }

    /// Lease-arena churn counters: `(fresh slot allocations, free-list
    /// reuses)`. Deterministic work counters, CI-gated by the perf
    /// harness.
    pub fn lease_arena_stats(&self) -> (u64, u64) {
        (self.leases.allocs, self.leases.reuses)
    }

    /// Re-index operations applied to the sorted free-capacity index over
    /// this cluster's lifetime (deterministic work counter).
    pub fn free_index_updates(&self) -> u64 {
        self.free_index_updates
    }

    /// Ascending walk of the free-capacity index starting at the first
    /// schedulable node with at least `min_gpus` free GPUs. Items are
    /// `(free gpus, free cpu cores, node id)` in exactly the placement
    /// planner's candidate order: free GPUs, then free CPU cores, then
    /// node id. Reverse it for worst-fit (spread) traversal.
    pub fn free_index_from(
        &self,
        min_gpus: u32,
    ) -> impl DoubleEndedIterator<Item = (u32, u32, NodeId)> + '_ {
        self.free_index
            .range((min_gpus, 0, 0)..)
            .map(|&(gpus, cpus, idx)| (gpus, cpus, NodeId(idx)))
    }

    /// Atomically allocates the given per-node shares for `owner`.
    ///
    /// Either every share fits and a [`Lease`] is returned, or nothing is
    /// allocated.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::EmptyRequest`] if `shares` is empty.
    /// * [`ClusterError::UnknownNode`] if a node id is out of range.
    /// * [`ClusterError::InsufficientResources`] if any share does not fit;
    ///   the first offending node is reported.
    pub fn allocate(
        &mut self,
        owner: u64,
        shares: &[(NodeId, ResourceVec)],
    ) -> Result<Lease, ClusterError> {
        if shares.is_empty() {
            self.alloc_failures += 1;
            return Err(ClusterError::EmptyRequest);
        }
        // Validate the whole placement first (shares may repeat a node).
        let mut needed: BTreeMap<NodeId, ResourceVec> = BTreeMap::new();
        for &(node, demand) in shares {
            if node.index() >= self.nodes.len() {
                self.alloc_failures += 1;
                return Err(ClusterError::UnknownNode(node));
            }
            *needed.entry(node).or_insert(ResourceVec::ZERO) += demand;
        }
        for (&node, total) in &needed {
            if !self.nodes[node.index()].can_fit(total) {
                self.alloc_failures += 1;
                return Err(ClusterError::InsufficientResources { node });
            }
        }
        // Commit.
        let id = self.leases.insert_with(|id| Lease {
            id,
            owner,
            shares: needed.iter().map(|(&n, &r)| (n, r)).collect(),
        });
        for (&node, &total) in &needed {
            let before = self.nodes[node.index()].free();
            self.nodes[node.index()].reserve(id, total);
            let after = self.nodes[node.index()].free();
            self.note_free_change(node.index(), before, after);
        }
        self.version += 1;
        // tacc-lint: allow(panic-surface, reason = "the id was inserted into the arena earlier in this function; a miss would mean the arena dropped a live slot")
        Ok(self.leases.get(id).expect("just inserted").clone())
    }

    /// Releases a lease, returning its resources to the nodes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownLease`] if the lease is not active.
    pub fn release(&mut self, id: LeaseId) -> Result<(), ClusterError> {
        let lease = self
            .leases
            .remove(id)
            .ok_or(ClusterError::UnknownLease(id))?;
        for (node, _) in lease.shares {
            let before = self.nodes[node.index()].free();
            self.nodes[node.index()].release(id);
            let after = self.nodes[node.index()].free();
            self.note_free_change(node.index(), before, after);
        }
        self.version += 1;
        Ok(())
    }

    /// Marks a node unschedulable (maintenance drain). Running leases are
    /// unaffected; new allocations on the node fail. Returns `false` if the
    /// node does not exist.
    pub fn drain(&mut self, node: NodeId) -> bool {
        match self.nodes.get_mut(node.index()) {
            Some(n) => {
                if n.is_schedulable() {
                    let free = n.free();
                    self.free_index.remove(&(free.gpus, free.cpu_cores, node.0));
                    self.free_index_updates += 1;
                }
                n.set_schedulable(false);
                self.version += 1;
                true
            }
            None => false,
        }
    }

    /// Returns a drained node to service.
    pub fn undrain(&mut self, node: NodeId) -> bool {
        match self.nodes.get_mut(node.index()) {
            Some(n) => {
                if !n.is_schedulable() {
                    let free = n.free();
                    self.free_index.insert((free.gpus, free.cpu_cores, node.0));
                    self.free_index_updates += 1;
                }
                n.set_schedulable(true);
                self.version += 1;
                true
            }
            None => false,
        }
    }

    /// Number of currently drained nodes.
    pub fn drained_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_schedulable()).count()
    }

    /// GPU fragmentation: the fraction of *free* GPUs that sit on nodes with
    /// fewer than `chunk` free GPUs, i.e. free capacity unusable by a job
    /// that needs `chunk` co-located GPUs.
    ///
    /// Returns 0.0 when no GPUs are free.
    pub fn fragmentation(&self, chunk: u32) -> f64 {
        let free_total = self.free_gpus();
        if free_total == 0 {
            return 0.0;
        }
        let stranded: u32 = self
            .nodes
            .iter()
            .map(|n| n.free().gpus)
            .filter(|&g| g < chunk)
            .sum();
        f64::from(stranded) / f64::from(free_total)
    }

    /// The largest single-node free GPU block — the biggest co-located job
    /// admissible right now without spanning nodes (O(log n), incrementally
    /// indexed).
    pub fn largest_free_block(&self) -> u32 {
        self.free_block_counts
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    }

    /// Verifies per-node accounting (free + sum(leases) == capacity) and
    /// that the incremental aggregates match a from-scratch recount.
    ///
    /// Cheap enough to run inside tests and property checks; the platform
    /// calls it at the end of every simulation in debug builds.
    pub fn check_invariants(&self) -> bool {
        let per_node = self.nodes.iter().all(|n| {
            let leased: ResourceVec = n.leases().map(|(_, r)| r).sum();
            leased + n.free() == n.capacity()
        });
        let free_total: u32 = self.nodes.iter().map(|n| n.free().gpus).sum();
        let capacity: ResourceVec = self.nodes.iter().map(Node::capacity).sum();
        let mut histogram: BTreeMap<u32, u32> = BTreeMap::new();
        for node in &self.nodes {
            *histogram.entry(node.free().gpus).or_insert(0) += 1;
        }
        let index: BTreeSet<(u32, u32, u32)> = self
            .nodes
            .iter()
            .filter(|n| n.is_schedulable())
            .map(|n| (n.free().gpus, n.free().cpu_cores, n.id().0))
            .collect();
        per_node
            && free_total == self.free_gpus_total
            && capacity == self.total_capacity
            && histogram == self.free_block_counts
            && index == self.free_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cluster {
        Cluster::new(ClusterSpec::uniform(2, 2, GpuModel::A100, 8))
    }

    #[test]
    fn construction_numbers_nodes_and_racks() {
        let c = small();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.total_gpus(), 32);
        assert_eq!(c.topology().rack_count(), 2);
        let racks: Vec<usize> = c.nodes().map(|n| n.rack().index()).collect();
        assert_eq!(racks, vec![0, 0, 1, 1]);
    }

    #[test]
    fn heterogeneous_pools() {
        let spec = ClusterSpec::builder()
            .pool(GpuModel::A100, 1, 2, 8)
            .pool(GpuModel::Rtx3090, 1, 4, 4)
            .build();
        let c = Cluster::new(spec);
        assert_eq!(c.node_count(), 6);
        assert_eq!(c.total_gpus(), 32);
        let models: Vec<GpuModel> = c.nodes().map(|n| n.gpu_model()).collect();
        assert_eq!(models[0], GpuModel::A100);
        assert_eq!(models[5], GpuModel::Rtx3090);
        // Consumer nodes report PCIe intra-node tier.
        let pcie_node = NodeId::from_index(5);
        assert_eq!(
            c.topology().tier_between(pcie_node, pcie_node),
            crate::topology::BandwidthTier::IntraNodePcie
        );
    }

    #[test]
    fn allocate_release_round_trip() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(8))])
            .expect("fits");
        assert_eq!(c.free_gpus(), 24);
        assert_eq!(lease.total().gpus, 8);
        assert_eq!(c.lease_count(), 1);
        assert!(c.check_invariants());
        c.release(lease.id()).expect("active lease");
        assert_eq!(c.free_gpus(), 32);
        assert!(c.check_invariants());
    }

    #[test]
    fn allocation_is_atomic() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        // First fill node 1 completely.
        c.allocate(1, &[(n1, ResourceVec::gpus_only(8))])
            .expect("fits");
        // Multi-node request where the second share cannot fit must not
        // touch node 0 either.
        let err = c
            .allocate(
                2,
                &[
                    (n0, ResourceVec::gpus_only(8)),
                    (n1, ResourceVec::gpus_only(1)),
                ],
            )
            .expect_err("node 1 is full");
        assert_eq!(err, ClusterError::InsufficientResources { node: n1 });
        assert_eq!(c.node(n0).expect("exists").free().gpus, 8);
        assert!(c.check_invariants());
    }

    #[test]
    fn repeated_node_shares_are_summed() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        // Two 4-GPU shares on the same node: fine (8 total).
        let lease = c
            .allocate(
                1,
                &[
                    (n0, ResourceVec::gpus_only(4)),
                    (n0, ResourceVec::gpus_only(4)),
                ],
            )
            .expect("sums to node capacity");
        assert_eq!(lease.shares().len(), 1);
        assert_eq!(lease.total().gpus, 8);
        // Three 4-GPU shares: 12 > 8 must fail.
        let err = c
            .allocate(
                2,
                &[
                    (n0, ResourceVec::gpus_only(2)),
                    (n0, ResourceVec::gpus_only(7)),
                ],
            )
            .expect_err("over capacity in aggregate");
        assert!(matches!(err, ClusterError::InsufficientResources { .. }));
    }

    #[test]
    fn errors_for_bad_inputs() {
        let mut c = small();
        assert_eq!(
            c.allocate(1, &[]).expect_err("empty"),
            ClusterError::EmptyRequest
        );
        let ghost = NodeId::from_index(99);
        assert_eq!(
            c.allocate(1, &[(ghost, ResourceVec::gpus_only(1))])
                .expect_err("unknown node"),
            ClusterError::UnknownNode(ghost)
        );
        assert_eq!(
            c.release(LeaseId::for_tests(42)).expect_err("no lease"),
            ClusterError::UnknownLease(LeaseId::for_tests(42))
        );
        // Every failed allocate bumped the operational counter; failed
        // releases do not.
        assert_eq!(c.alloc_failures(), 2);
    }

    #[test]
    fn alloc_failures_counts_capacity_misses() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        assert_eq!(c.alloc_failures(), 0);
        c.allocate(1, &[(n0, ResourceVec::gpus_only(8))])
            .expect("fits");
        assert_eq!(c.alloc_failures(), 0);
        c.allocate(2, &[(n0, ResourceVec::gpus_only(1))])
            .expect_err("node full");
        assert_eq!(c.alloc_failures(), 1);
    }

    #[test]
    fn double_release_fails() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(1))])
            .expect("fits");
        c.release(lease.id()).expect("first release");
        assert!(c.release(lease.id()).is_err());
    }

    #[test]
    fn drained_nodes_reject_new_work_only() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(2))])
            .expect("fits");
        assert!(c.drain(n0));
        assert_eq!(c.drained_count(), 1);
        // New work on the drained node fails even though capacity is free.
        assert!(matches!(
            c.allocate(2, &[(n0, ResourceVec::gpus_only(1))]),
            Err(ClusterError::InsufficientResources { .. })
        ));
        // The running lease drains out normally.
        c.release(lease.id()).expect("still valid");
        assert!(c.undrain(n0));
        assert!(c.allocate(3, &[(n0, ResourceVec::gpus_only(1))]).is_ok());
        assert!(!c.drain(NodeId::from_index(99)));
    }

    #[test]
    fn version_counts_mutations_only() {
        let mut c = small();
        let v0 = c.version();
        let n0 = NodeId::from_index(0);
        // Reads and failed mutations leave the version unchanged.
        let _ = c.free_gpus();
        c.allocate(1, &[]).expect_err("empty request");
        assert_eq!(c.version(), v0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(1))])
            .expect("fits");
        assert!(c.version() > v0);
        let v1 = c.version();
        c.release(lease.id()).expect("active lease");
        assert!(c.version() > v1);
        let v2 = c.version();
        assert!(c.drain(n0));
        assert!(c.undrain(n0));
        assert!(c.version() > v2);
    }

    #[test]
    fn lease_ids_are_generational() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let a = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(2))])
            .expect("fits");
        c.release(a.id()).expect("active");
        let b = c
            .allocate(2, &[(n0, ResourceVec::gpus_only(2))])
            .expect("fits");
        // The slot recycles but the generation advances, so the recycled
        // id is distinct and the stale one resolves to nothing.
        assert_eq!(b.id().slot(), a.id().slot());
        assert_ne!(b.id(), a.id());
        assert!(c.lease(a.id()).is_none(), "stale id must not resolve");
        assert_eq!(c.lease(b.id()).map(Lease::owner), Some(2));
        let (allocs, reuses) = c.lease_arena_stats();
        assert_eq!((allocs, reuses), (1, 1));
        assert!(c.check_invariants());
    }

    /// Satellite of ISSUE 9: the incrementally maintained free-GPU
    /// histogram (and the sorted free-capacity index that shares its
    /// write site) must match a from-scratch recount after a seeded
    /// grant/release storm.
    #[test]
    fn histogram_matches_recount_after_grant_release_storm() {
        // Deterministic xorshift64* — same storm every run.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut c = Cluster::new(ClusterSpec::uniform(4, 4, GpuModel::A100, 8));
        let mut live: Vec<LeaseId> = Vec::new();
        for step in 0..2_000 {
            let release_bias = rng() % 100;
            if !live.is_empty() && (release_bias < 45 || live.len() > 40) {
                let id = live.swap_remove((rng() % live.len() as u64) as usize);
                c.release(id).expect("live lease");
            } else {
                let workers = 1 + (rng() % 3) as usize;
                let shares: Vec<(NodeId, ResourceVec)> = (0..workers)
                    .map(|_| {
                        (
                            NodeId::from_index((rng() % 16) as usize),
                            ResourceVec::gpus_only(1 + (rng() % 4) as u32),
                        )
                    })
                    .collect();
                if let Ok(lease) = c.allocate(rng(), &shares) {
                    live.push(lease.id());
                }
            }
            // Occasionally flip a node's schedulability: the free index
            // must drop/readopt it exactly.
            if step % 97 == 0 {
                let node = NodeId::from_index((rng() % 16) as usize);
                if rng() % 2 == 0 {
                    c.drain(node);
                } else {
                    c.undrain(node);
                }
            }
        }
        // Explicit from-scratch recounts, independent of check_invariants.
        let mut histogram: BTreeMap<u32, u32> = BTreeMap::new();
        for node in c.nodes() {
            *histogram.entry(node.free().gpus).or_insert(0) += 1;
        }
        let largest = histogram.keys().next_back().copied().unwrap_or(0);
        assert_eq!(c.largest_free_block(), largest);
        let free_total: u32 = c.nodes().map(|n| n.free().gpus).sum();
        assert_eq!(c.free_gpus(), free_total);
        let index: Vec<(u32, u32, NodeId)> = {
            let mut v: Vec<(u32, u32, NodeId)> = c
                .nodes()
                .filter(|n| n.is_schedulable())
                .map(|n| (n.free().gpus, n.free().cpu_cores, n.id()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(c.free_index_from(0).collect::<Vec<_>>(), index);
        assert!(c.free_index_updates() > 0);
        assert!(c.check_invariants(), "incremental aggregates diverged");
        // Drain the storm: everything must return to pristine.
        for id in live {
            c.release(id).expect("live lease");
        }
        assert_eq!(c.lease_count(), 0);
        assert!(c.check_invariants());
    }

    #[test]
    fn free_index_orders_candidates_and_bounds_probes() {
        let mut c = small(); // 4 nodes x 8 GPUs
        c.allocate(1, &[(NodeId::from_index(1), ResourceVec::gpus_only(6))])
            .expect("fits");
        c.allocate(2, &[(NodeId::from_index(2), ResourceVec::gpus_only(3))])
            .expect("fits");
        let order: Vec<NodeId> = c.free_index_from(0).map(|(_, _, id)| id).collect();
        // Ascending free GPUs: node1 (2 free), node2 (5 free), then the
        // two untouched nodes in id order.
        assert_eq!(
            order,
            vec![
                NodeId::from_index(1),
                NodeId::from_index(2),
                NodeId::from_index(0),
                NodeId::from_index(3)
            ]
        );
        // A range query skips nodes that cannot host even one worker.
        let bounded: Vec<NodeId> = c.free_index_from(5).map(|(_, _, id)| id).collect();
        assert_eq!(bounded.len(), 3);
        assert!(!bounded.contains(&NodeId::from_index(1)));
    }

    #[test]
    fn fragmentation_metric() {
        let mut c = small(); // 4 nodes x 8 GPUs
        assert_eq!(c.fragmentation(8), 0.0);
        // Take 5 GPUs on each of two nodes: each has 3 free, stranded for chunk=8.
        for i in 0..2 {
            c.allocate(
                i,
                &[(NodeId::from_index(i as usize), ResourceVec::gpus_only(5))],
            )
            .expect("fits");
        }
        let frag = c.fragmentation(8);
        // free = 3+3+8+8 = 22; stranded = 6.
        assert!((frag - 6.0 / 22.0).abs() < 1e-12);
        assert_eq!(c.largest_free_block(), 8);
        // chunk=1 never strands anything.
        assert_eq!(c.fragmentation(1), 0.0);
    }
}
