//! Cluster state: construction, leasing and fragmentation accounting.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gpu::GpuModel;
use crate::node::{Node, NodeId};
use crate::resources::ResourceVec;
use crate::topology::{LinkSpeeds, RackId, Topology};

/// Identifier of a resource lease issued by [`Cluster::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LeaseId(u64);

impl LeaseId {
    /// Raw value, for logging.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Constructs an arbitrary lease id for unit tests in this workspace.
    #[doc(hidden)]
    pub fn for_tests(v: u64) -> Self {
        LeaseId(v)
    }
}

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease{}", self.0)
    }
}

/// A granted multi-node allocation: which nodes hold how much, for whom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    id: LeaseId,
    owner: u64,
    shares: Vec<(NodeId, ResourceVec)>,
}

impl Lease {
    /// The lease identifier (pass to [`Cluster::release`]).
    pub fn id(&self) -> LeaseId {
        self.id
    }

    /// The opaque owner tag supplied at allocation (the platform uses job ids).
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Per-node shares of the allocation.
    pub fn shares(&self) -> &[(NodeId, ResourceVec)] {
        &self.shares
    }

    /// The nodes this lease spans (in share order).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.shares.iter().map(|&(n, _)| n).collect()
    }

    /// Total resources across all shares.
    pub fn total(&self) -> ResourceVec {
        self.shares.iter().map(|&(_, r)| r).sum()
    }
}

/// Errors returned by cluster allocation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The referenced node does not exist in this cluster.
    UnknownNode(NodeId),
    /// A requested share does not fit in the node's free resources.
    InsufficientResources {
        /// The node that could not satisfy the share.
        node: NodeId,
    },
    /// The lease is not (or no longer) active.
    UnknownLease(LeaseId),
    /// An allocation request contained no shares.
    EmptyRequest,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::InsufficientResources { node } => {
                write!(f, "insufficient free resources on {node}")
            }
            ClusterError::UnknownLease(l) => write!(f, "unknown lease {l}"),
            ClusterError::EmptyRequest => write!(f, "allocation request has no shares"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Declarative description of a cluster to build: racks of nodes grouped in
/// homogeneous pools.
///
/// # Example
///
/// ```
/// use tacc_cluster::{ClusterSpec, GpuModel, LinkSpeeds};
/// let spec = ClusterSpec::builder()
///     .pool(GpuModel::A100, 2, 4, 8) // 2 racks x 4 nodes x 8 GPUs
///     .pool(GpuModel::Rtx3090, 1, 8, 4)
///     .speeds(LinkSpeeds::campus_default())
///     .build();
/// assert_eq!(spec.total_nodes(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pools: Vec<PoolSpec>,
    speeds: LinkSpeeds,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PoolSpec {
    model: GpuModel,
    racks: u32,
    nodes_per_rack: u32,
    gpus_per_node: u32,
}

impl ClusterSpec {
    /// Starts building a spec.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder {
            pools: Vec::new(),
            speeds: LinkSpeeds::campus_default(),
        }
    }

    /// A homogeneous cluster: `racks` × `nodes_per_rack` nodes of `model`
    /// with `gpus_per_node` GPUs each, default campus link speeds.
    pub fn uniform(racks: u32, nodes_per_rack: u32, model: GpuModel, gpus_per_node: u32) -> Self {
        ClusterSpec::builder()
            .pool(model, racks, nodes_per_rack, gpus_per_node)
            .build()
    }

    /// Total node count across pools.
    pub fn total_nodes(&self) -> usize {
        self.pools
            .iter()
            .map(|p| (p.racks * p.nodes_per_rack) as usize)
            .sum()
    }

    /// Total GPU count across pools.
    pub fn total_gpus(&self) -> u32 {
        self.pools
            .iter()
            .map(|p| p.racks * p.nodes_per_rack * p.gpus_per_node)
            .sum()
    }
}

/// Builder for [`ClusterSpec`].
#[derive(Debug, Clone)]
pub struct ClusterSpecBuilder {
    pools: Vec<PoolSpec>,
    speeds: LinkSpeeds,
}

impl ClusterSpecBuilder {
    /// Adds a homogeneous pool: `racks` racks of `nodes_per_rack` nodes,
    /// each with `gpus_per_node` GPUs of `model`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn pool(
        mut self,
        model: GpuModel,
        racks: u32,
        nodes_per_rack: u32,
        gpus_per_node: u32,
    ) -> Self {
        assert!(
            racks > 0 && nodes_per_rack > 0 && gpus_per_node > 0,
            "pool dimensions must be positive"
        );
        self.pools.push(PoolSpec {
            model,
            racks,
            nodes_per_rack,
            gpus_per_node,
        });
        self
    }

    /// Overrides the link speeds (default: [`LinkSpeeds::campus_default`]).
    pub fn speeds(mut self, speeds: LinkSpeeds) -> Self {
        self.speeds = speeds;
        self
    }

    /// Finishes the spec.
    ///
    /// # Panics
    ///
    /// Panics if no pool was added.
    pub fn build(self) -> ClusterSpec {
        assert!(!self.pools.is_empty(), "cluster needs at least one pool");
        ClusterSpec {
            pools: self.pools,
            speeds: self.speeds,
        }
    }
}

/// The live, allocatable cluster: nodes, topology and active leases.
///
/// This is the single authority on who holds what; the scheduler proposes
/// placements, but only a successful [`Cluster::allocate`] commits them, and
/// the invariant "sum of leases + free == capacity, per node" is enforced
/// here (checked in tests and by debug assertions).
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    topology: Topology,
    leases: BTreeMap<LeaseId, Lease>,
    next_lease: u64,
    alloc_failures: u64,
    // Incrementally maintained aggregates, updated on every reserve/release
    // (the only paths that change a node's free vector). They answer the
    // scheduler's per-round and per-skip queries in O(1)/O(log n) instead of
    // an O(nodes) scan, and deliberately mirror the historical scan-based
    // semantics: drained nodes still count (draining toggles schedulability,
    // not free capacity).
    total_capacity: ResourceVec,
    free_gpus_total: u32,
    /// Histogram of nodes by free-GPU count (`free gpus -> node count`);
    /// the greatest key is the largest free block.
    free_block_counts: BTreeMap<u32, u32>,
    /// Monotonic mutation counter; see [`Cluster::version`].
    version: u64,
}

impl Cluster {
    /// Materializes a cluster from a spec.
    ///
    /// Nodes are numbered pool by pool, rack by rack, so ids are stable for
    /// a given spec.
    pub fn new(spec: ClusterSpec) -> Self {
        let mut nodes = Vec::with_capacity(spec.total_nodes());
        let mut racks = Vec::with_capacity(spec.total_nodes());
        let mut nvlink = Vec::with_capacity(spec.total_nodes());
        let mut rack_counter: u32 = 0;
        for pool in &spec.pools {
            let has_nvlink = pool.model.spec().has_nvlink;
            for _ in 0..pool.racks {
                let rack = RackId(rack_counter);
                rack_counter += 1;
                for _ in 0..pool.nodes_per_rack {
                    let id = NodeId(u32::try_from(nodes.len()).expect("node count fits u32"));
                    nodes.push(Node::new(id, rack, pool.model, pool.gpus_per_node));
                    racks.push(rack);
                    nvlink.push(has_nvlink);
                }
            }
        }
        let total_capacity = nodes.iter().map(Node::capacity).sum();
        let free_gpus_total = nodes.iter().map(|n| n.free().gpus).sum();
        let mut free_block_counts: BTreeMap<u32, u32> = BTreeMap::new();
        for node in &nodes {
            *free_block_counts.entry(node.free().gpus).or_insert(0) += 1;
        }
        Cluster {
            nodes,
            topology: Topology::new(racks, nvlink, spec.speeds),
            leases: BTreeMap::new(),
            next_lease: 0,
            alloc_failures: 0,
            total_capacity,
            free_gpus_total,
            free_block_counts,
            version: 0,
        }
    }

    /// Monotonic state-version counter, bumped by every successful mutation
    /// (allocate, release, drain, undrain). Two observations of the *same*
    /// cluster with equal versions saw identical state, so callers may cache
    /// expensive derived state keyed by this value — the scheduler uses it
    /// to reuse its reclaim-feasibility snapshot across an unchanged round.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Re-indexes one node's free-GPU count after a reserve/release moved it
    /// from `old` to `new` free GPUs.
    fn note_free_change(&mut self, old: u32, new: u32) {
        if old == new {
            return;
        }
        match self.free_block_counts.get_mut(&old) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.free_block_counts.remove(&old);
            }
        }
        *self.free_block_counts.entry(new).or_insert(0) += 1;
        self.free_gpus_total = self.free_gpus_total + new - old;
    }

    /// Number of failed [`Cluster::allocate`] calls over this cluster's
    /// lifetime (operational counter; clones inherit the current value).
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// The network/rack topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.capacity().gpus).sum()
    }

    /// Currently free GPUs across all nodes (O(1), incrementally indexed).
    pub fn free_gpus(&self) -> u32 {
        self.free_gpus_total
    }

    /// Total capacity vector of the cluster (cached at construction; node
    /// capacities are immutable afterwards).
    pub fn total_capacity(&self) -> ResourceVec {
        self.total_capacity
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Looks up an active lease.
    pub fn lease(&self, id: LeaseId) -> Option<&Lease> {
        self.leases.get(&id)
    }

    /// Iterates over active leases.
    pub fn leases(&self) -> impl Iterator<Item = &Lease> {
        self.leases.values()
    }

    /// Atomically allocates the given per-node shares for `owner`.
    ///
    /// Either every share fits and a [`Lease`] is returned, or nothing is
    /// allocated.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::EmptyRequest`] if `shares` is empty.
    /// * [`ClusterError::UnknownNode`] if a node id is out of range.
    /// * [`ClusterError::InsufficientResources`] if any share does not fit;
    ///   the first offending node is reported.
    pub fn allocate(
        &mut self,
        owner: u64,
        shares: &[(NodeId, ResourceVec)],
    ) -> Result<Lease, ClusterError> {
        if shares.is_empty() {
            self.alloc_failures += 1;
            return Err(ClusterError::EmptyRequest);
        }
        // Validate the whole placement first (shares may repeat a node).
        let mut needed: BTreeMap<NodeId, ResourceVec> = BTreeMap::new();
        for &(node, demand) in shares {
            if node.index() >= self.nodes.len() {
                self.alloc_failures += 1;
                return Err(ClusterError::UnknownNode(node));
            }
            *needed.entry(node).or_insert(ResourceVec::ZERO) += demand;
        }
        for (&node, total) in &needed {
            if !self.nodes[node.index()].can_fit(total) {
                self.alloc_failures += 1;
                return Err(ClusterError::InsufficientResources { node });
            }
        }
        // Commit.
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        for (&node, &total) in &needed {
            let before = self.nodes[node.index()].free().gpus;
            self.nodes[node.index()].reserve(id, total);
            let after = self.nodes[node.index()].free().gpus;
            self.note_free_change(before, after);
        }
        let lease = Lease {
            id,
            owner,
            shares: needed.into_iter().collect(),
        };
        self.leases.insert(id, lease.clone());
        self.version += 1;
        Ok(lease)
    }

    /// Releases a lease, returning its resources to the nodes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownLease`] if the lease is not active.
    pub fn release(&mut self, id: LeaseId) -> Result<(), ClusterError> {
        let lease = self
            .leases
            .remove(&id)
            .ok_or(ClusterError::UnknownLease(id))?;
        for (node, _) in lease.shares {
            let before = self.nodes[node.index()].free().gpus;
            self.nodes[node.index()].release(id);
            let after = self.nodes[node.index()].free().gpus;
            self.note_free_change(before, after);
        }
        self.version += 1;
        Ok(())
    }

    /// Marks a node unschedulable (maintenance drain). Running leases are
    /// unaffected; new allocations on the node fail. Returns `false` if the
    /// node does not exist.
    pub fn drain(&mut self, node: NodeId) -> bool {
        match self.nodes.get_mut(node.index()) {
            Some(n) => {
                n.set_schedulable(false);
                self.version += 1;
                true
            }
            None => false,
        }
    }

    /// Returns a drained node to service.
    pub fn undrain(&mut self, node: NodeId) -> bool {
        match self.nodes.get_mut(node.index()) {
            Some(n) => {
                n.set_schedulable(true);
                self.version += 1;
                true
            }
            None => false,
        }
    }

    /// Number of currently drained nodes.
    pub fn drained_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_schedulable()).count()
    }

    /// GPU fragmentation: the fraction of *free* GPUs that sit on nodes with
    /// fewer than `chunk` free GPUs, i.e. free capacity unusable by a job
    /// that needs `chunk` co-located GPUs.
    ///
    /// Returns 0.0 when no GPUs are free.
    pub fn fragmentation(&self, chunk: u32) -> f64 {
        let free_total = self.free_gpus();
        if free_total == 0 {
            return 0.0;
        }
        let stranded: u32 = self
            .nodes
            .iter()
            .map(|n| n.free().gpus)
            .filter(|&g| g < chunk)
            .sum();
        f64::from(stranded) / f64::from(free_total)
    }

    /// The largest single-node free GPU block — the biggest co-located job
    /// admissible right now without spanning nodes (O(log n), incrementally
    /// indexed).
    pub fn largest_free_block(&self) -> u32 {
        self.free_block_counts
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    }

    /// Verifies per-node accounting (free + sum(leases) == capacity) and
    /// that the incremental aggregates match a from-scratch recount.
    ///
    /// Cheap enough to run inside tests and property checks; the platform
    /// calls it at the end of every simulation in debug builds.
    pub fn check_invariants(&self) -> bool {
        let per_node = self.nodes.iter().all(|n| {
            let leased: ResourceVec = n.leases().map(|(_, r)| r).sum();
            leased + n.free() == n.capacity()
        });
        let free_total: u32 = self.nodes.iter().map(|n| n.free().gpus).sum();
        let capacity: ResourceVec = self.nodes.iter().map(Node::capacity).sum();
        let mut histogram: BTreeMap<u32, u32> = BTreeMap::new();
        for node in &self.nodes {
            *histogram.entry(node.free().gpus).or_insert(0) += 1;
        }
        per_node
            && free_total == self.free_gpus_total
            && capacity == self.total_capacity
            && histogram == self.free_block_counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cluster {
        Cluster::new(ClusterSpec::uniform(2, 2, GpuModel::A100, 8))
    }

    #[test]
    fn construction_numbers_nodes_and_racks() {
        let c = small();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.total_gpus(), 32);
        assert_eq!(c.topology().rack_count(), 2);
        let racks: Vec<usize> = c.nodes().map(|n| n.rack().index()).collect();
        assert_eq!(racks, vec![0, 0, 1, 1]);
    }

    #[test]
    fn heterogeneous_pools() {
        let spec = ClusterSpec::builder()
            .pool(GpuModel::A100, 1, 2, 8)
            .pool(GpuModel::Rtx3090, 1, 4, 4)
            .build();
        let c = Cluster::new(spec);
        assert_eq!(c.node_count(), 6);
        assert_eq!(c.total_gpus(), 32);
        let models: Vec<GpuModel> = c.nodes().map(|n| n.gpu_model()).collect();
        assert_eq!(models[0], GpuModel::A100);
        assert_eq!(models[5], GpuModel::Rtx3090);
        // Consumer nodes report PCIe intra-node tier.
        let pcie_node = NodeId::from_index(5);
        assert_eq!(
            c.topology().tier_between(pcie_node, pcie_node),
            crate::topology::BandwidthTier::IntraNodePcie
        );
    }

    #[test]
    fn allocate_release_round_trip() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(8))])
            .expect("fits");
        assert_eq!(c.free_gpus(), 24);
        assert_eq!(lease.total().gpus, 8);
        assert_eq!(c.lease_count(), 1);
        assert!(c.check_invariants());
        c.release(lease.id()).expect("active lease");
        assert_eq!(c.free_gpus(), 32);
        assert!(c.check_invariants());
    }

    #[test]
    fn allocation_is_atomic() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        // First fill node 1 completely.
        c.allocate(1, &[(n1, ResourceVec::gpus_only(8))])
            .expect("fits");
        // Multi-node request where the second share cannot fit must not
        // touch node 0 either.
        let err = c
            .allocate(
                2,
                &[
                    (n0, ResourceVec::gpus_only(8)),
                    (n1, ResourceVec::gpus_only(1)),
                ],
            )
            .expect_err("node 1 is full");
        assert_eq!(err, ClusterError::InsufficientResources { node: n1 });
        assert_eq!(c.node(n0).expect("exists").free().gpus, 8);
        assert!(c.check_invariants());
    }

    #[test]
    fn repeated_node_shares_are_summed() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        // Two 4-GPU shares on the same node: fine (8 total).
        let lease = c
            .allocate(
                1,
                &[
                    (n0, ResourceVec::gpus_only(4)),
                    (n0, ResourceVec::gpus_only(4)),
                ],
            )
            .expect("sums to node capacity");
        assert_eq!(lease.shares().len(), 1);
        assert_eq!(lease.total().gpus, 8);
        // Three 4-GPU shares: 12 > 8 must fail.
        let err = c
            .allocate(
                2,
                &[
                    (n0, ResourceVec::gpus_only(2)),
                    (n0, ResourceVec::gpus_only(7)),
                ],
            )
            .expect_err("over capacity in aggregate");
        assert!(matches!(err, ClusterError::InsufficientResources { .. }));
    }

    #[test]
    fn errors_for_bad_inputs() {
        let mut c = small();
        assert_eq!(
            c.allocate(1, &[]).expect_err("empty"),
            ClusterError::EmptyRequest
        );
        let ghost = NodeId::from_index(99);
        assert_eq!(
            c.allocate(1, &[(ghost, ResourceVec::gpus_only(1))])
                .expect_err("unknown node"),
            ClusterError::UnknownNode(ghost)
        );
        assert_eq!(
            c.release(LeaseId::for_tests(42)).expect_err("no lease"),
            ClusterError::UnknownLease(LeaseId::for_tests(42))
        );
        // Every failed allocate bumped the operational counter; failed
        // releases do not.
        assert_eq!(c.alloc_failures(), 2);
    }

    #[test]
    fn alloc_failures_counts_capacity_misses() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        assert_eq!(c.alloc_failures(), 0);
        c.allocate(1, &[(n0, ResourceVec::gpus_only(8))])
            .expect("fits");
        assert_eq!(c.alloc_failures(), 0);
        c.allocate(2, &[(n0, ResourceVec::gpus_only(1))])
            .expect_err("node full");
        assert_eq!(c.alloc_failures(), 1);
    }

    #[test]
    fn double_release_fails() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(1))])
            .expect("fits");
        c.release(lease.id()).expect("first release");
        assert!(c.release(lease.id()).is_err());
    }

    #[test]
    fn drained_nodes_reject_new_work_only() {
        let mut c = small();
        let n0 = NodeId::from_index(0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(2))])
            .expect("fits");
        assert!(c.drain(n0));
        assert_eq!(c.drained_count(), 1);
        // New work on the drained node fails even though capacity is free.
        assert!(matches!(
            c.allocate(2, &[(n0, ResourceVec::gpus_only(1))]),
            Err(ClusterError::InsufficientResources { .. })
        ));
        // The running lease drains out normally.
        c.release(lease.id()).expect("still valid");
        assert!(c.undrain(n0));
        assert!(c.allocate(3, &[(n0, ResourceVec::gpus_only(1))]).is_ok());
        assert!(!c.drain(NodeId::from_index(99)));
    }

    #[test]
    fn version_counts_mutations_only() {
        let mut c = small();
        let v0 = c.version();
        let n0 = NodeId::from_index(0);
        // Reads and failed mutations leave the version unchanged.
        let _ = c.free_gpus();
        c.allocate(1, &[]).expect_err("empty request");
        assert_eq!(c.version(), v0);
        let lease = c
            .allocate(1, &[(n0, ResourceVec::gpus_only(1))])
            .expect("fits");
        assert!(c.version() > v0);
        let v1 = c.version();
        c.release(lease.id()).expect("active lease");
        assert!(c.version() > v1);
        let v2 = c.version();
        assert!(c.drain(n0));
        assert!(c.undrain(n0));
        assert!(c.version() > v2);
    }

    #[test]
    fn fragmentation_metric() {
        let mut c = small(); // 4 nodes x 8 GPUs
        assert_eq!(c.fragmentation(8), 0.0);
        // Take 5 GPUs on each of two nodes: each has 3 free, stranded for chunk=8.
        for i in 0..2 {
            c.allocate(
                i,
                &[(NodeId::from_index(i as usize), ResourceVec::gpus_only(5))],
            )
            .expect("fits");
        }
        let frag = c.fragmentation(8);
        // free = 3+3+8+8 = 22; stranded = 6.
        assert!((frag - 6.0 / 22.0).abs() < 1e-12);
        assert_eq!(c.largest_free_block(), 8);
        // chunk=1 never strands anything.
        assert_eq!(c.fragmentation(1), 0.0);
    }
}
