//! # tacc-cluster
//!
//! The cluster substrate of the `tacc-rs` reproduction: a faithful model of
//! the shared campus GPU cluster that the real TACC system operates on.
//!
//! The paper's execution layer runs on heterogeneous GPU nodes connected by
//! an RDMA fabric, organized in racks under a leaf–spine network, with
//! NVLink inside nodes. Scheduling and placement quality in the evaluation
//! is a function of exactly this structure, so this crate models:
//!
//! * [`GpuModel`] — heterogeneous accelerator types with memory/compute specs;
//! * [`ResourceVec`] — the multi-dimensional resource vector (GPUs, CPU
//!   cores, memory) jobs request and nodes offer;
//! * [`Node`] / [`NodeId`] — a machine with a GPU pool and per-owner
//!   allocations;
//! * [`Topology`] — racks and bandwidth tiers (NVLink within a node, RDMA
//!   within a rack, oversubscribed inter-rack links);
//! * [`Cluster`] — the allocatable state: find feasible placements, lease
//!   and release resources, account fragmentation.
//!
//! ## Example
//!
//! ```
//! use tacc_cluster::{Cluster, ClusterSpec, GpuModel, ResourceVec};
//!
//! // 2 racks x 4 nodes x 8 A100s.
//! let spec = ClusterSpec::uniform(2, 4, GpuModel::A100, 8);
//! let mut cluster = Cluster::new(spec);
//! assert_eq!(cluster.total_gpus(), 64);
//!
//! let demand = ResourceVec::gpus_only(4);
//! let node = cluster.nodes().next().expect("nonempty").id();
//! let lease = cluster.allocate(7, &[(node, demand)]).expect("fits");
//! assert_eq!(cluster.free_gpus(), 60);
//! cluster.release(lease.id()).expect("valid lease");
//! assert_eq!(cluster.free_gpus(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod gpu;
mod node;
mod resources;
mod topology;

pub use allocator::{Cluster, ClusterError, ClusterSpec, Lease, LeaseId};
pub use gpu::{GpuModel, GpuSpec};
pub use node::{Node, NodeId};
pub use resources::ResourceVec;
pub use topology::{BandwidthTier, LinkSpeeds, RackId, Topology};

// Cluster state crosses threads inside the parallel experiment runner;
// this guard keeps it `Send + Sync`.
const _: () = {
    const fn shareable<T: Send + Sync>() {}
    shareable::<Cluster>();
    shareable::<ClusterSpec>();
    shareable::<Topology>();
};
