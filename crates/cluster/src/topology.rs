//! Rack / network topology with bandwidth tiers.
//!
//! The paper's execution layer leans on the network: RDMA interconnect
//! within the fabric, NVLink within nodes, and oversubscribed links between
//! racks. Distributed-training time (experiment F6) and topology-aware
//! placement (T2) both read bandwidth from this model.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::node::NodeId;

/// Identifier of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RackId(pub(crate) u32);

impl RackId {
    /// Dense index of this rack.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// The locality tier of a communicating GPU pair, ordered from fastest to
/// slowest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BandwidthTier {
    /// Same node, NVLink-connected GPUs.
    IntraNodeNvlink,
    /// Same node over PCIe (consumer cards without NVLink).
    IntraNodePcie,
    /// Different nodes in the same rack, via the rack's RDMA leaf switch.
    IntraRack,
    /// Different racks, across the (oversubscribed) spine.
    InterRack,
}

/// Per-tier bandwidths in Gbit/s, plus the spine oversubscription factor.
///
/// Defaults model a 100 Gbps RoCE fabric with a 3:1 oversubscribed spine —
/// typical for campus deployments that grew rack by rack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpeeds {
    /// NVLink bandwidth within a node (Gbit/s per direction).
    pub nvlink_gbps: f64,
    /// PCIe fallback within a node.
    pub pcie_gbps: f64,
    /// NIC line rate within a rack (RDMA).
    pub rack_gbps: f64,
    /// Oversubscription factor of the spine (inter-rack bandwidth is
    /// `rack_gbps / oversubscription`).
    pub oversubscription: f64,
}

impl LinkSpeeds {
    /// A 100 Gbps RoCE fabric with NVLink nodes and a 3:1 spine.
    pub fn campus_default() -> Self {
        LinkSpeeds {
            nvlink_gbps: 600.0,
            pcie_gbps: 128.0,
            rack_gbps: 100.0,
            oversubscription: 3.0,
        }
    }

    /// A legacy TCP cluster (no RDMA): 10 Gbps NICs, heavier oversubscription.
    /// Used as the "without RDMA" arm of experiment F6.
    pub fn tcp_legacy() -> Self {
        LinkSpeeds {
            nvlink_gbps: 600.0,
            pcie_gbps: 128.0,
            rack_gbps: 10.0,
            oversubscription: 4.0,
        }
    }

    /// Bandwidth of a tier in Gbit/s.
    pub fn bandwidth_gbps(&self, tier: BandwidthTier) -> f64 {
        match tier {
            BandwidthTier::IntraNodeNvlink => self.nvlink_gbps,
            BandwidthTier::IntraNodePcie => self.pcie_gbps,
            BandwidthTier::IntraRack => self.rack_gbps,
            BandwidthTier::InterRack => self.rack_gbps / self.oversubscription,
        }
    }
}

/// The static rack layout of a cluster plus its link speeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// rack assignment per node, indexed by `NodeId::index()`.
    node_racks: Vec<RackId>,
    rack_count: u32,
    speeds: LinkSpeeds,
    /// whether nodes have NVLink (per-node, indexed like `node_racks`).
    nvlink: Vec<bool>,
}

impl Topology {
    pub(crate) fn new(node_racks: Vec<RackId>, nvlink: Vec<bool>, speeds: LinkSpeeds) -> Self {
        assert_eq!(node_racks.len(), nvlink.len());
        let rack_count = node_racks.iter().map(|r| r.0 + 1).max().unwrap_or(0);
        Topology {
            node_racks,
            rack_count,
            speeds,
            nvlink,
        }
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.rack_count as usize
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_racks.len()
    }

    /// Rack of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this topology.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.node_racks[node.index()]
    }

    /// The configured link speeds.
    pub fn speeds(&self) -> LinkSpeeds {
        self.speeds
    }

    /// The locality tier connecting two (possibly identical) nodes.
    pub fn tier_between(&self, a: NodeId, b: NodeId) -> BandwidthTier {
        if a == b {
            if self.nvlink[a.index()] {
                BandwidthTier::IntraNodeNvlink
            } else {
                BandwidthTier::IntraNodePcie
            }
        } else if self.rack_of(a) == self.rack_of(b) {
            BandwidthTier::IntraRack
        } else {
            BandwidthTier::InterRack
        }
    }

    /// Bandwidth in Gbit/s between two nodes (intra-node bandwidth when
    /// `a == b`).
    pub fn bandwidth_between_gbps(&self, a: NodeId, b: NodeId) -> f64 {
        self.speeds.bandwidth_gbps(self.tier_between(a, b))
    }

    /// The narrowest link tier among a set of nodes — the bandwidth a
    /// ring collective over those nodes is bottlenecked by.
    ///
    /// Returns the intra-node tier when the set has one node, and
    /// [`BandwidthTier::IntraNodeNvlink`] for an empty set (no communication).
    pub fn bottleneck_tier(&self, nodes: &[NodeId]) -> BandwidthTier {
        match nodes {
            [] => BandwidthTier::IntraNodeNvlink,
            [only] => self.tier_between(*only, *only),
            multi => {
                let mut worst = BandwidthTier::IntraNodeNvlink;
                for (i, &a) in multi.iter().enumerate() {
                    for &b in &multi[i + 1..] {
                        worst = worst.max(self.tier_between(a, b));
                    }
                }
                worst
            }
        }
    }

    /// Number of distinct racks covered by a node set.
    pub fn racks_spanned(&self, nodes: &[NodeId]) -> usize {
        let mut racks: Vec<RackId> = nodes.iter().map(|&n| self.rack_of(n)).collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        // 4 nodes: 0,1 in rack0 (NVLink); 2 in rack1 (NVLink); 3 in rack1 (PCIe-only)
        Topology::new(
            vec![RackId(0), RackId(0), RackId(1), RackId(1)],
            vec![true, true, true, false],
            LinkSpeeds::campus_default(),
        )
    }

    #[test]
    fn tiers_reflect_locality() {
        let t = topo();
        let n = |i| NodeId(i);
        assert_eq!(t.tier_between(n(0), n(0)), BandwidthTier::IntraNodeNvlink);
        assert_eq!(t.tier_between(n(3), n(3)), BandwidthTier::IntraNodePcie);
        assert_eq!(t.tier_between(n(0), n(1)), BandwidthTier::IntraRack);
        assert_eq!(t.tier_between(n(0), n(2)), BandwidthTier::InterRack);
    }

    #[test]
    fn tier_ordering_fast_to_slow() {
        assert!(BandwidthTier::IntraNodeNvlink < BandwidthTier::IntraNodePcie);
        assert!(BandwidthTier::IntraNodePcie < BandwidthTier::IntraRack);
        assert!(BandwidthTier::IntraRack < BandwidthTier::InterRack);
    }

    #[test]
    fn bandwidth_per_tier() {
        let s = LinkSpeeds::campus_default();
        assert_eq!(s.bandwidth_gbps(BandwidthTier::IntraRack), 100.0);
        assert!((s.bandwidth_gbps(BandwidthTier::InterRack) - 100.0 / 3.0).abs() < 1e-9);
        assert!(
            s.bandwidth_gbps(BandwidthTier::IntraNodeNvlink)
                > s.bandwidth_gbps(BandwidthTier::IntraRack)
        );
    }

    #[test]
    fn bottleneck_over_sets() {
        let t = topo();
        let n = |i| NodeId(i);
        assert_eq!(t.bottleneck_tier(&[]), BandwidthTier::IntraNodeNvlink);
        assert_eq!(t.bottleneck_tier(&[n(0)]), BandwidthTier::IntraNodeNvlink);
        assert_eq!(t.bottleneck_tier(&[n(3)]), BandwidthTier::IntraNodePcie);
        assert_eq!(t.bottleneck_tier(&[n(0), n(1)]), BandwidthTier::IntraRack);
        assert_eq!(
            t.bottleneck_tier(&[n(0), n(1), n(2)]),
            BandwidthTier::InterRack
        );
    }

    #[test]
    fn racks_spanned_counts_distinct() {
        let t = topo();
        let n = |i| NodeId(i);
        assert_eq!(t.racks_spanned(&[n(0), n(1)]), 1);
        assert_eq!(t.racks_spanned(&[n(0), n(2), n(3)]), 2);
        assert_eq!(t.racks_spanned(&[]), 0);
        assert_eq!(t.rack_count(), 2);
        assert_eq!(t.node_count(), 4);
    }
}
