//! Multi-dimensional resource vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A request for (or supply of) schedulable resources: GPUs, CPU cores and
/// host memory.
///
/// This is the unit of the paper's "fine-grained resource allocation"
/// requirement: tasks request heterogeneous amounts along each dimension
/// and the scheduler must fit the whole vector, not just the GPU count.
///
/// # Example
///
/// ```
/// use tacc_cluster::ResourceVec;
/// let node = ResourceVec::new(8, 96, 512);
/// let job = ResourceVec::new(4, 32, 128);
/// assert!(job.fits_in(&node));
/// let free = node - job;
/// assert_eq!(free.gpus, 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct ResourceVec {
    /// Number of GPUs.
    pub gpus: u32,
    /// Number of CPU cores.
    pub cpu_cores: u32,
    /// Host memory in GiB.
    pub mem_gb: u32,
}

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec {
        gpus: 0,
        cpu_cores: 0,
        mem_gb: 0,
    };

    /// Creates a vector with explicit amounts along each dimension.
    pub fn new(gpus: u32, cpu_cores: u32, mem_gb: u32) -> Self {
        ResourceVec {
            gpus,
            cpu_cores,
            mem_gb,
        }
    }

    /// A GPU-only request with the cluster's default CPU/memory ratio
    /// (8 cores and 32 GiB per GPU), the common case for training jobs.
    pub fn gpus_only(gpus: u32) -> Self {
        ResourceVec {
            gpus,
            cpu_cores: gpus * 8,
            mem_gb: gpus * 32,
        }
    }

    /// A CPU-only request (dataset preprocessing, evaluation harnesses).
    pub fn cpu_only(cpu_cores: u32, mem_gb: u32) -> Self {
        ResourceVec {
            gpus: 0,
            cpu_cores,
            mem_gb,
        }
    }

    /// True when every dimension fits inside `other`.
    pub fn fits_in(&self, other: &ResourceVec) -> bool {
        self.gpus <= other.gpus && self.cpu_cores <= other.cpu_cores && self.mem_gb <= other.mem_gb
    }

    /// True when every dimension is zero.
    pub fn is_zero(&self) -> bool {
        *self == ResourceVec::ZERO
    }

    /// Element-wise saturating subtraction.
    pub fn saturating_sub(&self, rhs: &ResourceVec) -> ResourceVec {
        ResourceVec {
            gpus: self.gpus.saturating_sub(rhs.gpus),
            cpu_cores: self.cpu_cores.saturating_sub(rhs.cpu_cores),
            mem_gb: self.mem_gb.saturating_sub(rhs.mem_gb),
        }
    }

    /// The dominant share of this request relative to a capacity vector —
    /// the max across dimensions of `demand/capacity` — as used by
    /// DRF-style fair-share policies.
    ///
    /// Dimensions with zero capacity are skipped; returns 0.0 if every
    /// dimension is skipped.
    pub fn dominant_share(&self, capacity: &ResourceVec) -> f64 {
        let mut share: f64 = 0.0;
        if capacity.gpus > 0 {
            share = share.max(f64::from(self.gpus) / f64::from(capacity.gpus));
        }
        if capacity.cpu_cores > 0 {
            share = share.max(f64::from(self.cpu_cores) / f64::from(capacity.cpu_cores));
        }
        if capacity.mem_gb > 0 {
            share = share.max(f64::from(self.mem_gb) / f64::from(capacity.mem_gb));
        }
        share
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}g/{}c/{}G", self.gpus, self.cpu_cores, self.mem_gb)
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;

    fn add(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            gpus: self.gpus + rhs.gpus,
            cpu_cores: self.cpu_cores + rhs.cpu_cores,
            mem_gb: self.mem_gb + rhs.mem_gb,
        }
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVec {
    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `rhs` exceeds `self` (use
    /// [`ResourceVec::saturating_sub`] when underflow is expected).
    type Output = ResourceVec;

    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        assert!(rhs.fits_in(&self), "resource underflow: {self} - {rhs}");
        ResourceVec {
            gpus: self.gpus - rhs.gpus,
            cpu_cores: self.cpu_cores - rhs.cpu_cores,
            mem_gb: self.mem_gb - rhs.mem_gb,
        }
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        *self = *self - rhs;
    }
}

impl std::iter::Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_requires_all_dimensions() {
        let cap = ResourceVec::new(8, 64, 256);
        assert!(ResourceVec::new(8, 64, 256).fits_in(&cap));
        assert!(!ResourceVec::new(9, 1, 1).fits_in(&cap));
        assert!(!ResourceVec::new(1, 65, 1).fits_in(&cap));
        assert!(!ResourceVec::new(1, 1, 257).fits_in(&cap));
        assert!(ResourceVec::ZERO.fits_in(&cap));
    }

    #[test]
    fn arithmetic() {
        let a = ResourceVec::new(4, 16, 64);
        let b = ResourceVec::new(2, 8, 32);
        assert_eq!(a + b, ResourceVec::new(6, 24, 96));
        assert_eq!(a - b, b);
        assert_eq!(b.saturating_sub(&a), ResourceVec::ZERO);
        let total: ResourceVec = vec![a, b, b].into_iter().sum();
        assert_eq!(total, ResourceVec::new(8, 32, 128));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = ResourceVec::new(1, 0, 0) - ResourceVec::new(2, 0, 0);
    }

    #[test]
    fn gpus_only_ratio() {
        let r = ResourceVec::gpus_only(4);
        assert_eq!(r.gpus, 4);
        assert_eq!(r.cpu_cores, 32);
        assert_eq!(r.mem_gb, 128);
    }

    #[test]
    fn dominant_share_picks_max_dimension() {
        let cap = ResourceVec::new(10, 100, 1000);
        let gpu_heavy = ResourceVec::new(5, 10, 10);
        assert!((gpu_heavy.dominant_share(&cap) - 0.5).abs() < 1e-12);
        let mem_heavy = ResourceVec::new(1, 10, 900);
        assert!((mem_heavy.dominant_share(&cap) - 0.9).abs() < 1e-12);
        // Zero-capacity dimensions are skipped.
        let cpu_cap = ResourceVec::new(0, 100, 0);
        assert!((gpu_heavy.dominant_share(&cpu_cap) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        assert_eq!(ResourceVec::new(2, 16, 64).to_string(), "2g/16c/64G");
    }
}
