//! Compute nodes: a GPU pool plus CPU/memory, with per-lease accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::allocator::LeaseId;
use crate::gpu::GpuModel;
use crate::resources::ResourceVec;
use crate::topology::RackId;

/// Identifier of a node within a [`crate::Cluster`]. Dense, assigned at
/// cluster construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a node id from a raw index.
    ///
    /// Exposed for trace replay and tests; ids are only meaningful with
    /// respect to the cluster that numbered them.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// One machine in the cluster: a homogeneous GPU pool plus host resources,
/// located in a rack, with active leases tracked per [`LeaseId`].
///
/// The per-lease table is a small id-sorted vector rather than a tree:
/// nodes hold at most a handful of leases, binary search beats pointer
/// chasing at that size, and — crucially for the hot path — cloning a
/// node is a flat memcpy-style `Vec` clone instead of a tree rebuild.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    rack: RackId,
    gpu_model: GpuModel,
    capacity: ResourceVec,
    free: ResourceVec,
    leases: Vec<(LeaseId, ResourceVec)>,
    schedulable: bool,
}

impl Node {
    pub(crate) fn new(id: NodeId, rack: RackId, gpu_model: GpuModel, gpus: u32) -> Self {
        // Host sizing follows the common DGX-style ratio: 12 cores and
        // 64 GiB per GPU.
        let capacity = ResourceVec::new(gpus, gpus * 12, gpus * 64);
        Node {
            id,
            rack,
            gpu_model,
            capacity,
            free: capacity,
            leases: Vec::new(),
            schedulable: true,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The rack this node lives in.
    pub fn rack(&self) -> RackId {
        self.rack
    }

    /// The GPU family installed in this node.
    pub fn gpu_model(&self) -> GpuModel {
        self.gpu_model
    }

    /// Total resources of the node.
    pub fn capacity(&self) -> ResourceVec {
        self.capacity
    }

    /// Currently unallocated resources.
    pub fn free(&self) -> ResourceVec {
        self.free
    }

    /// Resources currently allocated.
    pub fn used(&self) -> ResourceVec {
        self.capacity - self.free
    }

    /// True if `demand` currently fits on the node (drained nodes fit
    /// nothing).
    pub fn can_fit(&self, demand: &ResourceVec) -> bool {
        self.schedulable && demand.fits_in(&self.free)
    }

    /// Whether this node accepts new work (operators drain nodes for
    /// maintenance; running leases are unaffected).
    pub fn is_schedulable(&self) -> bool {
        self.schedulable
    }

    pub(crate) fn set_schedulable(&mut self, schedulable: bool) {
        self.schedulable = schedulable;
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// The share of each active lease on this node, in ascending lease-id
    /// order.
    pub fn leases(&self) -> impl Iterator<Item = (LeaseId, ResourceVec)> + '_ {
        self.leases.iter().map(|&(id, r)| (id, r))
    }

    /// Reserves `demand` under `lease`. Multiple calls with the same lease
    /// accumulate (a lease may span allocations on this node).
    pub(crate) fn reserve(&mut self, lease: LeaseId, demand: ResourceVec) {
        debug_assert!(demand.fits_in(&self.free), "reserve() without can_fit()");
        self.free -= demand;
        match self.leases.binary_search_by_key(&lease, |&(id, _)| id) {
            Ok(pos) => self.leases[pos].1 += demand,
            Err(pos) => self.leases.insert(pos, (lease, demand)),
        }
    }

    /// Releases everything held by `lease`; returns what was freed (zero
    /// vector if the lease held nothing here).
    pub(crate) fn release(&mut self, lease: LeaseId) -> ResourceVec {
        match self.leases.binary_search_by_key(&lease, |&(id, _)| id) {
            Ok(pos) => {
                let (_, held) = self.leases.remove(pos);
                self.free += held;
                debug_assert!(self.free.fits_in(&self.capacity));
                held
            }
            Err(_) => ResourceVec::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(0), RackId(0), GpuModel::A100, 8)
    }

    #[test]
    fn capacity_follows_gpu_count() {
        let n = node();
        assert_eq!(n.capacity(), ResourceVec::new(8, 96, 512));
        assert_eq!(n.free(), n.capacity());
        assert_eq!(n.used(), ResourceVec::ZERO);
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut n = node();
        let lease = LeaseId::for_tests(1);
        n.reserve(lease, ResourceVec::gpus_only(4));
        assert_eq!(n.free().gpus, 4);
        assert_eq!(n.used().gpus, 4);
        assert_eq!(n.lease_count(), 1);
        let freed = n.release(lease);
        assert_eq!(freed.gpus, 4);
        assert_eq!(n.free(), n.capacity());
        assert_eq!(n.lease_count(), 0);
    }

    #[test]
    fn same_lease_accumulates() {
        let mut n = node();
        let lease = LeaseId::for_tests(2);
        n.reserve(lease, ResourceVec::gpus_only(2));
        n.reserve(lease, ResourceVec::gpus_only(3));
        assert_eq!(n.lease_count(), 1);
        assert_eq!(n.release(lease).gpus, 5);
    }

    #[test]
    fn release_unknown_lease_is_noop() {
        let mut n = node();
        assert_eq!(n.release(LeaseId::for_tests(99)), ResourceVec::ZERO);
        assert_eq!(n.free(), n.capacity());
    }

    #[test]
    fn drained_node_fits_nothing() {
        let mut n = node();
        assert!(n.can_fit(&ResourceVec::gpus_only(1)));
        n.set_schedulable(false);
        assert!(!n.is_schedulable());
        assert!(!n.can_fit(&ResourceVec::gpus_only(1)));
        // Existing reservations still release normally.
        n.set_schedulable(true);
        n.reserve(LeaseId::for_tests(1), ResourceVec::gpus_only(2));
        n.set_schedulable(false);
        assert_eq!(n.release(LeaseId::for_tests(1)).gpus, 2);
    }

    #[test]
    fn can_fit_respects_all_dims() {
        let mut n = node();
        assert!(n.can_fit(&ResourceVec::gpus_only(8)));
        n.reserve(LeaseId::for_tests(1), ResourceVec::new(0, 90, 0));
        // GPUs free but CPUs nearly exhausted.
        assert!(!n.can_fit(&ResourceVec::gpus_only(1)));
        assert!(n.can_fit(&ResourceVec::new(1, 6, 32)));
    }
}
