//! Heterogeneous GPU models and their specifications.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The accelerator families present in the modelled campus cluster.
///
/// The mix mirrors what shared university clusters of the paper's era
/// actually deploy: datacenter parts (V100/A100) alongside consumer cards
/// (RTX 3090) contributed by individual groups, plus a small new-generation
/// pool (H100) for the heterogeneity experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GpuModel {
    /// NVIDIA V100 16 GB (SXM2): the legacy datacenter pool.
    V100,
    /// NVIDIA A100 40 GB (SXM4): the main training pool.
    A100,
    /// NVIDIA RTX 3090 24 GB: consumer cards, PCIe only.
    Rtx3090,
    /// NVIDIA H100 80 GB (SXM5): the new-generation pool.
    H100,
}

impl GpuModel {
    /// All modelled GPU families, in ascending capability order.
    pub const ALL: [GpuModel; 4] = [
        GpuModel::V100,
        GpuModel::Rtx3090,
        GpuModel::A100,
        GpuModel::H100,
    ];

    /// The static specification of this GPU family.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::V100 => GpuSpec {
                model: self,
                memory_gb: 16.0,
                dense_tflops: 125.0,
                nvlink_gbps: 300.0,
                has_nvlink: true,
            },
            GpuModel::A100 => GpuSpec {
                model: self,
                memory_gb: 40.0,
                dense_tflops: 312.0,
                nvlink_gbps: 600.0,
                has_nvlink: true,
            },
            GpuModel::Rtx3090 => GpuSpec {
                model: self,
                memory_gb: 24.0,
                dense_tflops: 71.0,
                nvlink_gbps: 0.0,
                has_nvlink: false,
            },
            GpuModel::H100 => GpuSpec {
                model: self,
                memory_gb: 80.0,
                dense_tflops: 989.0,
                nvlink_gbps: 900.0,
                has_nvlink: true,
            },
        }
    }

    /// Relative training throughput versus a V100 for a typical dense model.
    ///
    /// Used by the execution layer to scale compute time on heterogeneous
    /// pools: the paper's cluster mixes generations, and job runtime depends
    /// on which pool the scheduler lands a job on.
    pub fn relative_speed(self) -> f64 {
        self.spec().dense_tflops / GpuModel::V100.spec().dense_tflops
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GpuModel::V100 => "V100",
            GpuModel::A100 => "A100",
            GpuModel::Rtx3090 => "RTX3090",
            GpuModel::H100 => "H100",
        };
        f.write_str(name)
    }
}

/// Static capability description of a GPU family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Which family this spec describes.
    pub model: GpuModel,
    /// Device memory in GiB.
    pub memory_gb: f64,
    /// Dense FP16 tensor throughput in TFLOPS (marketing peak; only used
    /// relatively, so the absolute calibration does not matter).
    pub dense_tflops: f64,
    /// Per-direction NVLink bandwidth in Gbit/s (0 when absent).
    pub nvlink_gbps: f64,
    /// Whether intra-node NVLink is available (consumer cards fall back to
    /// PCIe for intra-node collectives).
    pub has_nvlink: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_consistent() {
        for model in GpuModel::ALL {
            let spec = model.spec();
            assert_eq!(spec.model, model);
            assert!(spec.memory_gb > 0.0);
            assert!(spec.dense_tflops > 0.0);
            assert_eq!(spec.has_nvlink, spec.nvlink_gbps > 0.0);
        }
    }

    #[test]
    fn relative_speed_ordering() {
        assert_eq!(GpuModel::V100.relative_speed(), 1.0);
        assert!(GpuModel::A100.relative_speed() > 1.0);
        assert!(GpuModel::H100.relative_speed() > GpuModel::A100.relative_speed());
        assert!(GpuModel::Rtx3090.relative_speed() < 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(GpuModel::A100.to_string(), "A100");
        assert_eq!(GpuModel::Rtx3090.to_string(), "RTX3090");
    }
}
