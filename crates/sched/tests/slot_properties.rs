//! Property tests for the temporal planner's slot invariants.
//!
//! Whatever sequence of places and releases a [`SlotSet`] absorbs, its
//! slots must stay strictly time-sorted, non-overlapping, and an exact
//! partition of the whole horizon `(-inf, +inf)`; the per-slot free sets
//! must form a subset chain (capacity only ever comes *back*, so an
//! earlier slot's free ids reappear in every later slot); and the head
//! slot must hold exactly the currently free capacity.
//!
//! Mirrors the differential suite's two harness forms: a plain seeded
//! sweep that always runs, plus a `proptest!` version for shrinking where
//! the real crate is available.

use tacc_sched::{CapacityWindow, SlotSet, SlotStats};
use tacc_workload::JobId;

/// Deterministic xorshift64* generator — no dependencies, stable forever.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

const CLUSTER_GPUS: u32 = 64;

fn windows_for(case: u64) -> Vec<CapacityWindow> {
    match case % 3 {
        0 => Vec::new(),
        1 => vec![CapacityWindow {
            gpus: 16,
            from_secs: 5_000.0,
            until_secs: 20_000.0,
        }],
        _ => vec![
            CapacityWindow {
                gpus: 8,
                from_secs: 0.0,
                until_secs: f64::INFINITY,
            },
            CapacityWindow {
                gpus: 24,
                from_secs: 10_000.0,
                until_secs: 30_000.0,
            },
        ],
    }
}

/// Asserts every structural slot invariant against the planner's public
/// views, given the capacity that is genuinely free right now.
fn check_invariants(set: &SlotSet, free_now: u32, seed: u64, step: usize) {
    let view = set.view();
    let at = format!("[seed {seed}, step {step}]");
    assert!(!view.is_empty(), "no slots {at}");
    let (first, last) = (view[0], view[view.len() - 1]);
    assert_eq!(first.0, f64::NEG_INFINITY, "open left horizon lost {at}");
    assert_eq!(last.1, f64::INFINITY, "open right horizon lost {at}");
    for pair in view.windows(2) {
        assert!(
            pair[0].0 < pair[1].0,
            "slots out of order or overlapping {at}: {view:?}"
        );
        assert_eq!(
            pair[0].1, pair[1].0,
            "slots do not exactly partition the horizon {at}: {view:?}"
        );
    }
    let procs = set.proc_view();
    assert_eq!(procs.len(), view.len(), "views disagree on slot count {at}");
    for (i, pair) in procs.windows(2).enumerate() {
        assert!(
            pair[1].contains_set(&pair[0]),
            "slot {i} frees not a subset of slot {} {at}",
            i + 1
        );
    }
    assert_eq!(procs[0].len(), free_now, "head slot != free capacity {at}");
    // The far-future slot holds everything back.
    assert_eq!(
        procs[procs.len() - 1].len(),
        CLUSTER_GPUS,
        "full capacity not restored at the far horizon {at}"
    );
}

/// Drives one random place/release walk, checking every invariant after
/// every mutation.
fn random_walk(seed: u64, steps: usize) {
    let mut rng = XorShift::new(seed);
    let mut stats = SlotStats::default();
    let mut set = SlotSet::new();
    let windows = windows_for(seed);
    set.rebuild(CLUSTER_GPUS, std::iter::empty(), &windows, &mut stats);
    let mut free = CLUSTER_GPUS;
    let mut live: Vec<(JobId, u32)> = Vec::new();
    let mut next_id = 1u64;

    for step in 0..steps {
        let place = live.is_empty() || (free > 0 && rng.below(5) < 3);
        if place && free > 0 {
            let gpus = (1 + rng.below(16) as u32).min(free);
            let until = rng.below(40_000) as f64;
            let id = JobId::from_value(next_id);
            next_id += 1;
            set.place(id, gpus, until, &mut stats);
            free -= gpus;
            live.push((id, gpus));
        } else if let Some(pos) = live.len().checked_sub(1) {
            let (id, gpus) = live.swap_remove(rng.below(pos as u64 + 1) as usize);
            assert!(set.release(id, &mut stats), "lost claim {id}");
            free += gpus;
        }
        assert_eq!(set.claim_count(), live.len());
        check_invariants(&set, free, seed, step);
    }
    // Releasing everything must collapse the timeline back to the window
    // skeleton: the only boundaries left belong to capacity windows.
    for (id, gpus) in live.drain(..) {
        assert!(set.release(id, &mut stats));
        free += gpus;
    }
    check_invariants(&set, free, seed, steps);
    let mut skeleton = SlotSet::new();
    let mut fresh_stats = SlotStats::default();
    skeleton.rebuild(CLUSTER_GPUS, std::iter::empty(), &windows, &mut fresh_stats);
    assert_eq!(
        set.view(),
        skeleton.view(),
        "empty planner kept stale boundaries [seed {seed}]"
    );
    assert!(stats.splits >= stats.rebuilds, "counters went backwards");
}

#[test]
fn seeded_walks_preserve_slot_invariants() {
    for seed in 1..=40 {
        random_walk(seed, 120);
    }
}

#[test]
fn deep_walk_preserves_slot_invariants() {
    random_walk(99_991, 1_500);
}

// The proptest form: identical property, with shrinking. The build
// environment may provide a typecheck-only proptest stub; the seeded
// sweeps above carry the coverage there.
mod with_proptest {
    use super::random_walk;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn slot_invariants_hold(seed in 1u64..1_000_000, steps in 20usize..250) {
            random_walk(seed, steps);
        }
    }
}
