//! Differential testing: the optimized [`Scheduler`] against the naive
//! [`ReferenceScheduler`].
//!
//! Every hot-path optimization in the scheduler — sort skipping, the
//! incremental usage vectors, the id-indexed queue, the capacity-index
//! fast paths, the reclaim gate and its cached hypothetical cluster — is
//! claimed to be *decision-invariant*. This suite drives both schedulers
//! through identical randomized operation scripts and requires the
//! `Debug`-formatted decision streams to match byte for byte, round by
//! round.
//!
//! Two harness forms cover the same property:
//!
//! * plain `#[test]` seed sweeps over a deterministic xorshift generator
//!   (always run, everywhere);
//! * a `proptest!` version with shrinking, for richer exploration where
//!   the real proptest crate is available.
//!
//! A red-flip test proves the harness has teeth: two schedulers that
//! genuinely differ (backfill on vs off) must produce diverging streams
//! on a script built to expose the difference.

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, ResourceVec};
use tacc_sched::reference::ReferenceScheduler;
use tacc_sched::{
    BackfillMode, CapacityWindow, PlacementStrategy, PolicyKind, QuotaMode, Scheduler,
    SchedulerConfig, TaskRequest,
};
use tacc_workload::{GroupId, JobId, QosClass};

/// Deterministic xorshift64* generator — no dependencies, stable forever.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

const GROUPS: usize = 4;

fn config(seed: u64) -> SchedulerConfig {
    let mut rng = XorShift::new(seed ^ 0xC0FFEE);
    let policy = [
        PolicyKind::Fifo,
        PolicyKind::Sjf,
        PolicyKind::FairShare,
        PolicyKind::Drf,
        PolicyKind::MultiFactor,
    ][rng.below(5) as usize];
    let placement = [
        PlacementStrategy::Pack,
        PlacementStrategy::Spread,
        PlacementStrategy::TopologyAware,
    ][rng.below(3) as usize];
    let backfill = [
        BackfillMode::None,
        BackfillMode::Easy,
        BackfillMode::Conservative,
    ][rng.below(3) as usize];
    let quota =
        [QuotaMode::Disabled, QuotaMode::Static, QuotaMode::Borrowing][rng.below(3) as usize];
    let time_slice_secs = if rng.below(2) == 0 { Some(600.0) } else { None };
    // Planned capacity windows (64-GPU cluster): none, a mid-script drain,
    // or a permanent holdback stacked with an overlapping drain. They only
    // shape reservation shadows, so both schedulers must agree on them.
    let capacity_windows = match rng.below(4) {
        0 | 1 => Vec::new(),
        2 => vec![CapacityWindow {
            gpus: 16,
            from_secs: 1_800.0,
            until_secs: 7_200.0,
        }],
        _ => vec![
            CapacityWindow {
                gpus: 8,
                from_secs: 0.0,
                until_secs: f64::INFINITY,
            },
            CapacityWindow {
                gpus: 24,
                from_secs: 3_600.0,
                until_secs: 10_800.0,
            },
        ],
    };
    SchedulerConfig {
        policy,
        placement,
        backfill,
        quota,
        quotas: vec![12, 12, 20, 20],
        group_count: GROUPS,
        time_slice_secs,
        capacity_windows,
        ..SchedulerConfig::default()
    }
}

fn cluster() -> Cluster {
    // 2 racks x 4 nodes x 8 GPUs = 64 GPUs, small enough to stay contended.
    Cluster::new(ClusterSpec::uniform(2, 4, GpuModel::A100, 8))
}

fn random_request(rng: &mut XorShift, id: u64, now: f64) -> TaskRequest {
    let workers = 1 + rng.below(4) as u32;
    // Mostly GPU gangs; occasionally a zero-GPU (CPU-side) task to cover
    // the capacity gates' gpus == 0 edge.
    let gpus = [0, 1, 1, 2, 2, 4, 8][rng.below(7) as usize];
    TaskRequest {
        id: JobId::from_value(id),
        group: GroupId::from_index(rng.below(GROUPS as u64) as usize),
        qos: if rng.below(2) == 0 {
            QosClass::Guaranteed
        } else {
            QosClass::BestEffort
        },
        workers,
        per_worker: ResourceVec::gpus_only(gpus),
        est_secs: 60.0 + rng.below(7200) as f64,
        submit_secs: now,
        elastic: rng.below(4) == 0,
    }
}

/// Drives both schedulers through one identical randomized script and
/// returns (optimized stream, reference stream). Streams include every
/// round's `Debug`-formatted decisions plus queue/running census lines.
fn run_script(seed: u64, steps: usize) -> (String, String) {
    let cfg = config(seed);
    let mut opt = Scheduler::new(cfg.clone());
    let mut reference = ReferenceScheduler::new(cfg);
    let mut opt_cluster = cluster();
    let mut ref_cluster = cluster();

    let mut rng = XorShift::new(seed);
    let mut opt_stream = String::new();
    let mut ref_stream = String::new();
    let mut next_id = 1u64;
    let mut live: Vec<JobId> = Vec::new(); // submitted, possibly queued or running
    let mut now = 0.0f64;

    for _ in 0..steps {
        now += rng.below(900) as f64;
        match rng.below(10) {
            // Submit (weighted heaviest so queues build up).
            0..=4 => {
                let request = random_request(&mut rng, next_id, now);
                next_id += 1;
                live.push(request.id);
                opt.submit(request);
                reference.submit(request);
            }
            // Finish a running task (same id fed to both).
            5..=6 => {
                if !live.is_empty() {
                    let id = live[rng.below(live.len() as u64) as usize];
                    let a = opt.task_finished(id, &mut opt_cluster);
                    let b = reference.task_finished(id, &mut ref_cluster);
                    assert_eq!(
                        a.is_some(),
                        b.is_some(),
                        "running sets diverged at finish({id}) [seed {seed}]"
                    );
                    if a.is_some() {
                        live.retain(|&j| j != id);
                    }
                }
            }
            // Cancel a queued task.
            7 => {
                if !live.is_empty() {
                    let id = live[rng.below(live.len() as u64) as usize];
                    let a = opt.cancel(id);
                    let b = reference.cancel(id);
                    assert_eq!(a, b, "cancel({id}) diverged [seed {seed}]");
                    if a {
                        live.retain(|&j| j != id);
                    }
                }
            }
            // Gang rotation (no-op unless the config time-slices).
            8 => {
                let a = opt.rotate(now, &mut opt_cluster);
                let b = reference.rotate(now, &mut ref_cluster);
                opt_stream.push_str(&format!("rotate@{now}: {:?}\n", a.decisions));
                ref_stream.push_str(&format!("rotate@{now}: {:?}\n", b.decisions));
            }
            // Scheduling round.
            _ => {
                let a = opt.schedule(now, &mut opt_cluster);
                let b = reference.schedule(now, &mut ref_cluster);
                opt_stream.push_str(&format!("round@{now}: {:?}\n", a.decisions));
                ref_stream.push_str(&format!("round@{now}: {:?}\n", b.decisions));
            }
        }
        opt_stream.push_str(&format!(
            "census q={} r={} free={}\n",
            opt.queue_len(),
            opt.running_len(),
            opt_cluster.free_gpus()
        ));
        ref_stream.push_str(&format!(
            "census q={} r={} free={}\n",
            reference.queue_len(),
            reference.running_len(),
            ref_cluster.free_gpus()
        ));
    }
    // Drain: keep scheduling with everything finishing so end states meet.
    let a = opt.schedule(now + 1.0, &mut opt_cluster);
    let b = reference.schedule(now + 1.0, &mut ref_cluster);
    opt_stream.push_str(&format!("final: {:?}\n", a.decisions));
    ref_stream.push_str(&format!("final: {:?}\n", b.decisions));
    (opt_stream, ref_stream)
}

fn assert_identical(seed: u64, steps: usize) {
    let (opt, reference) = run_script(seed, steps);
    if opt != reference {
        let diff = opt
            .lines()
            .zip(reference.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match diff {
            Some((i, (a, b))) => panic!(
                "decision streams diverged [seed {seed}] at line {}:\n  optimized: {a}\n  reference: {b}",
                i + 1
            ),
            None => panic!(
                "decision streams diverged [seed {seed}]: lengths {} vs {}",
                opt.len(),
                reference.len()
            ),
        }
    }
}

#[test]
fn seed_sweep_short_scripts() {
    // Broad but shallow: many configurations, shorter scripts.
    for seed in 1..=60 {
        assert_identical(seed, 120);
    }
}

#[test]
fn seed_sweep_long_scripts() {
    // Narrow but deep: fewer configurations, long enough for queues to
    // build, borrowers to accumulate, and reclaims/rotations to trigger.
    for seed in 1..=8 {
        assert_identical(seed * 7919, 900);
    }
}

#[test]
fn red_flip_harness_detects_decision_changes() {
    // Prove the harness would catch a real decision change: run the
    // reference with backfill where the subject has none. A wide job
    // blocks the head of the queue and a narrow job waits behind it —
    // backfill starts the narrow one, strict FIFO must not.
    let base = SchedulerConfig {
        policy: PolicyKind::Fifo,
        placement: PlacementStrategy::Pack,
        backfill: BackfillMode::None,
        quota: QuotaMode::Disabled,
        quotas: vec![0; GROUPS],
        group_count: GROUPS,
        time_slice_secs: None,
        ..SchedulerConfig::default()
    };
    let mut opt = Scheduler::new(base.clone());
    let mut reference = ReferenceScheduler::new(SchedulerConfig {
        backfill: BackfillMode::Easy,
        ..base
    });
    let mut opt_cluster = cluster();
    let mut ref_cluster = cluster();

    // 7 of 8 nodes fully occupied: 8 GPUs stay free, too few for the wide
    // 2x8 gang, plenty for the narrow 1x1.
    let occupant = TaskRequest {
        id: JobId::from_value(1),
        group: GroupId::from_index(0),
        qos: QosClass::Guaranteed,
        workers: 7,
        per_worker: ResourceVec::gpus_only(8),
        est_secs: 3600.0,
        submit_secs: 0.0,
        elastic: false,
    };
    let wide = TaskRequest {
        id: JobId::from_value(2),
        workers: 2,
        est_secs: 600.0,
        submit_secs: 1.0,
        ..occupant
    };
    let narrow = TaskRequest {
        id: JobId::from_value(3),
        workers: 1,
        per_worker: ResourceVec::gpus_only(1),
        est_secs: 60.0,
        submit_secs: 2.0,
        ..occupant
    };
    // Fill the cluster, then queue the blocked wide job and the narrow one.
    opt.submit(occupant);
    reference.submit(occupant);
    let a = opt.schedule(0.0, &mut opt_cluster);
    let b = reference.schedule(0.0, &mut ref_cluster);
    assert_eq!(format!("{:?}", a.decisions), format!("{:?}", b.decisions));
    opt.submit(wide);
    opt.submit(narrow);
    reference.submit(wide);
    reference.submit(narrow);
    let a = opt.schedule(3.0, &mut opt_cluster);
    let b = reference.schedule(3.0, &mut ref_cluster);
    assert_ne!(
        format!("{:?}", a.decisions),
        format!("{:?}", b.decisions),
        "a decision-affecting config change must flip the comparison red"
    );
    // And the direction is the expected one: backfill started the narrow
    // job, strict FIFO started nothing.
    assert_eq!(a.starts().count(), 0);
    assert_eq!(b.starts().count(), 1);
}

#[test]
fn red_flip_slot_boundary_bug_diverges_from_reference() {
    // Prove the differential suite would catch a one-line slot-split bug:
    // inject an off-by-one interval boundary (every claim end shifted by
    // +600s) into the optimized planner only. The skewed reservation
    // shadow admits a backfill candidate the reference rejects, so the
    // decision streams must diverge.
    let cfg = SchedulerConfig {
        policy: PolicyKind::Fifo,
        placement: PlacementStrategy::Pack,
        backfill: BackfillMode::Conservative,
        quota: QuotaMode::Disabled,
        quotas: vec![0; GROUPS],
        group_count: GROUPS,
        time_slice_secs: None,
        ..SchedulerConfig::default()
    };
    let mut opt = Scheduler::new(cfg.clone());
    opt.debug_set_boundary_skew(600.0);
    let mut reference = ReferenceScheduler::new(cfg);
    let mut opt_cluster = cluster();
    let mut ref_cluster = cluster();

    // 7 of 8 nodes occupied until t=3600; 8 GPUs stay free.
    let occupant = TaskRequest {
        id: JobId::from_value(1),
        group: GroupId::from_index(0),
        qos: QosClass::Guaranteed,
        workers: 7,
        per_worker: ResourceVec::gpus_only(8),
        est_secs: 3600.0,
        submit_secs: 0.0,
        elastic: false,
    };
    // Demands the whole cluster: blocked with shadow 3600 and zero extra.
    let wide = TaskRequest {
        id: JobId::from_value(2),
        workers: 8,
        est_secs: 600.0,
        submit_secs: 1.0,
        ..occupant
    };
    // Fits the free node now, but runs until ~3703: past the true shadow
    // (3600 — reference blocks it), within the skewed one (4200 — the
    // buggy planner lets it through).
    let narrow = TaskRequest {
        id: JobId::from_value(3),
        workers: 1,
        est_secs: 3700.0,
        submit_secs: 2.0,
        ..occupant
    };
    opt.submit(occupant);
    reference.submit(occupant);
    let a = opt.schedule(0.0, &mut opt_cluster);
    let b = reference.schedule(0.0, &mut ref_cluster);
    assert_eq!(format!("{:?}", a.decisions), format!("{:?}", b.decisions));
    opt.submit(wide);
    opt.submit(narrow);
    reference.submit(wide);
    reference.submit(narrow);
    let a = opt.schedule(3.0, &mut opt_cluster);
    let b = reference.schedule(3.0, &mut ref_cluster);
    assert_ne!(
        format!("{:?}", a.decisions),
        format!("{:?}", b.decisions),
        "an off-by-one slot boundary must flip the comparison red"
    );
    // And in the expected direction: the skewed planner backfilled the
    // narrow job, the honest reference blocked it.
    assert_eq!(a.starts().count(), 1);
    assert_eq!(b.starts().count(), 0);
}

// The proptest form: identical property, with shrinking. The build
// environment may provide a typecheck-only proptest stub; the plain seed
// sweeps above carry the coverage there, while environments with the real
// crate get shrinking on top.
mod with_proptest {
    use super::assert_identical;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn decision_streams_match(seed in 1u64..1_000_000, steps in 50usize..300) {
            assert_identical(seed, steps);
        }
    }
}
