//! Scheduler behaviour tests: FIFO/backfill/quota/gang/elastic/rotation
//! semantics and decision tracing, exercised through the public API.
//! These were the `scheduler.rs` unit tests before the module was split
//! into `rounds`/`gang`/`elastic` submodules.

use tacc_cluster::{Cluster, ClusterSpec, GpuModel, ResourceVec};
use tacc_sched::{
    BackfillMode, PolicyKind, QuotaMode, Scheduler, SchedulerConfig, SkipReason, TaskRequest,
};
use tacc_workload::{GroupId, JobId, QosClass};

fn cluster() -> Cluster {
    Cluster::new(ClusterSpec::uniform(1, 4, GpuModel::A100, 8))
}

fn sched(config: SchedulerConfig) -> Scheduler {
    Scheduler::new(config)
}

/// Single-worker request; `gpus` must fit one node (≤ 8 here).
fn simple_request(id: u64, group: usize, gpus: u32, est: f64, submit: f64) -> TaskRequest {
    TaskRequest {
        id: JobId::from_value(id),
        group: GroupId::from_index(group),
        qos: QosClass::Guaranteed,
        workers: 1,
        per_worker: ResourceVec::gpus_only(gpus),
        est_secs: est,
        submit_secs: submit,
        elastic: false,
    }
}

/// Gang request: `workers` × `per_gpu` GPUs.
fn gang_request(
    id: u64,
    group: usize,
    workers: u32,
    per_gpu: u32,
    est: f64,
    submit: f64,
) -> TaskRequest {
    TaskRequest {
        workers,
        per_worker: ResourceVec::gpus_only(per_gpu),
        ..simple_request(id, group, 0, est, submit)
    }
}

#[test]
fn starts_what_fits_fifo() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    for i in 0..3 {
        s.submit(simple_request(i, 0, 8, 100.0, i as f64));
    }
    let out = s.schedule(10.0, &mut c);
    assert_eq!(out.starts().count(), 3);
    assert_eq!(s.running_len(), 3);
    assert_eq!(s.queue_len(), 0);
    assert_eq!(c.free_gpus(), 8);
    assert!(c.check_invariants());
}

#[test]
fn finish_frees_resources() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    s.submit(gang_request(1, 0, 4, 8, 100.0, 0.0));
    let out = s.schedule(0.0, &mut c);
    assert_eq!(out.starts().count(), 1);
    assert_eq!(c.free_gpus(), 0);
    let done = s.task_finished(JobId::from_value(1), &mut c).expect("ran");
    assert_eq!(done.request.id.value(), 1);
    assert_eq!(c.free_gpus(), 32);
    assert_eq!(s.running_len(), 0);
    assert!(s.task_finished(JobId::from_value(1), &mut c).is_none());
}

#[test]
fn no_backfill_blocks_behind_head() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        backfill: BackfillMode::None,
        ..SchedulerConfig::default()
    });
    // Fill 3 of 4 nodes; head needs 2 nodes (blocked), tiny job behind
    // could fit but strict FIFO must stall.
    s.submit(gang_request(1, 0, 3, 8, 1000.0, 0.0));
    let filled = s.schedule(0.0, &mut c);
    assert_eq!(filled.starts().count(), 1);
    s.submit(gang_request(2, 0, 2, 8, 1000.0, 1.0));
    s.submit(simple_request(3, 0, 1, 10.0, 2.0));
    let out = s.schedule(5.0, &mut c);
    assert!(out.starts().count() == 0, "strict FIFO must stall");
}

#[test]
fn easy_backfill_lets_short_jobs_through() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default()); // Easy
    s.submit(gang_request(1, 0, 3, 8, 1000.0, 0.0));
    s.schedule(0.0, &mut c);
    // Head: a 2-node gang is blocked until t≈1000 (est). A short 4-GPU
    // job finishes before the shadow: it backfills.
    s.submit(gang_request(2, 0, 2, 8, 500.0, 1.0));
    s.submit(simple_request(3, 0, 4, 100.0, 2.0));
    let out = s.schedule(5.0, &mut c);
    assert_eq!(out.starts().count(), 1);
    assert_eq!(
        out.starts().next().expect("one start").request.id.value(),
        3
    );
    assert!(out.starts().next().expect("one start").backfilled);
    assert_eq!(s.backfill_starts(), 1);
}

#[test]
fn easy_backfill_respects_shadow() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    // 24 GPUs busy until est t≈100; one node (8 GPUs) free.
    s.submit(gang_request(1, 0, 3, 8, 100.0, 0.0));
    s.schedule(0.0, &mut c);
    // Head blocked: needs the whole cluster, shadow at t≈100, extra 0.
    s.submit(gang_request(2, 0, 4, 8, 1000.0, 1.0));
    // Long small job: runs past the shadow and exceeds extra → refused.
    s.submit(simple_request(3, 0, 4, 9999.0, 2.0));
    // Short small job: finishes before the shadow → backfills.
    s.submit(simple_request(4, 0, 4, 50.0, 3.0));
    let out = s.schedule(5.0, &mut c);
    let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
    assert_eq!(started, vec![4]);
}

#[test]
fn conservative_respects_all_reservations() {
    let mut c = cluster();
    // Conservative: a candidate must clear every blocked job's shadow.
    let mut s = sched(SchedulerConfig {
        backfill: BackfillMode::Conservative,
        ..SchedulerConfig::default()
    });
    s.submit(gang_request(1, 0, 3, 8, 100.0, 0.0));
    s.schedule(0.0, &mut c);
    // Blocked #1: 2 nodes, shadow ≈ t=100, extra = 32-16 = 16.
    s.submit(gang_request(2, 0, 2, 8, 50.0, 1.0));
    // Blocked #2: whole cluster, shadow ≈ t=100, extra 0.
    s.submit(gang_request(3, 0, 4, 8, 50.0, 2.0));
    // Candidate: est 200s runs past both shadows; it fits in blocked
    // #1's extra (4 ≤ 16) so EASY would admit it, but blocked #2 leaves
    // zero extra ⇒ conservative refuses.
    s.submit(simple_request(4, 0, 4, 200.0, 3.0));
    let out = s.schedule(5.0, &mut c);
    assert_eq!(out.starts().count(), 0);
}

#[test]
fn gang_places_atomically() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    let gang = TaskRequest {
        workers: 4,
        per_worker: ResourceVec::gpus_only(8),
        ..simple_request(1, 0, 0, 100.0, 0.0)
    };
    s.submit(gang);
    let out = s.schedule(0.0, &mut c);
    assert_eq!(out.starts().count(), 1);
    assert_eq!(
        out.starts().next().expect("one start").worker_nodes.len(),
        4
    );
    assert_eq!(c.free_gpus(), 0);
}

#[test]
fn static_quota_strands_idle_capacity() {
    let mut c = cluster(); // 32 GPUs
    let mut s = sched(SchedulerConfig {
        quota: QuotaMode::Static,
        quotas: vec![8, 24],
        group_count: 2,
        ..SchedulerConfig::default()
    });
    // Group 0 wants 16 GPUs: only 8 admitted even though 32 are free.
    s.submit(simple_request(1, 0, 8, 100.0, 0.0));
    s.submit(simple_request(2, 0, 8, 100.0, 1.0));
    let out = s.schedule(0.0, &mut c);
    let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
    assert_eq!(started, vec![1]);
    assert_eq!(c.free_gpus(), 24);
}

#[test]
fn borrowing_quota_lets_best_effort_use_idle() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        quota: QuotaMode::Borrowing,
        quotas: vec![8, 24],
        group_count: 2,
        ..SchedulerConfig::default()
    });
    s.submit(simple_request(1, 0, 8, 100.0, 0.0)); // guaranteed, in quota
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..gang_request(2, 0, 2, 8, 100.0, 1.0) // borrows group 1's idle
    });
    let out = s.schedule(0.0, &mut c);
    assert_eq!(out.starts().count(), 2);
    assert_eq!(c.free_gpus(), 8);
}

#[test]
fn reclaim_preempts_youngest_borrower() {
    let mut c = cluster(); // 32 GPUs
    let mut s = sched(SchedulerConfig {
        quota: QuotaMode::Borrowing,
        quotas: vec![16, 16],
        group_count: 2,
        ..SchedulerConfig::default()
    });
    // Group 0 borrows the whole cluster with two 16-GPU best-effort gangs.
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..gang_request(1, 0, 2, 8, 1000.0, 0.0)
    });
    s.schedule(0.0, &mut c);
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..gang_request(2, 0, 2, 8, 1000.0, 10.0)
    });
    s.schedule(10.0, &mut c);
    assert_eq!(c.free_gpus(), 0);
    // Group 1 submits a guaranteed job: the *younger* borrower (job 2)
    // is evicted.
    s.submit(gang_request(3, 1, 2, 8, 500.0, 20.0));
    let out = s.schedule(20.0, &mut c);
    assert_eq!(out.preemptions().count(), 1);
    assert_eq!(
        out.preemptions().next().expect("one preemption").0.value(),
        2
    );
    assert_eq!(out.starts().count(), 1);
    assert_eq!(
        out.starts().next().expect("one start").request.id.value(),
        3
    );
    assert_eq!(s.preemption_count(), 1);
    // The victim went back to the queue.
    assert_eq!(s.queue_len(), 1);
    assert!(c.check_invariants());
}

#[test]
fn guaranteed_never_preempted() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        quota: QuotaMode::Borrowing,
        quotas: vec![32, 32],
        group_count: 2,
        ..SchedulerConfig::default()
    });
    // Group 0 legitimately uses all 32 under guarantee (quota 32).
    s.submit(gang_request(1, 0, 4, 8, 1000.0, 0.0));
    s.schedule(0.0, &mut c);
    // Group 1's guaranteed job finds no room and nothing preemptible.
    s.submit(simple_request(2, 1, 8, 100.0, 1.0));
    let out = s.schedule(1.0, &mut c);
    assert_eq!(out.starts().count(), 0);
    assert_eq!(out.preemptions().count(), 0);
}

#[test]
fn fair_share_alternates_groups() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        policy: PolicyKind::FairShare,
        quotas: vec![16, 16],
        group_count: 2,
        ..SchedulerConfig::default()
    });
    // Group 0 floods; group 1 submits one job later. With fair share,
    // group 1's job goes first once group 0 is running jobs.
    s.submit(gang_request(1, 0, 2, 8, 100.0, 0.0));
    s.schedule(0.0, &mut c);
    s.submit(gang_request(2, 0, 2, 8, 100.0, 1.0));
    s.submit(gang_request(3, 1, 2, 8, 100.0, 2.0));
    let out = s.schedule(2.0, &mut c);
    // Group 1's job jumps ahead of group 0's second job; the cluster is
    // then full, so group 0's job keeps waiting.
    let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
    assert_eq!(started, vec![3]);
    assert_eq!(s.queue_len(), 1);
}

#[test]
fn cancel_removes_queued_only() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    s.submit(simple_request(1, 0, 8, 100.0, 0.0));
    assert!(s.cancel(JobId::from_value(1)));
    assert!(!s.cancel(JobId::from_value(1)));
    let out = s.schedule(0.0, &mut c);
    assert!(out.is_empty());
}

#[test]
fn rotation_gives_queued_work_a_turn() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        time_slice_secs: Some(600.0),
        ..SchedulerConfig::default()
    });
    // A best-effort gang holds the whole cluster.
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..gang_request(1, 0, 4, 8, 10_000.0, 0.0)
    });
    s.schedule(0.0, &mut c);
    assert_eq!(c.free_gpus(), 0);
    // A guaranteed job arrives and waits.
    s.submit(simple_request(2, 1, 8, 600.0, 100.0));
    assert!(s.schedule(100.0, &mut c).is_empty());
    // Before the quantum expires, rotation is a no-op.
    assert!(s.rotate(300.0, &mut c).is_empty());
    // After the quantum, the gang rotates out and the queued job runs.
    let out = s.rotate(700.0, &mut c);
    let preempted: Vec<u64> = out.preemptions().map(|(id, _)| id.value()).collect();
    assert_eq!(preempted, vec![1]);
    let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
    // The freed space admits the guaranteed job; the rotated gang may
    // restart in the remainder.
    assert!(started.contains(&2), "started: {started:?}");
    assert!(c.check_invariants());
}

#[test]
fn rotation_never_evicts_in_vain() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        time_slice_secs: Some(600.0),
        ..SchedulerConfig::default()
    });
    // Best-effort job on one node only.
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..simple_request(1, 0, 8, 10_000.0, 0.0)
    });
    s.schedule(0.0, &mut c);
    // Queued gang needs the whole cluster — evicting the one BE job
    // cannot help (3 nodes free + 1 evicted = 4 nodes, it WOULD fit).
    // Use a 5-node request instead: infeasible even after eviction.
    s.submit(gang_request(2, 1, 5, 8, 600.0, 100.0));
    let out = s.rotate(700.0, &mut c);
    assert!(out.is_empty(), "eviction would not let anything start");
    assert_eq!(s.running_len(), 1);
}

#[test]
fn rotation_disabled_or_idle_is_noop() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default()); // no time slice
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..simple_request(1, 0, 8, 10_000.0, 0.0)
    });
    s.schedule(0.0, &mut c);
    s.submit(gang_request(2, 1, 4, 8, 600.0, 100.0));
    assert!(s.rotate(10_000.0, &mut c).is_empty());
    // Enabled but empty queue: also a no-op.
    let mut s2 = sched(SchedulerConfig {
        time_slice_secs: Some(60.0),
        ..SchedulerConfig::default()
    });
    let mut c2 = cluster();
    s2.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..simple_request(3, 0, 8, 10_000.0, 0.0)
    });
    s2.schedule(0.0, &mut c2);
    assert!(s2.rotate(10_000.0, &mut c2).is_empty());
}

#[test]
fn elastic_gang_shrinks_to_fit() {
    let mut c = cluster(); // 4 nodes x 8
    let mut s = sched(SchedulerConfig::default());
    // Occupy 3 nodes; an elastic 4x8 gang shrinks to 1 worker.
    s.submit(gang_request(1, 0, 3, 8, 10_000.0, 0.0));
    s.schedule(0.0, &mut c);
    s.submit(TaskRequest {
        elastic: true,
        ..gang_request(2, 0, 4, 8, 1000.0, 1.0)
    });
    let out = s.schedule(1.0, &mut c);
    let start = out.starts().next().expect("elastic start");
    assert_eq!(start.request.workers, 4);
    assert_eq!(start.granted_workers, 1);
    assert_eq!(c.free_gpus(), 0);
    // The running record reflects the grant; est_end is scaled 4x.
    let running = s.running_task(start.request.id).expect("running");
    assert_eq!(running.request.workers, 1);
    assert_eq!(running.requested_workers, 4);
    assert!((running.est_end_secs - (1.0 + 4000.0)).abs() < 1e-9);
    assert!(c.check_invariants());
}

#[test]
fn inelastic_gang_still_all_or_nothing() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    s.submit(gang_request(1, 0, 3, 8, 10_000.0, 0.0));
    s.schedule(0.0, &mut c);
    s.submit(gang_request(2, 0, 4, 8, 1000.0, 1.0)); // not elastic
    let out = s.schedule(1.0, &mut c);
    assert_eq!(out.starts().count(), 0);
}

#[test]
fn preempted_elastic_task_requeues_full_size() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        quota: QuotaMode::Borrowing,
        quotas: vec![16, 16],
        group_count: 2,
        ..SchedulerConfig::default()
    });
    // Elastic BE gang wants 4 workers, gets all 4 nodes.
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        elastic: true,
        ..gang_request(1, 0, 4, 8, 10_000.0, 0.0)
    });
    s.schedule(0.0, &mut c);
    // Guaranteed job reclaims: the elastic gang is evicted, restarts
    // shrunk in the leftover space, still requesting 4 workers.
    s.submit(gang_request(2, 1, 2, 8, 500.0, 10.0));
    s.schedule(10.0, &mut c);
    // The victim re-queued and (in a later round) restarts elastic.
    let out2 = s.schedule(11.0, &mut c);
    let restarted: Vec<_> = out2.starts().collect();
    if let Some(start) = restarted.first() {
        assert_eq!(start.request.workers, 4, "requeued at full size");
        assert!(start.granted_workers < 4, "restarted shrunk");
    }
    assert!(c.check_invariants());
}

#[test]
#[should_panic(expected = "duplicate")]
fn duplicate_submission_panics() {
    let mut s = sched(SchedulerConfig::default());
    s.submit(simple_request(1, 0, 1, 10.0, 0.0));
    s.submit(simple_request(1, 0, 1, 10.0, 0.0));
}

#[test]
fn trace_records_quota_skip_reason() {
    let mut c = cluster(); // 32 GPUs
    let mut s = sched(SchedulerConfig {
        quota: QuotaMode::Static,
        quotas: vec![8],
        group_count: 1,
        ..SchedulerConfig::default()
    });
    s.submit(simple_request(1, 0, 8, 100.0, 0.0));
    s.submit(simple_request(2, 0, 8, 100.0, 1.0));
    s.schedule(0.0, &mut c);
    // Job 1 started; job 2 is quota-blocked and must say so.
    assert!(s
        .decision_trace()
        .latest_skip(JobId::from_value(1))
        .is_none());
    let (at, reason) = s
        .decision_trace()
        .latest_skip(JobId::from_value(2))
        .expect("job 2 skipped");
    assert_eq!(at, 0.0);
    let text = reason.to_string();
    assert!(
        text.contains("quota exhausted") && text.contains("8/8"),
        "unexpected reason: {text}"
    );
}

#[test]
fn trace_records_placement_and_head_of_line_skips() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        backfill: BackfillMode::None,
        ..SchedulerConfig::default()
    });
    s.submit(gang_request(1, 0, 3, 8, 1000.0, 0.0));
    s.schedule(0.0, &mut c);
    s.submit(gang_request(2, 0, 2, 8, 1000.0, 1.0));
    s.submit(simple_request(3, 0, 1, 10.0, 2.0));
    s.schedule(5.0, &mut c);
    let (_, head) = s
        .decision_trace()
        .latest_skip(JobId::from_value(2))
        .expect("head is capacity-blocked");
    assert!(
        matches!(head, SkipReason::NoFeasiblePlacement { free_gpus: 8, .. }),
        "unexpected: {head:?}"
    );
    let (_, tail) = s
        .decision_trace()
        .latest_skip(JobId::from_value(3))
        .expect("tail stalls behind head");
    assert!(
        matches!(tail, SkipReason::HeadOfLineBlocked { behind } if behind.value() == 2),
        "unexpected: {tail:?}"
    );
}

#[test]
fn trace_records_backfill_blocked() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default()); // Easy backfill
    s.submit(gang_request(1, 0, 3, 8, 100.0, 0.0));
    s.schedule(0.0, &mut c);
    s.submit(gang_request(2, 0, 4, 8, 1000.0, 1.0)); // blocked head
    s.submit(simple_request(3, 0, 4, 9999.0, 2.0)); // too long to backfill
    s.schedule(5.0, &mut c);
    let (_, reason) = s
        .decision_trace()
        .latest_skip(JobId::from_value(3))
        .expect("long job refused backfill");
    assert!(
        matches!(reason, SkipReason::BackfillBlocked { .. }),
        "unexpected: {reason:?}"
    );
    // Once the job starts, the skip entry clears.
    s.task_finished(JobId::from_value(1), &mut c);
    s.schedule(100.0, &mut c);
    assert!(s
        .decision_trace()
        .latest_skip(JobId::from_value(2))
        .is_none());
}

#[test]
fn trace_round_has_latency_and_queue_depth() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    s.submit(simple_request(1, 0, 8, 100.0, 0.0));
    s.schedule(0.0, &mut c);
    let rounds: Vec<_> = s.decision_trace().rounds().collect();
    assert_eq!(rounds.len(), 1);
    assert_eq!(rounds[0].queue_len, 1);
    assert_eq!(rounds[0].started, vec![JobId::from_value(1)]);
    assert!(rounds[0].skips.is_empty());
    // Idle rounds are not traced.
    s.schedule(1.0, &mut c);
    assert_eq!(s.decision_trace().len(), 1);
}

#[test]
fn attached_registry_sees_round_metrics() {
    use tacc_obs::MetricsRegistry;
    let registry = MetricsRegistry::new();
    let mut c = cluster();
    let mut s = sched(SchedulerConfig::default());
    s.attach_registry(&registry);
    s.submit(simple_request(1, 0, 8, 100.0, 0.0));
    s.schedule(0.0, &mut c);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("tacc_sched_rounds_total"), Some(1));
    assert_eq!(
        snap.histogram("tacc_sched_round_latency_seconds")
            .map(|h| h.count),
        Some(1)
    );
    assert_eq!(snap.gauge("tacc_sched_running_tasks"), Some(1.0));
    assert_eq!(snap.gauge("tacc_sched_queue_depth"), Some(0.0));
}

#[test]
fn rotation_is_traced() {
    let mut c = cluster();
    let mut s = sched(SchedulerConfig {
        time_slice_secs: Some(600.0),
        ..SchedulerConfig::default()
    });
    s.submit(TaskRequest {
        qos: QosClass::BestEffort,
        ..gang_request(1, 0, 4, 8, 10_000.0, 0.0)
    });
    s.schedule(0.0, &mut c);
    s.submit(simple_request(2, 1, 8, 600.0, 100.0));
    s.schedule(100.0, &mut c);
    s.rotate(700.0, &mut c);
    let preempted_in_trace = s
        .decision_trace()
        .rounds()
        .any(|r| r.preempted.contains(&JobId::from_value(1)));
    assert!(
        preempted_in_trace,
        "rotation eviction must appear in the trace"
    );
}
