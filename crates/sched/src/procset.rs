//! Sorted disjoint interval sets over abstract GPU-slot ids.
//!
//! The temporal planner ([`SlotSet`](crate::SlotSet)) tracks *which*
//! capacity is free in each time slot, not just how much. A [`ProcSet`] is
//! OAR's resource-interval representation: a normalized list of half-open
//! `[start, end)` ranges of abstract resource ids, kept sorted, disjoint
//! and non-adjacent, so set algebra (union, subtraction, containment) is a
//! linear merge instead of a per-id scan.
//!
//! The ids are *abstract*: the planner assigns a contiguous id block per
//! running claim and does not attempt to mirror physical node indices.
//! Reservation probing only ever needs counts and interval intersections,
//! and the actual start of a job is still subject to a real placement
//! check against the physical cluster.

/// A normalized set of abstract resource ids: sorted, disjoint,
/// non-adjacent half-open `[start, end)` ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcSet {
    ranges: Vec<(u32, u32)>,
}

impl ProcSet {
    /// The empty set.
    pub fn new() -> ProcSet {
        ProcSet::default()
    }

    /// The set `[start, end)`; empty when `start >= end`.
    pub fn from_range(start: u32, end: u32) -> ProcSet {
        if start >= end {
            return ProcSet::default();
        }
        ProcSet {
            ranges: vec![(start, end)],
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> u32 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The normalized ranges (tests and debugging).
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// The lowest `n` ids of the set as a new set. When the set holds
    /// fewer than `n` ids the whole set is returned (callers that require
    /// exactly `n` check `len()` on the result).
    pub fn take_first(&self, n: u32) -> ProcSet {
        let mut left = n;
        let mut out = Vec::new();
        for &(s, e) in &self.ranges {
            if left == 0 {
                break;
            }
            let width = e - s;
            if width <= left {
                out.push((s, e));
                left -= width;
            } else {
                out.push((s, s + left));
                left = 0;
            }
        }
        ProcSet { ranges: out }
    }

    /// Whether every id of `other` is also in `self`.
    pub fn contains_set(&self, other: &ProcSet) -> bool {
        let mut i = 0;
        for &(s, e) in &other.ranges {
            // A normalized (non-adjacent) containing set holds `[s, e)`
            // within exactly one of its ranges, if at all.
            while i < self.ranges.len() && self.ranges[i].1 < e {
                i += 1;
            }
            match self.ranges.get(i) {
                Some(&(cs, ce)) if cs <= s && e <= ce => {}
                _ => return false,
            }
        }
        true
    }

    /// In-place union: `self = self ∪ other` (linear merge).
    pub fn union(&mut self, other: &ProcSet) {
        if other.ranges.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.ranges.len() + other.ranges.len());
        let mut a = self.ranges.iter().copied().peekable();
        let mut b = other.ranges.iter().copied().peekable();
        let mut pending: Option<(u32, u32)> = None;
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => x.0 <= y.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let Some(r) = (if take_a { a.next() } else { b.next() }) else {
                break;
            };
            match pending {
                None => pending = Some(r),
                // Overlapping or adjacent ranges coalesce; normalization
                // keeps the representation canonical (PartialEq == set
                // equality).
                Some(p) if r.0 <= p.1 => pending = Some((p.0, p.1.max(r.1))),
                Some(p) => {
                    merged.push(p);
                    pending = Some(r);
                }
            }
        }
        if let Some(p) = pending {
            merged.push(p);
        }
        self.ranges = merged;
    }

    /// In-place difference: `self = self \ other` (linear merge).
    pub fn subtract(&mut self, other: &ProcSet) {
        if other.ranges.is_empty() || self.ranges.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.ranges.len() + other.ranges.len());
        let mut bi = 0;
        for &(start, end) in &self.ranges {
            let mut s = start;
            // Subtrahend ranges entirely before this range can never
            // matter again (both lists ascend).
            while bi < other.ranges.len() && other.ranges[bi].1 <= s {
                bi += 1;
            }
            let mut j = bi;
            while j < other.ranges.len() && other.ranges[j].0 < end {
                let (bs, be) = other.ranges[j];
                if bs > s {
                    out.push((s, bs));
                }
                if be >= end {
                    s = end;
                    break;
                }
                if be > s {
                    s = be;
                }
                j += 1;
            }
            if s < end {
                out.push((s, end));
            }
        }
        self.ranges = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u32, u32)]) -> ProcSet {
        let mut out = ProcSet::new();
        for &(s, e) in ranges {
            out.union(&ProcSet::from_range(s, e));
        }
        out
    }

    #[test]
    fn from_range_and_len() {
        assert_eq!(ProcSet::from_range(2, 7).len(), 5);
        assert!(ProcSet::from_range(3, 3).is_empty());
        assert!(ProcSet::from_range(5, 3).is_empty());
    }

    #[test]
    fn union_coalesces_overlap_and_adjacency() {
        let mut a = set(&[(0, 4), (10, 12)]);
        a.union(&set(&[(4, 6), (11, 15)]));
        assert_eq!(a.ranges(), &[(0, 6), (10, 15)]);
        assert_eq!(a.len(), 11);
    }

    #[test]
    fn subtract_splits_and_clips() {
        let mut a = set(&[(0, 10)]);
        a.subtract(&set(&[(2, 4), (6, 7)]));
        assert_eq!(a.ranges(), &[(0, 2), (4, 6), (7, 10)]);

        let mut b = set(&[(0, 4), (8, 12)]);
        b.subtract(&set(&[(2, 10)]));
        assert_eq!(b.ranges(), &[(0, 2), (10, 12)]);

        let mut c = set(&[(0, 4)]);
        c.subtract(&set(&[(0, 4)]));
        assert!(c.is_empty());
    }

    #[test]
    fn subtract_range_spanning_multiple() {
        let mut a = set(&[(0, 2), (4, 6), (8, 10)]);
        a.subtract(&set(&[(1, 9)]));
        assert_eq!(a.ranges(), &[(0, 1), (9, 10)]);
    }

    #[test]
    fn take_first_splits_a_range() {
        let a = set(&[(0, 2), (5, 9)]);
        assert_eq!(a.take_first(0).ranges(), &[] as &[(u32, u32)]);
        assert_eq!(a.take_first(2).ranges(), &[(0, 2)]);
        assert_eq!(a.take_first(3).ranges(), &[(0, 2), (5, 6)]);
        assert_eq!(a.take_first(6).ranges(), &[(0, 2), (5, 9)]);
        // Asking for more than the set holds returns the whole set.
        assert_eq!(a.take_first(99).ranges(), &[(0, 2), (5, 9)]);
    }

    #[test]
    fn containment() {
        let a = set(&[(0, 8), (10, 14)]);
        assert!(a.contains_set(&set(&[(1, 3), (11, 14)])));
        assert!(a.contains_set(&ProcSet::new()));
        assert!(!a.contains_set(&set(&[(7, 11)])));
        assert!(!set(&[(0, 2)]).contains_set(&set(&[(0, 3)])));
    }

    #[test]
    fn union_subtract_roundtrip_is_identity() {
        // Subtracting a subset and unioning it back restores the original
        // normalized representation — the invariant release() relies on.
        let full = set(&[(0, 64)]);
        let taken = full.take_first(13);
        let mut rest = full.clone();
        rest.subtract(&taken);
        assert_eq!(rest.len(), 51);
        let mut back = rest.clone();
        back.union(&taken);
        assert_eq!(back, full);
    }
}
