//! # tacc-sched
//!
//! Layer 3 of the TACC workflow abstraction — the **scheduling layer**.
//!
//! The paper uses Slurm as the backbone of this layer and lists the policy
//! machinery it relies on: "fair-share scheduling, gang scheduling
//! (time-slicing jobs), backfill scheduling, user quota management, and
//! task preemption", with priorities per user or group. This crate
//! implements that policy suite from scratch against the
//! [`tacc_cluster::Cluster`] substrate:
//!
//! * **Ordering policies** ([`PolicyKind`]): FIFO, shortest-job-first (on
//!   the user's noisy estimate), fair-share (instantaneous usage over
//!   quota) and DRF (dominant resource fairness).
//! * **Placement strategies** ([`PlacementStrategy`]): packing (best-fit,
//!   minimizes fragmentation), spreading (worst-fit, minimizes
//!   interference) and topology-aware (minimizes racks spanned by a gang) —
//!   compared in experiment T2.
//! * **Gang scheduling**: multi-worker tasks place all-or-nothing.
//! * **Backfill** ([`BackfillMode`]): EASY and conservative variants
//!   (experiment F4).
//! * **Quota management with borrowing** ([`QuotaMode`]): per-group GPU
//!   quotas, best-effort jobs borrowing idle capacity, and
//!   reclaim-by-preemption when owners return (experiments F2/F5).
//!
//! The scheduler is deliberately *mechanism over the cluster, not owner of
//! it*: the platform passes `&mut Cluster` into [`Scheduler::schedule`],
//! which commits allocations and returns [`Decision`]s for the platform to
//! act on.
//!
//! ## Example
//!
//! ```
//! use tacc_cluster::{Cluster, ClusterSpec, GpuModel, ResourceVec};
//! use tacc_sched::{Scheduler, SchedulerConfig, TaskRequest};
//! use tacc_workload::{GroupId, JobId, QosClass};
//!
//! let mut cluster = Cluster::new(ClusterSpec::uniform(1, 2, GpuModel::A100, 8));
//! let mut sched = Scheduler::new(SchedulerConfig::default());
//! sched.submit(TaskRequest {
//!     id: JobId::from_value(1),
//!     group: GroupId::from_index(0),
//!     qos: QosClass::Guaranteed,
//!     workers: 1,
//!     per_worker: ResourceVec::gpus_only(4),
//!     est_secs: 600.0,
//!     submit_secs: 0.0,
//!     elastic: false,
//! });
//! let outcome = sched.schedule(0.0, &mut cluster);
//! assert_eq!(outcome.starts().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backfill;
mod placement;
mod policy;
mod procset;
mod quota;
pub mod reference;
mod request;
mod scheduler;
mod slotset;

pub use backfill::BackfillMode;
pub use placement::{PlacementStrategy, PlanStats, Planner};
pub use policy::PolicyKind;
pub use procset::ProcSet;
pub use quota::{QuotaMode, QuotaTable};
pub use request::{Decision, RunningTask, SchedOutcome, StartedTask, TaskRequest};
pub use scheduler::{Scheduler, SchedulerConfig, WorkCounters};
pub use slotset::{CapacityWindow, SlotSet, SlotStats};
// Decision-tracing vocabulary, re-exported so scheduler callers need not
// depend on `tacc-obs` directly.
pub use tacc_obs::{DecisionTraceLog, JobSkip, RoundTrace, SkipReason};

// Schedulers run inside per-thread platforms in the parallel experiment
// runner; this guard keeps the scheduler state thread-portable.
const _: () = {
    const fn sendable<T: Send>() {}
    sendable::<Scheduler>();
    sendable::<SchedulerConfig>();
};
