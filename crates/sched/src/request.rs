//! Scheduler-facing task descriptions and scheduling outcomes.

use serde::{Deserialize, Serialize};

use tacc_cluster::{Lease, LeaseId, NodeId, ResourceVec};
use tacc_workload::{GroupId, JobId, QosClass};

/// What the scheduling layer knows about a task awaiting placement.
///
/// Deliberately *not* the full [`tacc_workload::TaskSchema`]: the scheduler
/// sees the user's estimate, never the oracle service time — exactly the
/// information asymmetry real schedulers operate under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRequest {
    /// Job identifier (also used as the cluster lease owner tag).
    pub id: JobId,
    /// Owning group, for fair-share and quota accounting.
    pub group: GroupId,
    /// QoS class: guaranteed (quota) or best-effort (borrowed, preemptible).
    pub qos: QosClass,
    /// Gang size; all workers place atomically.
    pub workers: u32,
    /// Resources per worker, co-located on one node.
    pub per_worker: ResourceVec,
    /// User-estimated duration in seconds (noisy).
    pub est_secs: f64,
    /// Submission time in simulation seconds.
    pub submit_secs: f64,
    /// Whether the gang may be admitted shrunk (elastic admission).
    pub elastic: bool,
}

impl TaskRequest {
    /// Total GPUs across the gang.
    pub fn total_gpus(&self) -> u32 {
        self.per_worker.gpus * self.workers
    }

    /// Total resources across the gang.
    pub fn total_resources(&self) -> ResourceVec {
        let mut total = ResourceVec::ZERO;
        for _ in 0..self.workers {
            total += self.per_worker;
        }
        total
    }
}

/// Scheduler-side record of a running task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningTask {
    /// The request **as granted** (elastic tasks may run with fewer
    /// workers than submitted).
    pub request: TaskRequest,
    /// The gang size originally requested (equals `request.workers` for
    /// inelastic tasks); restored on requeue after preemption.
    pub requested_workers: u32,
    /// The lease holding its resources.
    pub lease_id: LeaseId,
    /// Nodes the gang landed on (one entry per worker, in worker order).
    pub worker_nodes: Vec<NodeId>,
    /// When it started (last resume), simulation seconds.
    pub start_secs: f64,
    /// Estimated completion (start + user estimate), used by backfill.
    pub est_end_secs: f64,
}

/// A task the scheduler just started, with everything the execution layer
/// needs to model it.
#[derive(Debug, Clone, PartialEq)]
pub struct StartedTask {
    /// The request that was placed (with its original gang size).
    pub request: TaskRequest,
    /// Workers actually granted (< `request.workers` for a shrunken
    /// elastic start).
    pub granted_workers: u32,
    /// The committed lease.
    pub lease: Lease,
    /// Node of each worker (workers on the same node repeat the id).
    pub worker_nodes: Vec<NodeId>,
    /// True if this start was a backfill (started ahead of blocked jobs).
    pub backfilled: bool,
}

/// One scheduling action, in the order the scheduler took them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Decision {
    /// The task was placed and its lease committed.
    Start(StartedTask),
    /// A running best-effort task was evicted to reclaim quota; its lease
    /// has been released and the task re-queued inside the scheduler.
    Preempt {
        /// The evicted job.
        id: JobId,
        /// The group whose guaranteed demand triggered the reclaim.
        reclaimed_for: GroupId,
    },
}

/// Everything a call to [`crate::Scheduler::schedule`] did, **in the order
/// it happened**.
///
/// Order matters: a reclaim can preempt a best-effort task that was started
/// earlier in the same round, so consumers must process decisions
/// sequentially (the platform does).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedOutcome {
    /// The round's decisions in execution order.
    pub decisions: Vec<Decision>,
}

impl SchedOutcome {
    /// True when the round changed nothing.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The tasks started this round, in order.
    pub fn starts(&self) -> impl Iterator<Item = &StartedTask> {
        self.decisions.iter().filter_map(|d| match d {
            Decision::Start(s) => Some(s),
            _ => None,
        })
    }

    /// The preemptions this round, in order.
    pub fn preemptions(&self) -> impl Iterator<Item = (JobId, GroupId)> + '_ {
        self.decisions.iter().filter_map(|d| match d {
            Decision::Preempt { id, reclaimed_for } => Some((*id, *reclaimed_for)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(workers: u32, gpus: u32) -> TaskRequest {
        TaskRequest {
            id: JobId::from_value(1),
            group: GroupId::from_index(0),
            qos: QosClass::Guaranteed,
            workers,
            per_worker: ResourceVec::gpus_only(gpus),
            est_secs: 100.0,
            submit_secs: 0.0,
            elastic: false,
        }
    }

    #[test]
    fn totals_scale_with_workers() {
        let r = request(4, 8);
        assert_eq!(r.total_gpus(), 32);
        assert_eq!(r.total_resources().cpu_cores, 4 * 64);
    }

    #[test]
    fn outcome_emptiness() {
        let o = SchedOutcome::default();
        assert!(o.is_empty());
    }
}
