//! Backfill scheduling (experiment F4).
//!
//! When the job at the head of the queue cannot start, plain FIFO leaves
//! the machine idle until it can. Backfill lets later jobs jump ahead as
//! long as they do not delay the blocked job's *reservation* — computed
//! from the (estimated) completion times of running jobs.
//!
//! Two classic variants are implemented:
//!
//! * **EASY**: only the head of the queue holds a reservation. Aggressive,
//!   high utilization, can repeatedly delay the second blocked job.
//! * **Conservative**: every blocked job holds a reservation; a backfill
//!   candidate must respect all of them. Lower utilization, stronger
//!   ordering guarantees.
//!
//! Reservations are computed at GPU granularity cluster-wide. This ignores
//! per-node fragmentation at reservation time (the actual start is still
//! subject to a real placement check), a standard simplification also made
//! by Slurm's own backfill estimator.

use serde::{Deserialize, Serialize};

use crate::slotset::CapacityWindow;

/// The backfill variant in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BackfillMode {
    /// No backfill: a blocked head stalls everything behind it.
    None,
    /// EASY backfill: one reservation for the queue head.
    #[default]
    Easy,
    /// Conservative backfill: reservations for every blocked job.
    Conservative,
}

impl std::fmt::Display for BackfillMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BackfillMode::None => "none",
            BackfillMode::Easy => "easy",
            BackfillMode::Conservative => "conservative",
        };
        f.write_str(s)
    }
}

/// A reservation for a blocked job: when it is expected to start and how
/// many GPUs will be left over at that moment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Reservation {
    /// Expected start time of the blocked job (seconds).
    pub shadow_secs: f64,
    /// GPUs expected to remain free at `shadow_secs` after the blocked job
    /// starts (the "extra" capacity EASY exploits).
    pub extra_gpus: u32,
}

/// Computes the reservation for a blocked job needing `demand_gpus`, given
/// `free_gpus` free now and `running` as `(est_end_secs, gpus)` pairs.
///
/// Walks running jobs in estimated completion order, accumulating released
/// GPUs until the demand fits. If even all running jobs ending would not
/// free enough (demand exceeds cluster size), the last release time is used
/// and `extra_gpus` is 0.
pub(crate) fn reserve(
    now_secs: f64,
    demand_gpus: u32,
    free_gpus: u32,
    running: &mut [(f64, u32)],
) -> Reservation {
    if demand_gpus <= free_gpus {
        return Reservation {
            shadow_secs: now_secs,
            extra_gpus: free_gpus - demand_gpus,
        };
    }
    running.sort_by(|a, b| a.0.total_cmp(&b.0));
    reserve_sorted(now_secs, demand_gpus, free_gpus, running)
}

/// [`reserve`] over a release profile that is *already* sorted by
/// ascending end time (same stable order `reserve` produces). Conservative
/// backfill computes one reservation per blocked job per round against an
/// unchanged running set, so the scheduler sorts the profile once per
/// cluster state and answers each reservation with this linear walk.
pub(crate) fn reserve_sorted(
    now_secs: f64,
    demand_gpus: u32,
    free_gpus: u32,
    sorted_running: &[(f64, u32)],
) -> Reservation {
    if demand_gpus <= free_gpus {
        return Reservation {
            shadow_secs: now_secs,
            extra_gpus: free_gpus - demand_gpus,
        };
    }
    let mut free = free_gpus;
    for &(end, gpus) in sorted_running.iter() {
        free += gpus;
        if free >= demand_gpus {
            return Reservation {
                shadow_secs: end.max(now_secs),
                extra_gpus: free - demand_gpus,
            };
        }
    }
    // Demand can never be satisfied by currently running work; reserve at
    // the far end with nothing to spare.
    Reservation {
        shadow_secs: sorted_running.last().map(|&(e, _)| e).unwrap_or(now_secs),
        extra_gpus: 0,
    }
}

/// [`reserve`] extended with planned [`CapacityWindow`]s — the naive
/// event-sweep facade the [`ReferenceScheduler`](crate::reference::ReferenceScheduler)
/// uses. With no windows it delegates to the legacy [`reserve`] walk
/// unchanged; with windows it sweeps the merged event horizon (release
/// ends plus window edges) ascending. At each event time the releases
/// apply *one at a time* in the profile's stable tie order under the
/// pre-boundary window drop, then the drop change applies — exactly the
/// algorithm [`SlotSet::probe`](crate::SlotSet) implements over slots, so
/// the differential suite can hold the two implementations byte-equal.
pub(crate) fn reserve_with_windows(
    now_secs: f64,
    demand_gpus: u32,
    free_gpus: u32,
    running: &mut [(f64, u32)],
    windows: &[CapacityWindow],
) -> Reservation {
    if windows.is_empty() {
        return reserve(now_secs, demand_gpus, free_gpus, running);
    }
    if demand_gpus <= free_gpus {
        return Reservation {
            shadow_secs: now_secs,
            extra_gpus: free_gpus - demand_gpus,
        };
    }
    running.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut bounds: Vec<f64> = running.iter().map(|&(end, _)| end).collect();
    for w in windows {
        bounds.push(w.from_secs);
        if w.until_secs.is_finite() {
            bounds.push(w.until_secs);
        }
    }
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();
    let dropped_at = |t: f64| -> u32 {
        windows
            .iter()
            .filter(|w| w.from_secs <= t && t < w.until_secs)
            .map(|w| w.gpus)
            .sum()
    };
    let mut released = 0u32;
    let mut ri = 0usize;
    let mut prev_avail = free_gpus;
    for &t in &bounds {
        // Releases at `t`, one at a time on top of the pre-boundary
        // (saturated) availability.
        let mut partial = prev_avail;
        while ri < running.len() && running[ri].0 == t {
            partial += running[ri].1;
            released += running[ri].1;
            ri += 1;
            if partial >= demand_gpus {
                return Reservation {
                    shadow_secs: t.max(now_secs),
                    extra_gpus: partial - demand_gpus,
                };
            }
        }
        // Then the post-boundary availability under the new window drop.
        let avail = (free_gpus + released).saturating_sub(dropped_at(t));
        if avail >= demand_gpus {
            return Reservation {
                shadow_secs: t.max(now_secs),
                extra_gpus: avail - demand_gpus,
            };
        }
        prev_avail = avail;
    }
    // Never satisfiable: reserve at the far end with nothing to spare.
    Reservation {
        shadow_secs: bounds.last().copied().unwrap_or(now_secs),
        extra_gpus: 0,
    }
}

/// Whether a candidate (fitting now) may backfill against a reservation:
/// either it is estimated to finish before the shadow time, or it is small
/// enough to fit in the extra capacity the reservation leaves over.
pub(crate) fn may_backfill(
    candidate_est_end_secs: f64,
    candidate_gpus: u32,
    reservation: &Reservation,
) -> bool {
    candidate_est_end_secs <= reservation.shadow_secs || candidate_gpus <= reservation.extra_gpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_fit_reserves_now() {
        let mut running = vec![(100.0, 4)];
        let r = reserve(10.0, 2, 6, &mut running);
        assert_eq!(r.shadow_secs, 10.0);
        assert_eq!(r.extra_gpus, 4);
    }

    #[test]
    fn shadow_at_earliest_sufficient_release() {
        // Free 2; need 8. Running: 4 GPUs end t=50, 4 end t=80, 8 end t=200.
        let mut running = vec![(200.0, 8), (50.0, 4), (80.0, 4)];
        let r = reserve(0.0, 8, 2, &mut running);
        // After t=80: 2+4+4 = 10 >= 8.
        assert_eq!(r.shadow_secs, 80.0);
        assert_eq!(r.extra_gpus, 2);
    }

    #[test]
    fn impossible_demand_reserves_at_end_with_zero_extra() {
        let mut running = vec![(100.0, 4)];
        let r = reserve(0.0, 64, 2, &mut running);
        assert_eq!(r.shadow_secs, 100.0);
        assert_eq!(r.extra_gpus, 0);
    }

    #[test]
    fn shadow_never_before_now() {
        let mut running = vec![(5.0, 8)];
        let r = reserve(10.0, 9, 2, &mut running);
        assert_eq!(r.shadow_secs, 10.0);
    }

    #[test]
    fn windows_facade_without_windows_is_the_legacy_walk() {
        let mut a = vec![(200.0, 8), (50.0, 4), (80.0, 4)];
        let mut b = a.clone();
        assert_eq!(
            reserve(0.0, 8, 2, &mut a),
            reserve_with_windows(0.0, 8, 2, &mut b, &[])
        );
    }

    #[test]
    fn capacity_window_shapes_the_shadow() {
        // 2 free, a 6-GPU job releasing at t=150, and a 6-GPU maintenance
        // window over [100, 200).
        let windows = [CapacityWindow {
            gpus: 6,
            from_secs: 100.0,
            until_secs: 200.0,
        }];
        // The t=150 release covers a demand of 4 mid-window…
        let mut running = vec![(150.0, 6)];
        let r = reserve_with_windows(0.0, 4, 2, &mut running, &windows);
        assert_eq!((r.shadow_secs, r.extra_gpus), (150.0, 2));
        // …a demand of 7 must outwait the window…
        let mut running = vec![(150.0, 6)];
        let r = reserve_with_windows(0.0, 7, 2, &mut running, &windows);
        assert_eq!((r.shadow_secs, r.extra_gpus), (200.0, 1));
        // …and an impossible demand reserves at the last event time.
        let mut running = vec![(150.0, 6)];
        let r = reserve_with_windows(0.0, 20, 2, &mut running, &windows);
        assert_eq!((r.shadow_secs, r.extra_gpus), (200.0, 0));
    }

    #[test]
    fn backfill_window_rule() {
        let r = Reservation {
            shadow_secs: 100.0,
            extra_gpus: 2,
        };
        // Finishes before the shadow: ok regardless of size.
        assert!(may_backfill(90.0, 16, &r));
        // Runs past the shadow but fits in the extra: ok.
        assert!(may_backfill(500.0, 2, &r));
        // Runs past the shadow and too big: blocked.
        assert!(!may_backfill(500.0, 3, &r));
    }
}
