//! The scheduling round: queue ordering, the quota/backfill/placement
//! walk over the live queue, skip tracing with positional dedup, and
//! temporal-planner-backed reservations.

use std::time::Instant;

use tacc_cluster::{Cluster, ResourceVec};
use tacc_obs::{JobSkip, RoundTrace, SkipReason};
use tacc_workload::JobId;

use crate::backfill::{may_backfill, BackfillMode, Reservation};
use crate::policy::{order_queue, PolicyContext, PolicyKind};
use crate::request::{Decision, SchedOutcome, StartedTask, TaskRequest};
use crate::scheduler::{Scheduler, SkipVerdict};

impl Scheduler {
    /// Runs one scheduling round at time `now_secs`: orders the queue,
    /// starts everything that fits (subject to quota, gang placement and
    /// backfill rules), and preempts borrowers when guaranteed demand
    /// reclaims quota.
    pub fn schedule(&mut self, now_secs: f64, cluster: &mut Cluster) -> SchedOutcome {
        // tacc-lint: allow(wall-clock, reason = "measures host-side scheduling-round latency for the T4 round-latency histogram; reported, never fed back into decisions")
        let round_start = Instant::now();
        self.rounds += 1;
        let queue_len_at_start = self.queue.len() as u64;
        let mut outcome = SchedOutcome::default();

        // Empty queue: nothing can start or preempt, so the sort, snapshot
        // and usage work below is skipped entirely. The `rounds` counter,
        // gauges and the round-latency observation behave exactly as the
        // full path would, and an idle round was never traced anyway.
        if self.queue.is_empty() {
            self.counters.empty_rounds += 1;
            let wall = round_start.elapsed();
            if let Some(m) = &self.metrics {
                m.rounds.inc();
                m.round_latency.observe(wall.as_secs_f64());
                m.queue_depth.set(0.0);
                m.running_tasks.set(self.running.len() as f64);
            }
            self.flush_work_metrics();
            return outcome;
        }

        // The incremental usage vectors must always equal a recount over
        // the running set; any drift is an accounting bug.
        debug_assert_eq!(
            self.group_usage_vec,
            self.group_usage_vectors_recomputed(),
            "incremental group usage diverged from recomputation"
        );

        // Order the queue under the configured policy — but only when the
        // previous order can no longer be proven valid. Every comparator
        // ends in an id tiebreak (a total order), so a sorted queue is the
        // *unique* sorted permutation: if the keys did not change, the
        // existing order is byte-identical to what a re-sort would produce.
        //   - FIFO/SJF keys are static per request → re-sort only when
        //     membership changed.
        //   - FairShare/DRF keys also read group usage → re-sort when usage
        //     moved since the last sort.
        //   - MultiFactor scores depend on `now_secs` and the queue length
        //     → always re-sort.
        let sort_needed = match self.config.policy {
            PolicyKind::Fifo | PolicyKind::Sjf => self.queue_dirty,
            PolicyKind::FairShare | PolicyKind::Drf => {
                self.queue_dirty
                    || self.sorted_usage_epoch != self.usage_epoch
                    || self.sorted_capacity != cluster.total_capacity()
            }
            PolicyKind::MultiFactor => true,
        };
        if sort_needed {
            self.quota.usage_by_group_into(&mut self.scratch_usage);
            let ctx = PolicyContext {
                group_gpu_usage: &self.scratch_usage,
                group_usage_vec: &self.group_usage_vec,
                group_quota: self.quota.quotas(),
                capacity: cluster.total_capacity(),
            };
            order_queue(self.config.policy, now_secs, &mut self.queue, &ctx);
            self.queue_dirty = false;
            self.sorted_usage_epoch = self.usage_epoch;
            self.sorted_capacity = cluster.total_capacity();
            self.counters.queue_sorts += 1;
        } else {
            self.counters.queue_sorts_skipped += 1;
            // When the sort is skipped the queue must already be the unique
            // sorted permutation — binary inserts and in-place removals are
            // claimed to preserve it exactly.
            #[cfg(debug_assertions)]
            {
                self.quota.usage_by_group_into(&mut self.scratch_usage);
                let ctx = PolicyContext {
                    group_gpu_usage: &self.scratch_usage,
                    group_usage_vec: &self.group_usage_vec,
                    group_quota: self.quota.quotas(),
                    capacity: self.sorted_capacity,
                };
                let policy = self.config.policy;
                let queue_len = self.queue.len();
                debug_assert!(
                    self.queue.windows(2).all(|w| {
                        crate::policy::compare(policy, now_secs, queue_len, &w[0], &w[1], &ctx)
                            .is_lt()
                    }),
                    "sort-skip invariant violated: queue is not in sorted order"
                );
            }
        }
        debug_assert!(
            self.queue.len() == self.queue_members.len()
                && self
                    .queue
                    .iter()
                    .all(|r| self.queue_members.contains(&r.id)),
            "queue membership set diverged from the queue"
        );

        let mut reservations: Vec<Reservation> = std::mem::take(&mut self.scratch_reservations);
        reservations.clear();
        // Skip records accumulate into a recycled buffer (handed back by
        // the trace ring at push time once it is warm).
        let mut skips = std::mem::take(&mut self.scratch_skips);
        skips.clear();
        self.scratch_verdicts_next.clear();

        // Walk the live queue in place instead of copying it into a
        // per-round snapshot (`snapshot_elements` used to be the largest
        // work counter on the hot path). Placement commits remove the
        // examined entry order-preservingly, and reclaim may re-queue
        // victims mid-walk; `queue_push`/`queue_remove_request` compensate
        // the cursor so the walk visits exactly the entries the snapshot
        // held, in the same order. `examined` numbers them with their
        // round-start positions, keeping the positional skip dedup
        // byte-identical.
        self.walk_active = true;
        self.walk_cursor = 0;
        self.walk_inserted.clear();
        let mut examined: usize = 0;
        while self.walk_cursor < self.queue.len() {
            let request = self.queue[self.walk_cursor];
            // Mid-walk insertions were invisible to the old snapshot.
            if self.walk_inserted.contains(&request.id) {
                self.walk_cursor += 1;
                continue;
            }
            let pos = examined;
            examined += 1;
            self.walk_removed_current = false;
            let request = &request;

            // 1. Quota gate.
            if !self.quota.admits(self.config.quota, request) {
                if self.skip_should_record(pos, request.id, SkipVerdict::Quota) {
                    skips.push(JobSkip {
                        job: request.id,
                        reason: SkipReason::QuotaExhausted {
                            group: request.group,
                            used: self.quota.total_used(request.group),
                            quota: self.quota.quota(request.group),
                            demand: request.total_gpus(),
                        },
                    });
                }
                // Blocked on quota, not capacity: holds no capacity
                // reservation. Under no-backfill the queue is strictly
                // ordered, so later jobs stall behind it anyway.
                if self.config.backfill == BackfillMode::None {
                    self.skip_tail_live(&mut skips, &mut examined, request.id);
                    break;
                }
                self.walk_cursor += 1;
                continue;
            }

            // 2. Backfill gate (someone ahead is capacity-blocked).
            if !reservations.is_empty() {
                let est_end = now_secs + request.est_secs;
                let permitted = match self.config.backfill {
                    BackfillMode::None => false,
                    BackfillMode::Easy => {
                        may_backfill(est_end, request.total_gpus(), &reservations[0])
                    }
                    BackfillMode::Conservative => reservations
                        .iter()
                        .all(|r| may_backfill(est_end, request.total_gpus(), r)),
                };
                if !permitted {
                    if self.skip_should_record(pos, request.id, SkipVerdict::Backfill) {
                        let blocking = reservations
                            .iter()
                            .find(|r| !may_backfill(est_end, request.total_gpus(), r))
                            .unwrap_or(&reservations[0]);
                        skips.push(JobSkip {
                            job: request.id,
                            reason: SkipReason::BackfillBlocked {
                                est_end_secs: est_end,
                                shadow_secs: blocking.shadow_secs,
                            },
                        });
                    }
                    if self.config.backfill == BackfillMode::Conservative {
                        self.push_reservation(now_secs, request, cluster, &mut reservations);
                    }
                    self.walk_cursor += 1;
                    continue;
                }
            }

            // 3. Placement (with quota reclaim if allowed).
            let backfilled = !reservations.is_empty();
            match self.try_place(now_secs, request, cluster, &mut outcome) {
                Some(start) => {
                    self.scratch_verdicts_next
                        .push((request.id, SkipVerdict::Started));
                    if backfilled {
                        self.backfill_starts += 1;
                        if let Some(m) = &self.metrics {
                            m.backfill_starts.inc();
                        }
                    }
                    outcome.decisions.push(Decision::Start(StartedTask {
                        backfilled,
                        ..start
                    }));
                    // The commit removed the examined entry in place; the
                    // cursor already points at its successor.
                    debug_assert!(self.walk_removed_current, "started job still queued");
                    if !self.walk_removed_current {
                        self.walk_cursor += 1;
                    }
                }
                None => {
                    // Capacity-blocked.
                    if self.skip_should_record(pos, request.id, SkipVerdict::NoPlacement) {
                        skips.push(JobSkip {
                            job: request.id,
                            reason: SkipReason::NoFeasiblePlacement {
                                workers: request.workers,
                                gpus_per_worker: request.per_worker.gpus,
                                free_gpus: cluster.free_gpus(),
                                largest_free_block: cluster.largest_free_block(),
                            },
                        });
                    }
                    match self.config.backfill {
                        BackfillMode::None => {
                            self.skip_tail_live(&mut skips, &mut examined, request.id);
                            break;
                        }
                        BackfillMode::Easy => {
                            if reservations.is_empty() {
                                self.push_reservation(
                                    now_secs,
                                    request,
                                    cluster,
                                    &mut reservations,
                                );
                            }
                        }
                        BackfillMode::Conservative => {
                            self.push_reservation(now_secs, request, cluster, &mut reservations);
                        }
                    }
                    self.walk_cursor += 1;
                }
            }
        }
        self.walk_active = false;
        self.walk_inserted.clear();
        self.scratch_reservations = reservations;

        // The walk examined exactly the round-start queue and pushed one
        // ledger entry per examined position; the ledger becomes the
        // baseline the next round's walk dedups against.
        debug_assert_eq!(
            examined as u64, queue_len_at_start,
            "walk out of step with the round-start queue"
        );
        debug_assert_eq!(
            self.scratch_verdicts_next.len(),
            examined,
            "walk ledger out of step with the walk"
        );
        std::mem::swap(&mut self.scratch_verdicts, &mut self.scratch_verdicts_next);
        let wall = round_start.elapsed();
        if let Some(m) = &self.metrics {
            m.rounds.inc();
            m.round_latency.observe(wall.as_secs_f64());
            m.queue_depth.set(self.queue.len() as f64);
            m.running_tasks.set(self.running.len() as f64);
        }
        self.flush_work_metrics();
        // Idle rounds (nothing queued, nothing decided) are not traced:
        // the platform's fixpoint loop would otherwise flood the ring.
        if queue_len_at_start > 0 || !outcome.is_empty() {
            let mut started = std::mem::take(&mut self.scratch_started);
            started.clear();
            started.extend(outcome.starts().map(|t| t.request.id));
            let mut preempted = std::mem::take(&mut self.scratch_preempted);
            preempted.clear();
            preempted.extend(outcome.preemptions().map(|(id, _)| id));
            let evicted = self.trace.push(RoundTrace {
                round: self.rounds,
                at_secs: now_secs,
                wall_micros: wall.as_micros() as u64,
                queue_len: queue_len_at_start,
                started,
                preempted,
                skips,
            });
            // Once the ring is warm every push evicts a round; its vectors
            // become the next round's buffers, closing the allocation loop.
            if let Some(old) = evicted {
                self.scratch_started = old.started;
                self.scratch_preempted = old.preempted;
                self.scratch_skips = old.skips;
            }
        } else {
            self.scratch_skips = skips;
        }

        outcome
    }

    /// Computes and appends the capacity reservation for a blocked request
    /// by probing the temporal planner.
    ///
    /// The planner timeline depends only on the running set and the
    /// configured capacity windows, and every change to the running set
    /// (placement, finish, preemption) also bumps the cluster's mutation
    /// version. Placements and releases maintain the timeline
    /// incrementally; whenever the version check shows the mirror went
    /// stale (first round, preemption fallout, fault injection) it is
    /// rebuilt from the running set in one pass. Conservative backfill
    /// asks for one reservation per blocked job per round, and all of
    /// those probes share the same slots.
    fn push_reservation(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &Cluster,
        reservations: &mut Vec<Reservation>,
    ) {
        let version = cluster.version();
        if self.timeline_version != Some(version) {
            let skew = self.boundary_skew_secs;
            // Id-ordered iteration over the BTreeMap: rebuilding is a
            // deterministic function of the running set.
            self.timeline.rebuild(
                cluster.free_gpus(),
                self.running
                    .iter()
                    .map(|(&id, t)| (id, t.est_end_secs + skew, t.request.total_gpus())),
                &self.config.capacity_windows,
                &mut self.counters.slots,
            );
            self.timeline_version = Some(version);
        }
        #[cfg(debug_assertions)]
        if self.rounds.is_multiple_of(61) {
            // Sampled oracle: the incrementally maintained timeline must
            // stay count-equivalent to a fresh rebuild. (Abstract id
            // assignment may differ between the two; the count-level
            // fingerprint is invariant to it.)
            let mut oracle = crate::slotset::SlotSet::new();
            let mut stats = crate::slotset::SlotStats::default();
            let skew = self.boundary_skew_secs;
            oracle.rebuild(
                cluster.free_gpus(),
                self.running
                    .iter()
                    .map(|(&id, t)| (id, t.est_end_secs + skew, t.request.total_gpus())),
                &self.config.capacity_windows,
                &mut stats,
            );
            debug_assert_eq!(
                self.timeline.fingerprint(),
                oracle.fingerprint(),
                "incremental timeline diverged from a fresh rebuild"
            );
        }
        reservations.push(self.timeline.probe(
            now_secs,
            request.total_gpus(),
            cluster.free_gpus(),
            &mut self.counters.slots,
        ));
    }

    /// Decides whether this position's skip goes into the round's skip
    /// list: only when the previous walk examined a *different* job at
    /// this position, or the same job with a different verdict.
    /// Re-deciding the same "why not" round after round is pure work —
    /// the trace ring and `why` explanations only gain information when
    /// something changes, and in a stable blocked queue nothing does. One
    /// positional compare replaces a per-job map; suppressed repeats are
    /// counted so the work ledger still proves the gate ran. Returning
    /// the decision (instead of taking a pre-built [`JobSkip`]) lets the
    /// caller defer the skip-reason lookups — quota totals, the blocking
    /// reservation — to the recorded minority.
    fn skip_should_record(&mut self, pos: usize, job: JobId, verdict: SkipVerdict) -> bool {
        let unchanged = self
            .scratch_verdicts
            .get(pos)
            .is_some_and(|&(id, v)| id == job && v == verdict);
        self.scratch_verdicts_next.push((job, verdict));
        if unchanged {
            self.counters.skip_suppressions += 1;
            false
        } else {
            self.counters.skip_records += 1;
            true
        }
    }

    /// Records a head-of-line skip for every not-yet-examined live-queue
    /// entry (round-start positions `examined..`): under strict FIFO (no
    /// backfill) a blocked job stalls everything behind it. Mid-walk
    /// insertions are passed over — they were not part of the round-start
    /// queue.
    fn skip_tail_live(&mut self, skips: &mut Vec<JobSkip>, examined: &mut usize, behind: JobId) {
        let mut i = self.walk_cursor + 1;
        while i < self.queue.len() {
            let job = self.queue[i].id;
            i += 1;
            if self.walk_inserted.contains(&job) {
                continue;
            }
            let pos = *examined;
            *examined += 1;
            if self.skip_should_record(pos, job, SkipVerdict::HeadOfLine { behind }) {
                skips.push(JobSkip {
                    job,
                    reason: SkipReason::HeadOfLineBlocked { behind },
                });
            }
        }
    }

    /// Per-group running resource vectors recomputed from scratch — the
    /// oracle the incrementally maintained `group_usage_vec` is
    /// debug-asserted against every round.
    fn group_usage_vectors_recomputed(&self) -> Vec<ResourceVec> {
        let mut usage = vec![ResourceVec::ZERO; self.config.group_count];
        for task in self.running.values() {
            usage[task.request.group.index()] += task.request.total_resources();
        }
        usage
    }
}
