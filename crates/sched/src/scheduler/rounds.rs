//! The scheduling round: queue ordering, the quota/backfill/placement
//! walk, skip tracing with positional dedup, and reservation caching.

use std::time::Instant;

use tacc_cluster::{Cluster, ResourceVec};
use tacc_obs::{JobSkip, RoundTrace, SkipReason};
use tacc_workload::JobId;

use crate::backfill::{may_backfill, reserve_sorted, BackfillMode, Reservation};
use crate::policy::{order_queue, PolicyContext, PolicyKind};
use crate::request::{Decision, SchedOutcome, StartedTask, TaskRequest};
use crate::scheduler::{Scheduler, SkipVerdict};

impl Scheduler {
    /// Runs one scheduling round at time `now_secs`: orders the queue,
    /// starts everything that fits (subject to quota, gang placement and
    /// backfill rules), and preempts borrowers when guaranteed demand
    /// reclaims quota.
    pub fn schedule(&mut self, now_secs: f64, cluster: &mut Cluster) -> SchedOutcome {
        // tacc-lint: allow(wall-clock, reason = "measures host-side scheduling-round latency for the T4 round-latency histogram; reported, never fed back into decisions")
        let round_start = Instant::now();
        self.rounds += 1;
        let queue_len_at_start = self.queue.len() as u64;
        let mut outcome = SchedOutcome::default();

        // Empty queue: nothing can start or preempt, so the sort, snapshot
        // and usage work below is skipped entirely. The `rounds` counter,
        // gauges and the round-latency observation behave exactly as the
        // full path would, and an idle round was never traced anyway.
        if self.queue.is_empty() {
            self.counters.empty_rounds += 1;
            let wall = round_start.elapsed();
            if let Some(m) = &self.metrics {
                m.rounds.inc();
                m.round_latency.observe(wall.as_secs_f64());
                m.queue_depth.set(0.0);
                m.running_tasks.set(self.running.len() as f64);
            }
            self.flush_work_metrics();
            return outcome;
        }

        // The incremental usage vectors must always equal a recount over
        // the running set; any drift is an accounting bug.
        debug_assert_eq!(
            self.group_usage_vec,
            self.group_usage_vectors_recomputed(),
            "incremental group usage diverged from recomputation"
        );

        // Order the queue under the configured policy — but only when the
        // previous order can no longer be proven valid. Every comparator
        // ends in an id tiebreak (a total order), so a sorted queue is the
        // *unique* sorted permutation: if the keys did not change, the
        // existing order is byte-identical to what a re-sort would produce.
        //   - FIFO/SJF keys are static per request → re-sort only when
        //     membership changed.
        //   - FairShare/DRF keys also read group usage → re-sort when usage
        //     moved since the last sort.
        //   - MultiFactor scores depend on `now_secs` and the queue length
        //     → always re-sort.
        let sort_needed = match self.config.policy {
            PolicyKind::Fifo | PolicyKind::Sjf => self.queue_dirty,
            PolicyKind::FairShare | PolicyKind::Drf => {
                self.queue_dirty
                    || self.sorted_usage_epoch != self.usage_epoch
                    || self.sorted_capacity != cluster.total_capacity()
            }
            PolicyKind::MultiFactor => true,
        };
        if sort_needed {
            self.quota.usage_by_group_into(&mut self.scratch_usage);
            let ctx = PolicyContext {
                group_gpu_usage: &self.scratch_usage,
                group_usage_vec: &self.group_usage_vec,
                group_quota: self.quota.quotas(),
                capacity: cluster.total_capacity(),
            };
            order_queue(self.config.policy, now_secs, &mut self.queue, &ctx);
            self.queue_dirty = false;
            self.sorted_usage_epoch = self.usage_epoch;
            self.sorted_capacity = cluster.total_capacity();
            self.counters.queue_sorts += 1;
        } else {
            self.counters.queue_sorts_skipped += 1;
            // When the sort is skipped the queue must already be the unique
            // sorted permutation — binary inserts and in-place removals are
            // claimed to preserve it exactly.
            #[cfg(debug_assertions)]
            {
                self.quota.usage_by_group_into(&mut self.scratch_usage);
                let ctx = PolicyContext {
                    group_gpu_usage: &self.scratch_usage,
                    group_usage_vec: &self.group_usage_vec,
                    group_quota: self.quota.quotas(),
                    capacity: self.sorted_capacity,
                };
                let policy = self.config.policy;
                let queue_len = self.queue.len();
                debug_assert!(
                    self.queue.windows(2).all(|w| {
                        crate::policy::compare(policy, now_secs, queue_len, &w[0], &w[1], &ctx)
                            .is_lt()
                    }),
                    "sort-skip invariant violated: queue is not in sorted order"
                );
            }
        }
        debug_assert!(
            self.queue.len() == self.queue_members.len()
                && self
                    .queue
                    .iter()
                    .all(|r| self.queue_members.contains(&r.id)),
            "queue membership set diverged from the queue"
        );

        let mut reservations: Vec<Reservation> = Vec::new();
        // Skip records accumulate into a recycled buffer (handed back by
        // the trace ring at push time once it is warm).
        let mut skips = std::mem::take(&mut self.scratch_skips);
        skips.clear();
        // Reusable snapshot buffer instead of a per-round `Vec` clone
        // (`TaskRequest` is `Copy`, so this is a flat memcpy).
        let mut queue_snapshot = std::mem::take(&mut self.scratch_snapshot);
        queue_snapshot.clear();
        queue_snapshot.extend_from_slice(&self.queue);
        self.counters.snapshot_elements += queue_snapshot.len() as u64;
        self.scratch_verdicts_next.clear();

        for (pos, request) in queue_snapshot.iter().enumerate() {
            // 1. Quota gate.
            if !self.quota.admits(self.config.quota, request) {
                self.record_skip(
                    &mut skips,
                    pos,
                    JobSkip {
                        job: request.id,
                        reason: SkipReason::QuotaExhausted {
                            group: request.group,
                            used: self.quota.total_used(request.group),
                            quota: self.quota.quota(request.group),
                            demand: request.total_gpus(),
                        },
                    },
                    SkipVerdict::Quota,
                );
                // Blocked on quota, not capacity: holds no capacity
                // reservation. Under no-backfill the queue is strictly
                // ordered, so later jobs stall behind it anyway.
                if self.config.backfill == BackfillMode::None {
                    self.skip_tail(&mut skips, &queue_snapshot[pos + 1..], pos + 1, request.id);
                    break;
                }
                continue;
            }

            // 2. Backfill gate (someone ahead is capacity-blocked).
            if !reservations.is_empty() {
                let est_end = now_secs + request.est_secs;
                let permitted = match self.config.backfill {
                    BackfillMode::None => false,
                    BackfillMode::Easy => {
                        may_backfill(est_end, request.total_gpus(), &reservations[0])
                    }
                    BackfillMode::Conservative => reservations
                        .iter()
                        .all(|r| may_backfill(est_end, request.total_gpus(), r)),
                };
                if !permitted {
                    let blocking = reservations
                        .iter()
                        .find(|r| !may_backfill(est_end, request.total_gpus(), r))
                        .unwrap_or(&reservations[0]);
                    let shadow_secs = blocking.shadow_secs;
                    self.record_skip(
                        &mut skips,
                        pos,
                        JobSkip {
                            job: request.id,
                            reason: SkipReason::BackfillBlocked {
                                est_end_secs: est_end,
                                shadow_secs,
                            },
                        },
                        SkipVerdict::Backfill,
                    );
                    if self.config.backfill == BackfillMode::Conservative {
                        self.push_reservation(now_secs, request, cluster, &mut reservations);
                    }
                    continue;
                }
            }

            // 3. Placement (with quota reclaim if allowed).
            let backfilled = !reservations.is_empty();
            match self.try_place(now_secs, request, cluster, &mut outcome) {
                Some(start) => {
                    self.scratch_verdicts_next
                        .push((request.id, SkipVerdict::Started));
                    if backfilled {
                        self.backfill_starts += 1;
                        if let Some(m) = &self.metrics {
                            m.backfill_starts.inc();
                        }
                    }
                    outcome.decisions.push(Decision::Start(StartedTask {
                        backfilled,
                        ..start
                    }));
                }
                None => {
                    // Capacity-blocked.
                    self.record_skip(
                        &mut skips,
                        pos,
                        JobSkip {
                            job: request.id,
                            reason: SkipReason::NoFeasiblePlacement {
                                workers: request.workers,
                                gpus_per_worker: request.per_worker.gpus,
                                free_gpus: cluster.free_gpus(),
                                largest_free_block: cluster.largest_free_block(),
                            },
                        },
                        SkipVerdict::NoPlacement,
                    );
                    match self.config.backfill {
                        BackfillMode::None => {
                            self.skip_tail(
                                &mut skips,
                                &queue_snapshot[pos + 1..],
                                pos + 1,
                                request.id,
                            );
                            break;
                        }
                        BackfillMode::Easy => {
                            if reservations.is_empty() {
                                self.push_reservation(
                                    now_secs,
                                    request,
                                    cluster,
                                    &mut reservations,
                                );
                            }
                        }
                        BackfillMode::Conservative => {
                            self.push_reservation(now_secs, request, cluster, &mut reservations);
                        }
                    }
                }
            }
        }

        // The walk pushed exactly one ledger entry per examined position;
        // it becomes the baseline the next round's walk dedups against.
        debug_assert_eq!(
            self.scratch_verdicts_next.len(),
            queue_snapshot.len(),
            "walk ledger out of step with the snapshot"
        );
        std::mem::swap(&mut self.scratch_verdicts, &mut self.scratch_verdicts_next);
        self.scratch_snapshot = queue_snapshot;
        let wall = round_start.elapsed();
        if let Some(m) = &self.metrics {
            m.rounds.inc();
            m.round_latency.observe(wall.as_secs_f64());
            m.queue_depth.set(self.queue.len() as f64);
            m.running_tasks.set(self.running.len() as f64);
        }
        self.flush_work_metrics();
        // Idle rounds (nothing queued, nothing decided) are not traced:
        // the platform's fixpoint loop would otherwise flood the ring.
        if queue_len_at_start > 0 || !outcome.is_empty() {
            let mut started = std::mem::take(&mut self.scratch_started);
            started.clear();
            started.extend(outcome.starts().map(|t| t.request.id));
            let mut preempted = std::mem::take(&mut self.scratch_preempted);
            preempted.clear();
            preempted.extend(outcome.preemptions().map(|(id, _)| id));
            let evicted = self.trace.push(RoundTrace {
                round: self.rounds,
                at_secs: now_secs,
                wall_micros: wall.as_micros() as u64,
                queue_len: queue_len_at_start,
                started,
                preempted,
                skips,
            });
            // Once the ring is warm every push evicts a round; its vectors
            // become the next round's buffers, closing the allocation loop.
            if let Some(old) = evicted {
                self.scratch_started = old.started;
                self.scratch_preempted = old.preempted;
                self.scratch_skips = old.skips;
            }
        } else {
            self.scratch_skips = skips;
        }

        outcome
    }

    /// Computes and appends the capacity reservation for a blocked request.
    ///
    /// The release profile — running tasks as `(est_end, gpus)`, ascending
    /// by end time — depends only on the running set, and every change to
    /// the running set (placement, finish, preemption) also bumps the
    /// cluster's mutation version. The sorted profile is therefore cached
    /// keyed on that version: conservative backfill asks for one
    /// reservation per blocked job per round against an unchanged running
    /// set, and all of those questions share a single collect-and-sort.
    fn push_reservation(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &Cluster,
        reservations: &mut Vec<Reservation>,
    ) {
        let version = cluster.version();
        if !matches!(&self.reserve_cache, Some((v, _)) if *v == version) {
            let mut profile = match self.reserve_cache.take() {
                Some((_, mut p)) => {
                    p.clear();
                    p
                }
                None => Vec::new(),
            };
            profile.extend(
                self.running
                    .values()
                    .map(|t| (t.est_end_secs, t.request.total_gpus())),
            );
            // Stable sort over the id-ordered running set: byte-identical
            // to the order the eager per-call sort used to produce.
            profile.sort_by(|a, b| a.0.total_cmp(&b.0));
            self.reserve_cache = Some((version, profile));
        }
        if let Some((_, profile)) = &self.reserve_cache {
            reservations.push(reserve_sorted(
                now_secs,
                request.total_gpus(),
                cluster.free_gpus(),
                profile,
            ));
        }
    }

    /// Appends `skip` to the round's skip list only when the previous
    /// walk examined a *different* job at this position, or the same job
    /// with a different verdict. Re-deciding the same "why not" round
    /// after round is pure work — the trace ring and `why` explanations
    /// only gain information when something changes, and in a stable
    /// blocked queue nothing does. One positional compare replaces a
    /// per-job map; suppressed repeats are counted so the work ledger
    /// still proves the gate ran.
    fn record_skip(
        &mut self,
        skips: &mut Vec<JobSkip>,
        pos: usize,
        skip: JobSkip,
        verdict: SkipVerdict,
    ) {
        let unchanged = self
            .scratch_verdicts
            .get(pos)
            .is_some_and(|&(id, v)| id == skip.job && v == verdict);
        self.scratch_verdicts_next.push((skip.job, verdict));
        if unchanged {
            self.counters.skip_suppressions += 1;
        } else {
            self.counters.skip_records += 1;
            skips.push(skip);
        }
    }

    /// Records a head-of-line skip for every request in `rest` (snapshot
    /// positions `base..`): under strict FIFO (no backfill) a blocked job
    /// stalls everything behind it.
    fn skip_tail(
        &mut self,
        skips: &mut Vec<JobSkip>,
        rest: &[TaskRequest],
        base: usize,
        behind: JobId,
    ) {
        for (i, r) in rest.iter().enumerate() {
            self.record_skip(
                skips,
                base + i,
                JobSkip {
                    job: r.id,
                    reason: SkipReason::HeadOfLineBlocked { behind },
                },
                SkipVerdict::HeadOfLine { behind },
            );
        }
    }

    /// Per-group running resource vectors recomputed from scratch — the
    /// oracle the incrementally maintained `group_usage_vec` is
    /// debug-asserted against every round.
    fn group_usage_vectors_recomputed(&self) -> Vec<ResourceVec> {
        let mut usage = vec![ResourceVec::ZERO; self.config.group_count];
        for task in self.running.values() {
            usage[task.request.group.index()] += task.request.total_resources();
        }
        usage
    }
}
