//! Gang time-slicing: rotating expired best-effort gangs out so queued
//! work gets a turn (Slurm's "gang scheduling (time-slicing jobs)").

use std::time::Instant;

use tacc_cluster::Cluster;
use tacc_obs::RoundTrace;
use tacc_workload::{JobId, QosClass};

use crate::request::{Decision, SchedOutcome, TaskRequest};
use crate::scheduler::Scheduler;

impl Scheduler {
    /// Gang time-slicing: if queued work exists and evicting the oldest
    /// expired best-effort tasks (those that ran at least a full quantum)
    /// would let some queued task start, rotate them out and re-run the
    /// scheduler. Rotated tasks re-enter the queue as if submitted now, so
    /// they take their turn at the back.
    ///
    /// Returns an empty outcome when time-slicing is disabled, nothing has
    /// expired, or no eviction would help.
    pub fn rotate(&mut self, now_secs: f64, cluster: &mut Cluster) -> SchedOutcome {
        // tacc-lint: allow(wall-clock, reason = "measures host-side rotation latency for the T4 round-latency histogram; reported, never fed back into decisions")
        let rotate_start = Instant::now();
        let Some(quantum) = self.config.time_slice_secs else {
            return SchedOutcome::default();
        };
        if self.queue.is_empty() {
            return SchedOutcome::default();
        }
        let mut expired: Vec<(f64, JobId)> = self
            .running
            .values()
            .filter(|t| t.request.qos == QosClass::BestEffort && now_secs - t.start_secs >= quantum)
            .map(|t| (t.start_secs, t.request.id))
            .collect();
        if expired.is_empty() {
            return SchedOutcome::default();
        }
        expired.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // How many evictions (oldest first) until some queued task fits?
        let mut hypothetical = cluster.clone();
        let mut needed = None;
        for (i, &(_, id)) in expired.iter().enumerate() {
            let lease = self.running[&id].lease_id;
            hypothetical
                .release(lease)
                .expect("running task holds a valid lease");
            let fits_someone = self.queue.iter().any(|r| {
                self.quota.admits(self.config.quota, r)
                    && self
                        .planner
                        .plan(&hypothetical, r.workers, r.per_worker)
                        .is_some()
            });
            if fits_someone {
                needed = Some(i + 1);
                break;
            }
        }
        let Some(count) = needed else {
            return SchedOutcome::default();
        };

        let mut outcome = SchedOutcome::default();
        for &(_, victim) in &expired[..count] {
            let task = self
                .task_finished(victim, cluster)
                .expect("victim is running");
            self.preemptions += 1;
            if let Some(m) = &self.metrics {
                m.preemptions.inc();
            }
            outcome.decisions.push(Decision::Preempt {
                id: victim,
                reclaimed_for: task.request.group,
            });
            // Back of the queue: the rotated task waits its turn, with its
            // originally requested gang size restored.
            self.queue_push(TaskRequest {
                submit_secs: now_secs,
                workers: task.requested_workers,
                ..task.request
            });
        }
        // Trace the rotation decision itself; the follow-up schedule call
        // records its own round (placements and skip reasons).
        self.trace.push(RoundTrace {
            round: self.rounds,
            at_secs: now_secs,
            wall_micros: rotate_start.elapsed().as_micros() as u64,
            queue_len: self.queue.len() as u64,
            started: Vec::new(),
            preempted: outcome.preemptions().map(|(id, _)| id).collect(),
            skips: Vec::new(),
        });
        let follow_up = self.schedule(now_secs, cluster);
        outcome.decisions.extend(follow_up.decisions);
        outcome
    }
}
