//! Placement commitment: elastic gang shrinking, quota reclaim with
//! youngest-first borrower eviction, and the lease/quota bookkeeping of
//! an accepted start.

use tacc_cluster::Cluster;
use tacc_workload::{JobId, QosClass};

use crate::placement::Planner;
use crate::quota::QuotaMode;
use crate::request::{Decision, RunningTask, SchedOutcome, StartedTask, TaskRequest};
use crate::scheduler::Scheduler;

impl Scheduler {
    /// Attempts to place `request`, preempting borrowers if the request is
    /// guaranteed, quota-admitted, and the mode allows reclaim.
    pub(super) fn try_place(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &mut Cluster,
        outcome: &mut SchedOutcome,
    ) -> Option<StartedTask> {
        if let Some(start) = self.commit_placement(now_secs, request, cluster) {
            return Some(start);
        }
        // Reclaim path: guaranteed job within quota but no room — evict
        // best-effort borrowers, youngest first, until it fits.
        if self.config.quota != QuotaMode::Borrowing || request.qos != QosClass::Guaranteed {
            return None;
        }
        // O(1) reclaim gate: evicting every borrower hands back exactly the
        // borrowed GPU total, so the hypothetical cluster below would have
        // `free + borrowed` free GPUs. When even that cannot cover the
        // aggregate demand, the planner's capacity gate is certain to
        // reject the pre-check — skip the victim scan and the clone, and
        // count the reject exactly as `plan_counted` would have.
        let borrowed = self.quota.borrowed_total();
        if request.per_worker.gpus.saturating_mul(request.workers)
            > cluster.free_gpus().saturating_add(borrowed)
        {
            self.counters.plan.attempts += 1;
            self.counters.plan.fastpath_rejects += 1;
            return None;
        }
        let mut victims: Vec<(f64, JobId)> = self
            .running
            .values()
            .filter(|t| t.request.qos == QosClass::BestEffort)
            .map(|t| (t.start_secs, t.request.id))
            .collect();
        if victims.is_empty() {
            return None;
        }
        // Pre-check on a hypothetical cluster with every borrower gone:
        // evicting is only justified if the reclaim can actually succeed.
        // (Evicting and then failing to place would destroy borrower
        // progress for nothing — and could deadlock an otherwise idle
        // cluster.) The snapshot is cached keyed by the cluster's mutation
        // version: consecutive blocked guaranteed jobs in one round see an
        // unchanged cluster and running set, so one clone serves them all.
        let version = cluster.version();
        if !matches!(&self.reclaim_cache, Some((v, _)) if *v == version) {
            let mut hypothetical = cluster.clone();
            for t in self.running.values() {
                if t.request.qos == QosClass::BestEffort {
                    hypothetical
                        .release(t.lease_id)
                        .expect("running borrower holds a valid lease");
                }
            }
            self.reclaim_cache = Some((version, hypothetical));
        }
        {
            // Freshly written above when absent; kept panic-free.
            let (_, hypothetical) = self.reclaim_cache.as_ref()?;
            self.planner.plan_counted(
                hypothetical,
                request.workers,
                request.per_worker,
                &mut self.counters.plan,
            )?;
        }

        // Youngest first: least sunk work destroyed.
        victims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, victim_id) in victims {
            let task = self
                .task_finished(victim_id, cluster)
                .expect("victim is running");
            self.preemptions += 1;
            if let Some(m) = &self.metrics {
                m.preemptions.inc();
            }
            outcome.decisions.push(Decision::Preempt {
                id: victim_id,
                reclaimed_for: request.group,
            });
            // Re-queue the victim with its original submission time and
            // its originally requested gang size.
            self.queue_push(TaskRequest {
                workers: task.requested_workers,
                ..task.request
            });
            if let Some(start) = self.commit_placement(now_secs, request, cluster) {
                return Some(start);
            }
        }
        unreachable!("pre-checked reclaim must place once all borrowers are evicted")
    }

    /// Plans and commits a placement, charging quota and recording the
    /// task. On success the request is removed from the queue immediately —
    /// a later reclaim in the same round may re-queue this very job, and
    /// that re-queued entry must survive the round.
    fn commit_placement(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &mut Cluster,
    ) -> Option<StartedTask> {
        // Elastic tasks shrink by halving the gang until it fits (down to
        // one worker); inelastic tasks place all-or-nothing.
        let mut granted = request.workers;
        let assignment = loop {
            if let Some(a) = self.planner.plan_counted(
                cluster,
                granted,
                request.per_worker,
                &mut self.counters.plan,
            ) {
                break a;
            }
            if !request.elastic || granted <= 1 {
                return None;
            }
            granted = (granted / 2).max(1);
        };
        self.queue_remove_request(request);
        let shares = Planner::shares_for(&assignment, request.per_worker);
        let pre_version = cluster.version();
        let lease = cluster
            .allocate(request.id.value(), &shares)
            .expect("planned placement must allocate");
        let granted_request = TaskRequest {
            workers: granted,
            ..*request
        };
        self.quota.charge(&granted_request);
        self.group_usage_vec[granted_request.group.index()] += granted_request.total_resources();
        self.usage_epoch += 1;
        // A shrunken data-parallel gang runs proportionally longer.
        let scale = f64::from(request.workers) / f64::from(granted);
        let est_end_secs = now_secs + request.est_secs * scale;
        // Keep the temporal planner synced incrementally: when it mirrored
        // the pre-allocate cluster state, a slot-level place carries it to
        // the post-allocate version without a rebuild.
        if self.timeline_version == Some(pre_version) {
            self.timeline.place(
                request.id,
                granted_request.total_gpus(),
                est_end_secs + self.boundary_skew_secs,
                &mut self.counters.slots,
            );
            self.timeline_version = Some(cluster.version());
        }
        self.running.insert(
            request.id,
            RunningTask {
                request: granted_request,
                requested_workers: request.workers,
                lease_id: lease.id(),
                worker_nodes: assignment.clone(),
                start_secs: now_secs,
                est_end_secs,
            },
        );
        Some(StartedTask {
            request: *request,
            granted_workers: granted,
            lease,
            worker_nodes: assignment,
            backfilled: false,
        })
    }
}
