//! Per-group quota management with borrowing and reclaim (experiments F2/F5).

use serde::{Deserialize, Serialize};

use tacc_workload::{GroupId, GroupRoster, QosClass};

use crate::request::TaskRequest;

/// How group quotas are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum QuotaMode {
    /// No quotas: the whole cluster is one pool (pure policy ordering).
    #[default]
    Disabled,
    /// Static partitioning: a group can never exceed its quota, even when
    /// the rest of the cluster sits idle. The baseline of experiment F2.
    Static,
    /// Quota with borrowing: guaranteed jobs are admitted within quota;
    /// best-effort jobs may borrow any idle capacity and are preempted
    /// when the owning group's guaranteed demand returns.
    Borrowing,
}

impl std::fmt::Display for QuotaMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QuotaMode::Disabled => "disabled",
            QuotaMode::Static => "static",
            QuotaMode::Borrowing => "borrowing",
        };
        f.write_str(s)
    }
}

/// Tracks per-group GPU usage against quotas.
///
/// Usage is split by QoS class: guaranteed usage is charged against the
/// group's quota; best-effort usage is tracked separately as borrowed
/// capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuotaTable {
    quotas: Vec<u32>,
    guaranteed_used: Vec<u32>,
    best_effort_used: Vec<u32>,
}

impl QuotaTable {
    /// Builds the table from a roster's quotas.
    pub fn from_roster(roster: &GroupRoster) -> Self {
        let quotas: Vec<u32> = roster.ids().map(|g| roster.quota(g)).collect();
        let n = quotas.len();
        QuotaTable {
            quotas,
            guaranteed_used: vec![0; n],
            best_effort_used: vec![0; n],
        }
    }

    /// Builds a table with explicit quotas (tests, ad-hoc setups).
    pub fn from_quotas(quotas: Vec<u32>) -> Self {
        let n = quotas.len();
        QuotaTable {
            quotas,
            guaranteed_used: vec![0; n],
            best_effort_used: vec![0; n],
        }
    }

    /// Number of groups tracked.
    pub fn group_count(&self) -> usize {
        self.quotas.len()
    }

    /// Quota of a group in GPUs.
    pub fn quota(&self, group: GroupId) -> u32 {
        self.quotas[group.index()]
    }

    /// All quotas, indexed by group.
    pub fn quotas(&self) -> &[u32] {
        &self.quotas
    }

    /// GPUs a group currently runs under guarantee.
    pub fn guaranteed_used(&self, group: GroupId) -> u32 {
        self.guaranteed_used[group.index()]
    }

    /// GPUs a group currently borrows (best-effort).
    pub fn borrowed(&self, group: GroupId) -> u32 {
        self.best_effort_used[group.index()]
    }

    /// Total GPUs a group currently uses across both classes.
    pub fn total_used(&self, group: GroupId) -> u32 {
        self.guaranteed_used(group) + self.borrowed(group)
    }

    /// Whether `request` may be admitted under `mode` right now.
    ///
    /// This is the *quota* check only; the caller still needs a feasible
    /// placement.
    pub fn admits(&self, mode: QuotaMode, request: &TaskRequest) -> bool {
        let g = request.group.index();
        let demand = request.total_gpus();
        match mode {
            QuotaMode::Disabled => true,
            QuotaMode::Static => {
                // Everything counts against the partition, regardless of QoS.
                self.guaranteed_used[g] + self.best_effort_used[g] + demand <= self.quotas[g]
            }
            QuotaMode::Borrowing => match request.qos {
                // Guaranteed demand must fit in the quota.
                QosClass::Guaranteed => self.guaranteed_used[g] + demand <= self.quotas[g],
                // Best-effort demand is only bounded by physical capacity.
                QosClass::BestEffort => true,
            },
        }
    }

    /// Charges a started task's GPUs to its group.
    pub fn charge(&mut self, request: &TaskRequest) {
        let g = request.group.index();
        let demand = request.total_gpus();
        match request.qos {
            QosClass::Guaranteed => self.guaranteed_used[g] += demand,
            QosClass::BestEffort => self.best_effort_used[g] += demand,
        }
    }

    /// Releases a finished/preempted task's GPUs.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if releasing more than is charged — that is
    /// always an accounting bug upstream.
    pub fn release(&mut self, request: &TaskRequest) {
        let g = request.group.index();
        let demand = request.total_gpus();
        match request.qos {
            QosClass::Guaranteed => {
                debug_assert!(self.guaranteed_used[g] >= demand, "quota release underflow");
                self.guaranteed_used[g] = self.guaranteed_used[g].saturating_sub(demand);
            }
            QosClass::BestEffort => {
                debug_assert!(
                    self.best_effort_used[g] >= demand,
                    "quota release underflow"
                );
                self.best_effort_used[g] = self.best_effort_used[g].saturating_sub(demand);
            }
        }
    }

    /// Total GPUs currently borrowed across all groups — exactly the GPU
    /// count held by best-effort leases, which is what a full reclaim
    /// (preempting every borrower) would hand back to the free pool.
    pub fn borrowed_total(&self) -> u32 {
        self.best_effort_used.iter().sum()
    }

    /// Per-group total GPU usage, indexed by group (for policy contexts).
    pub fn usage_by_group(&self) -> Vec<u32> {
        (0..self.quotas.len())
            .map(|i| self.guaranteed_used[i] + self.best_effort_used[i])
            .collect()
    }

    /// Fills `out` with [`QuotaTable::usage_by_group`] without allocating
    /// (the scheduler reuses one scratch vector across rounds).
    pub fn usage_by_group_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            (0..self.quotas.len()).map(|i| self.guaranteed_used[i] + self.best_effort_used[i]),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::ResourceVec;
    use tacc_workload::JobId;

    fn req(group: usize, gpus: u32, qos: QosClass) -> TaskRequest {
        TaskRequest {
            id: JobId::from_value(1),
            group: GroupId::from_index(group),
            qos,
            workers: 1,
            per_worker: ResourceVec::gpus_only(gpus),
            est_secs: 100.0,
            submit_secs: 0.0,
            elastic: false,
        }
    }

    #[test]
    fn static_mode_caps_everything() {
        let mut t = QuotaTable::from_quotas(vec![8]);
        let guaranteed = req(0, 6, QosClass::Guaranteed);
        assert!(t.admits(QuotaMode::Static, &guaranteed));
        t.charge(&guaranteed);
        // 6 used; 4 more would exceed 8, even as best-effort.
        assert!(!t.admits(QuotaMode::Static, &req(0, 4, QosClass::BestEffort)));
        assert!(t.admits(QuotaMode::Static, &req(0, 2, QosClass::BestEffort)));
    }

    #[test]
    fn borrowing_mode_lets_best_effort_exceed_quota() {
        let mut t = QuotaTable::from_quotas(vec![8, 8]);
        let be = req(0, 16, QosClass::BestEffort);
        assert!(t.admits(QuotaMode::Borrowing, &be));
        t.charge(&be);
        assert_eq!(t.borrowed(GroupId::from_index(0)), 16);
        assert_eq!(t.guaranteed_used(GroupId::from_index(0)), 0);
        // Guaranteed demand is still capped by quota.
        assert!(t.admits(QuotaMode::Borrowing, &req(0, 8, QosClass::Guaranteed)));
        assert!(!t.admits(QuotaMode::Borrowing, &req(0, 9, QosClass::Guaranteed)));
    }

    #[test]
    fn disabled_mode_admits_all() {
        let t = QuotaTable::from_quotas(vec![0]);
        assert!(t.admits(QuotaMode::Disabled, &req(0, 64, QosClass::Guaranteed)));
    }

    #[test]
    fn charge_release_round_trip() {
        let mut t = QuotaTable::from_quotas(vec![8]);
        let r = req(0, 4, QosClass::Guaranteed);
        t.charge(&r);
        assert_eq!(t.total_used(GroupId::from_index(0)), 4);
        t.release(&r);
        assert_eq!(t.total_used(GroupId::from_index(0)), 0);
        assert_eq!(t.usage_by_group(), vec![0]);
    }

    #[test]
    fn roster_quotas_imported() {
        let roster = GroupRoster::campus_default(64);
        let t = QuotaTable::from_roster(&roster);
        assert_eq!(t.group_count(), 8);
        assert_eq!(t.quotas().iter().sum::<u32>(), 64);
    }
}
