//! Queue-ordering policies.

use serde::{Deserialize, Serialize};

use tacc_cluster::ResourceVec;
use tacc_workload::GroupId;

use crate::request::TaskRequest;

/// The queue-ordering policy in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PolicyKind {
    /// First-in-first-out by submission time.
    #[default]
    Fifo,
    /// Shortest (estimated) job first; ties broken FIFO. The estimate is
    /// the user's noisy one — SJF's real-world weakness is modelled.
    Sjf,
    /// Fair share: order groups by instantaneous GPU usage over quota
    /// weight, FIFO within a group.
    FairShare,
    /// Dominant-resource fairness: order groups by dominant share of the
    /// cluster across all resource dimensions.
    Drf,
    /// Multi-factor dynamic priority — the paper's "dynamic factors such
    /// as task queue length, task age, size, and QoS": tasks score points
    /// for waiting (aging), for being short when the queue is long
    /// (throughput mode under pressure), and for guaranteed QoS; large
    /// gangs pay a small size penalty. Highest score first.
    MultiFactor,
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Sjf => "sjf",
            PolicyKind::FairShare => "fair-share",
            PolicyKind::Drf => "drf",
            PolicyKind::MultiFactor => "multi-factor",
        };
        f.write_str(s)
    }
}

/// Inputs the ordering policies need beyond the queue itself.
#[derive(Debug, Clone)]
pub struct PolicyContext<'a> {
    /// Per-group instantaneous GPU usage (running jobs).
    pub group_gpu_usage: &'a [u32],
    /// Per-group running resource totals (for DRF).
    pub group_usage_vec: &'a [ResourceVec],
    /// Per-group quota/weight.
    pub group_quota: &'a [u32],
    /// Total cluster capacity (for DRF shares).
    pub capacity: ResourceVec,
}

impl PolicyContext<'_> {
    fn usage_ratio(&self, group: GroupId) -> f64 {
        let used = f64::from(self.group_gpu_usage[group.index()]);
        let quota = f64::from(self.group_quota[group.index()].max(1));
        used / quota
    }

    fn dominant_share(&self, group: GroupId) -> f64 {
        self.group_usage_vec[group.index()].dominant_share(&self.capacity)
    }
}

/// The multi-factor score of one request (higher runs earlier).
///
/// Exposed crate-internally so the scheduler's tests can assert on the
/// factor weights directly.
pub(crate) fn multi_factor_score(now_secs: f64, queue_len: usize, r: &TaskRequest) -> f64 {
    // Aging: one point per waiting hour, capped at a day, so nothing
    // starves regardless of the other factors.
    let age = ((now_secs - r.submit_secs) / 3600.0).clamp(0.0, 24.0);
    // Queue pressure: when the queue is long, favour short jobs (classic
    // throughput mode); an empty queue leaves ordering to aging/QoS.
    let pressure = (queue_len as f64 / 50.0).min(2.0);
    let shortness = (3600.0 / r.est_secs.max(60.0)).min(4.0);
    // Size: each doubling of the gang costs half a point.
    let size_penalty = f64::from(r.total_gpus().max(1)).log2() * 0.5;
    let qos_bonus = match r.qos {
        tacc_workload::QosClass::Guaranteed => 2.0,
        tacc_workload::QosClass::BestEffort => 0.0,
    };
    age + pressure * shortness - size_penalty + qos_bonus
}

/// Compares two requests under `policy`'s ordering. Every arm ends in the
/// id tiebreak, so the relation is a total order and the sorted
/// permutation of any queue is *unique* — which is what lets the
/// scheduler keep a queue sorted by insertion instead of re-sorting, with
/// a provably identical result.
///
/// `now_secs` and `queue_len` only influence [`PolicyKind::MultiFactor`]
/// scores; every other policy's keys are independent of time and of the
/// queue itself (FIFO/SJF read only the request, FairShare/DRF also read
/// the group usage carried by `ctx`).
pub(crate) fn compare(
    policy: PolicyKind,
    now_secs: f64,
    queue_len: usize,
    a: &TaskRequest,
    b: &TaskRequest,
    ctx: &PolicyContext<'_>,
) -> std::cmp::Ordering {
    match policy {
        PolicyKind::Fifo => a
            .submit_secs
            .total_cmp(&b.submit_secs)
            .then(a.id.cmp(&b.id)),
        PolicyKind::Sjf => a
            .est_secs
            .total_cmp(&b.est_secs)
            .then(a.submit_secs.total_cmp(&b.submit_secs))
            .then(a.id.cmp(&b.id)),
        PolicyKind::FairShare => ctx
            .usage_ratio(a.group)
            .total_cmp(&ctx.usage_ratio(b.group))
            .then(a.submit_secs.total_cmp(&b.submit_secs))
            .then(a.id.cmp(&b.id)),
        PolicyKind::Drf => ctx
            .dominant_share(a.group)
            .total_cmp(&ctx.dominant_share(b.group))
            .then(a.submit_secs.total_cmp(&b.submit_secs))
            .then(a.id.cmp(&b.id)),
        PolicyKind::MultiFactor => multi_factor_score(now_secs, queue_len, b)
            .total_cmp(&multi_factor_score(now_secs, queue_len, a))
            .then(a.submit_secs.total_cmp(&b.submit_secs))
            .then(a.id.cmp(&b.id)),
    }
}

/// Sorts the pending queue in scheduling order under `policy`.
///
/// The sort is stable and all keys are totally ordered, so the result is
/// deterministic for identical inputs.
pub(crate) fn order_queue(
    policy: PolicyKind,
    now_secs: f64,
    queue: &mut [TaskRequest],
    ctx: &PolicyContext<'_>,
) {
    let queue_len = queue.len();
    queue.sort_by(|a, b| compare(policy, now_secs, queue_len, a, b, ctx));
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_workload::{JobId, QosClass};

    fn req(id: u64, group: usize, submit: f64, est: f64) -> TaskRequest {
        TaskRequest {
            id: JobId::from_value(id),
            group: GroupId::from_index(group),
            qos: QosClass::Guaranteed,
            workers: 1,
            per_worker: ResourceVec::gpus_only(1),
            est_secs: est,
            submit_secs: submit,
            elastic: false,
        }
    }

    fn ids(queue: &[TaskRequest]) -> Vec<u64> {
        queue.iter().map(|r| r.id.value()).collect()
    }

    fn ctx<'a>(
        usage: &'a [u32],
        usage_vec: &'a [ResourceVec],
        quota: &'a [u32],
    ) -> PolicyContext<'a> {
        PolicyContext {
            group_gpu_usage: usage,
            group_usage_vec: usage_vec,
            group_quota: quota,
            capacity: ResourceVec::new(100, 1000, 4000),
        }
    }

    #[test]
    fn fifo_orders_by_submit() {
        let mut q = vec![
            req(1, 0, 30.0, 1.0),
            req(2, 0, 10.0, 9.0),
            req(3, 0, 20.0, 5.0),
        ];
        let usage = [0u32; 1];
        let uv = [ResourceVec::ZERO; 1];
        let quota = [10u32; 1];
        order_queue(PolicyKind::Fifo, 0.0, &mut q, &ctx(&usage, &uv, &quota));
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn sjf_orders_by_estimate() {
        let mut q = vec![
            req(1, 0, 0.0, 500.0),
            req(2, 0, 1.0, 100.0),
            req(3, 0, 2.0, 300.0),
        ];
        let usage = [0u32; 1];
        let uv = [ResourceVec::ZERO; 1];
        let quota = [10u32; 1];
        order_queue(PolicyKind::Sjf, 0.0, &mut q, &ctx(&usage, &uv, &quota));
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn fair_share_prefers_underserved_group() {
        // Group 0 uses 8/10; group 1 uses 1/10.
        let usage = [8u32, 1];
        let uv = [ResourceVec::gpus_only(8), ResourceVec::gpus_only(1)];
        let quota = [10u32, 10];
        let mut q = vec![req(1, 0, 0.0, 10.0), req(2, 1, 5.0, 10.0)];
        order_queue(
            PolicyKind::FairShare,
            10.0,
            &mut q,
            &ctx(&usage, &uv, &quota),
        );
        assert_eq!(ids(&q), vec![2, 1]);
    }

    #[test]
    fn fair_share_respects_quota_weighting() {
        // Same usage, different quotas: the bigger-quota group is less served.
        let usage = [4u32, 4];
        let uv = [ResourceVec::gpus_only(4), ResourceVec::gpus_only(4)];
        let quota = [40u32, 8];
        let mut q = vec![req(1, 1, 0.0, 10.0), req(2, 0, 5.0, 10.0)];
        order_queue(
            PolicyKind::FairShare,
            10.0,
            &mut q,
            &ctx(&usage, &uv, &quota),
        );
        assert_eq!(ids(&q), vec![2, 1]);
    }

    #[test]
    fn drf_orders_by_dominant_share() {
        // Group 0: gpu-dominant 10/100 = 0.1; group 1: cpu 300/1000 = 0.3.
        let usage = [10u32, 0];
        let uv = [ResourceVec::new(10, 50, 100), ResourceVec::new(0, 300, 100)];
        let quota = [10u32, 10];
        let mut q = vec![req(1, 1, 0.0, 10.0), req(2, 0, 5.0, 10.0)];
        order_queue(PolicyKind::Drf, 10.0, &mut q, &ctx(&usage, &uv, &quota));
        assert_eq!(ids(&q), vec![2, 1]);
    }

    #[test]
    fn multi_factor_ages_and_prefers_short_under_pressure() {
        let usage = [0u32; 1];
        let uv = [ResourceVec::ZERO; 1];
        let quota = [10u32; 1];
        // Job 1: old, long. Job 2: fresh, short. With a long queue the
        // short job wins while young, but a day of aging dominates.
        let old_long = req(1, 0, 0.0, 50_000.0);
        let fresh_short = req(2, 0, 3600.0 * 23.0, 120.0);
        let score_old = multi_factor_score(3600.0 * 24.0, 100, &old_long);
        let score_fresh = multi_factor_score(3600.0 * 24.0, 100, &fresh_short);
        // Old job has aged 24h (capped), fresh one 1h + shortness bonus.
        assert!(score_old > score_fresh);

        let mut q = vec![old_long, fresh_short];
        order_queue(
            PolicyKind::MultiFactor,
            3600.0 * 24.0,
            &mut q,
            &ctx(&usage, &uv, &quota),
        );
        assert_eq!(ids(&q), vec![1, 2]);

        // Same submit times, long queue: the short job jumps ahead.
        let mut q2 = vec![req(3, 0, 0.0, 50_000.0), req(4, 0, 0.0, 120.0)];
        order_queue(
            PolicyKind::MultiFactor,
            100.0,
            &mut q2,
            &ctx(&usage, &uv, &quota),
        );
        assert_eq!(ids(&q2), vec![4, 3]);
    }

    #[test]
    fn multi_factor_weighs_qos_and_size() {
        // Same age and estimate: guaranteed beats best-effort, and the
        // 64-GPU gang pays a size penalty vs the 1-GPU job.
        let small = req(1, 0, 0.0, 3600.0);
        let mut big = req(2, 0, 0.0, 3600.0);
        big.workers = 8;
        big.per_worker = ResourceVec::gpus_only(8);
        assert!(multi_factor_score(10.0, 10, &small) > multi_factor_score(10.0, 10, &big));
        let mut be = small;
        be.qos = tacc_workload::QosClass::BestEffort;
        assert!(multi_factor_score(10.0, 10, &small) > multi_factor_score(10.0, 10, &be));
    }

    #[test]
    fn ties_fall_back_to_fifo_then_id() {
        let usage = [0u32; 2];
        let uv = [ResourceVec::ZERO; 2];
        let quota = [10u32; 2];
        let mut q = vec![req(5, 0, 1.0, 100.0), req(4, 1, 1.0, 100.0)];
        order_queue(PolicyKind::Sjf, 0.0, &mut q, &ctx(&usage, &uv, &quota));
        assert_eq!(ids(&q), vec![4, 5]);
    }
}
