//! A deliberately naive reference scheduler for differential testing.
//!
//! [`ReferenceScheduler`] reproduces the scheduling semantics of
//! [`Scheduler`](crate::Scheduler) the way the hot path looked *before*
//! the incremental-state optimizations: it re-sorts the queue from
//! scratch every round, clones the queue into a fresh snapshot, recounts
//! per-group usage on demand, removes queue entries by linear scan, and
//! plans placements through [`Planner::plan_ungated`] — no capacity-index
//! fast paths anywhere.
//!
//! None of that should matter: the optimizations are all claimed to be
//! decision-invariant. The differential tests in
//! `crates/sched/tests/differential.rs` drive both schedulers through
//! randomized traces and require byte-identical decision streams, which
//! makes this module the executable statement of that claim.
//!
//! The reference intentionally skips everything that is *not* a decision:
//! no metrics, no decision tracing, no work counters. It is test
//! infrastructure, kept in the library (rather than `tests/`) so the
//! proptest harness and any future bench can share it.

use std::collections::BTreeMap;

use tacc_cluster::Cluster;
use tacc_workload::{JobId, QosClass};

use crate::backfill::{may_backfill, reserve_with_windows, BackfillMode, Reservation};
use crate::placement::Planner;
use crate::policy::{order_queue, PolicyContext};
use crate::quota::{QuotaMode, QuotaTable};
use crate::request::{Decision, RunningTask, SchedOutcome, StartedTask, TaskRequest};
use crate::scheduler::SchedulerConfig;

/// The naive scheduler: same decisions as [`Scheduler`](crate::Scheduler),
/// none of the incremental state. See the module docs.
#[derive(Debug)]
pub struct ReferenceScheduler {
    config: SchedulerConfig,
    planner: Planner,
    quota: QuotaTable,
    queue: Vec<TaskRequest>,
    running: BTreeMap<JobId, RunningTask>,
}

impl ReferenceScheduler {
    /// Creates a reference scheduler from the same configuration type the
    /// optimized scheduler takes.
    pub fn new(config: SchedulerConfig) -> Self {
        let mut quotas = config.quotas.clone();
        if quotas.len() < config.group_count {
            quotas.resize(config.group_count, 0);
        }
        ReferenceScheduler {
            planner: Planner::new(config.placement),
            quota: QuotaTable::from_quotas(quotas),
            config,
            queue: Vec::new(),
            running: BTreeMap::new(),
        }
    }

    /// Tasks currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tasks currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Adds a task to the queue. The caller (the differential driver)
    /// guarantees id uniqueness and group bounds; unlike the optimized
    /// scheduler this type never panics, per the library's panic ratchet.
    pub fn submit(&mut self, request: TaskRequest) {
        self.queue.push(request);
    }

    /// Removes a queued task by linear scan. Returns `true` if found.
    pub fn cancel(&mut self, id: JobId) -> bool {
        let before = self.queue.len();
        self.queue.retain(|r| r.id != id);
        self.queue.len() != before
    }

    /// Reports a running task finished; releases its lease and quota.
    pub fn task_finished(&mut self, id: JobId, cluster: &mut Cluster) -> Option<RunningTask> {
        let task = self.running.remove(&id)?;
        // A running task always holds a valid lease; the optimized
        // scheduler `expect`s here, the reference stays panic-free.
        let _ = cluster.release(task.lease_id);
        self.quota.release(&task.request);
        Some(task)
    }

    /// Gang time-slicing, mirroring [`Scheduler::rotate`](crate::Scheduler::rotate)
    /// decision-for-decision.
    pub fn rotate(&mut self, now_secs: f64, cluster: &mut Cluster) -> SchedOutcome {
        let Some(quantum) = self.config.time_slice_secs else {
            return SchedOutcome::default();
        };
        if self.queue.is_empty() {
            return SchedOutcome::default();
        }
        let mut expired: Vec<(f64, JobId)> = self
            .running
            .values()
            .filter(|t| t.request.qos == QosClass::BestEffort && now_secs - t.start_secs >= quantum)
            .map(|t| (t.start_secs, t.request.id))
            .collect();
        if expired.is_empty() {
            return SchedOutcome::default();
        }
        expired.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut hypothetical = cluster.clone();
        let mut needed = None;
        for (i, &(_, id)) in expired.iter().enumerate() {
            let Some(task) = self.running.get(&id) else {
                continue;
            };
            let _ = hypothetical.release(task.lease_id);
            let fits_someone = self.queue.iter().any(|r| {
                self.quota.admits(self.config.quota, r)
                    && self
                        .planner
                        .plan_ungated(&hypothetical, r.workers, r.per_worker)
                        .is_some()
            });
            if fits_someone {
                needed = Some(i + 1);
                break;
            }
        }
        let Some(count) = needed else {
            return SchedOutcome::default();
        };

        let mut outcome = SchedOutcome::default();
        for &(_, victim) in &expired[..count] {
            let Some(task) = self.task_finished(victim, cluster) else {
                continue;
            };
            outcome.decisions.push(Decision::Preempt {
                id: victim,
                reclaimed_for: task.request.group,
            });
            self.queue.push(TaskRequest {
                submit_secs: now_secs,
                workers: task.requested_workers,
                ..task.request
            });
        }
        let follow_up = self.schedule(now_secs, cluster);
        outcome.decisions.extend(follow_up.decisions);
        outcome
    }

    /// One scheduling round, the pre-optimization way: unconditional sort
    /// over freshly recomputed usage, a cloned queue snapshot, and ungated
    /// planning.
    pub fn schedule(&mut self, now_secs: f64, cluster: &mut Cluster) -> SchedOutcome {
        let mut outcome = SchedOutcome::default();

        let gpu_usage = self.quota.usage_by_group();
        let usage_vec = self.group_usage_vectors();
        let ctx = PolicyContext {
            group_gpu_usage: &gpu_usage,
            group_usage_vec: &usage_vec,
            group_quota: self.quota.quotas(),
            capacity: cluster.total_capacity(),
        };
        order_queue(self.config.policy, now_secs, &mut self.queue, &ctx);

        let mut reservations: Vec<Reservation> = Vec::new();
        let queue_snapshot = self.queue.clone();

        for request in queue_snapshot.iter() {
            if !self.quota.admits(self.config.quota, request) {
                if self.config.backfill == BackfillMode::None {
                    break;
                }
                continue;
            }

            if !reservations.is_empty() {
                let est_end = now_secs + request.est_secs;
                let permitted = match self.config.backfill {
                    BackfillMode::None => false,
                    BackfillMode::Easy => {
                        may_backfill(est_end, request.total_gpus(), &reservations[0])
                    }
                    BackfillMode::Conservative => reservations
                        .iter()
                        .all(|r| may_backfill(est_end, request.total_gpus(), r)),
                };
                if !permitted {
                    if self.config.backfill == BackfillMode::Conservative {
                        self.push_reservation(now_secs, request, cluster, &mut reservations);
                    }
                    continue;
                }
            }

            let backfilled = !reservations.is_empty();
            match self.try_place(now_secs, request, cluster, &mut outcome) {
                Some(start) => {
                    outcome.decisions.push(Decision::Start(StartedTask {
                        backfilled,
                        ..start
                    }));
                }
                None => match self.config.backfill {
                    BackfillMode::None => break,
                    BackfillMode::Easy => {
                        if reservations.is_empty() {
                            self.push_reservation(now_secs, request, cluster, &mut reservations);
                        }
                    }
                    BackfillMode::Conservative => {
                        self.push_reservation(now_secs, request, cluster, &mut reservations);
                    }
                },
            }
        }

        outcome
    }

    fn try_place(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &mut Cluster,
        outcome: &mut SchedOutcome,
    ) -> Option<StartedTask> {
        if let Some(start) = self.commit_placement(now_secs, request, cluster) {
            return Some(start);
        }
        if self.config.quota != QuotaMode::Borrowing || request.qos != QosClass::Guaranteed {
            return None;
        }
        let mut victims: Vec<(f64, JobId)> = self
            .running
            .values()
            .filter(|t| t.request.qos == QosClass::BestEffort)
            .map(|t| (t.start_secs, t.request.id))
            .collect();
        if victims.is_empty() {
            return None;
        }
        let mut hypothetical = cluster.clone();
        for t in self.running.values() {
            if t.request.qos == QosClass::BestEffort {
                let _ = hypothetical.release(t.lease_id);
            }
        }
        self.planner
            .plan_ungated(&hypothetical, request.workers, request.per_worker)?;

        victims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, victim_id) in victims {
            let Some(task) = self.task_finished(victim_id, cluster) else {
                continue;
            };
            outcome.decisions.push(Decision::Preempt {
                id: victim_id,
                reclaimed_for: request.group,
            });
            self.queue.push(TaskRequest {
                workers: task.requested_workers,
                ..task.request
            });
            if let Some(start) = self.commit_placement(now_secs, request, cluster) {
                return Some(start);
            }
        }
        // The pre-check above proved the placement feasible with every
        // borrower gone; the optimized scheduler treats reaching this point
        // as unreachable. The panic-free reference just reports no start.
        None
    }

    fn commit_placement(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &mut Cluster,
    ) -> Option<StartedTask> {
        let mut granted = request.workers;
        let assignment = loop {
            if let Some(a) = self
                .planner
                .plan_ungated(cluster, granted, request.per_worker)
            {
                break a;
            }
            if !request.elastic || granted <= 1 {
                return None;
            }
            granted = (granted / 2).max(1);
        };
        self.queue.retain(|r| r.id != request.id);
        let shares = Planner::shares_for(&assignment, request.per_worker);
        // A freshly planned placement always allocates; stay panic-free.
        let lease = cluster.allocate(request.id.value(), &shares).ok()?;
        let granted_request = TaskRequest {
            workers: granted,
            ..*request
        };
        self.quota.charge(&granted_request);
        let scale = f64::from(request.workers) / f64::from(granted);
        self.running.insert(
            request.id,
            RunningTask {
                request: granted_request,
                requested_workers: request.workers,
                lease_id: lease.id(),
                worker_nodes: assignment.clone(),
                start_secs: now_secs,
                est_end_secs: now_secs + request.est_secs * scale,
            },
        );
        Some(StartedTask {
            request: *request,
            granted_workers: granted,
            lease,
            worker_nodes: assignment,
            backfilled: false,
        })
    }

    fn push_reservation(
        &self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &Cluster,
        reservations: &mut Vec<Reservation>,
    ) {
        let mut running: Vec<(f64, u32)> = self
            .running
            .values()
            .map(|t| (t.est_end_secs, t.request.total_gpus()))
            .collect();
        reservations.push(reserve_with_windows(
            now_secs,
            request.total_gpus(),
            cluster.free_gpus(),
            &mut running,
            &self.config.capacity_windows,
        ));
    }

    fn group_usage_vectors(&self) -> Vec<tacc_cluster::ResourceVec> {
        let mut usage = vec![tacc_cluster::ResourceVec::ZERO; self.config.group_count];
        for task in self.running.values() {
            usage[task.request.group.index()] += task.request.total_resources();
        }
        usage
    }
}
