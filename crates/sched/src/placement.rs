//! Gang placement strategies (experiment T2).
//!
//! Placement answers "which physical nodes, *right now*" — the spatial
//! half of scheduling. The temporal half ("when, and with how much left
//! over") lives in [`crate::slotset`]: the planner there works on
//! abstract resource ids and only *forecasts* availability, so every
//! forecast start still funnels through a [`Planner`] call against the
//! real cluster before any job launches.

use serde::{Deserialize, Serialize};

use tacc_cluster::{Cluster, NodeId, ResourceVec};

/// How the scheduler maps a gang's workers onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PlacementStrategy {
    /// Best-fit packing: prefer the fullest nodes that still fit, keeping
    /// large contiguous blocks free (low fragmentation).
    #[default]
    Pack,
    /// Worst-fit spreading: prefer the emptiest nodes (low interference,
    /// high fragmentation).
    Spread,
    /// Topology-aware: fit the gang on one node if possible, else within
    /// one rack, else pack across as few racks as possible (fast
    /// collectives for distributed jobs).
    TopologyAware,
}

impl std::fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlacementStrategy::Pack => "pack",
            PlacementStrategy::Spread => "spread",
            PlacementStrategy::TopologyAware => "topology-aware",
        };
        f.write_str(s)
    }
}

/// Deterministic counters of planner work, accumulated across
/// [`Planner::plan_counted`] calls. They measure *algorithm effort*, not
/// wall time, so identical inputs always produce identical counts — which
/// is what the perf harness and its CI gate compare.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Placement attempts (one per `plan_counted` call with `workers > 0`).
    pub attempts: u64,
    /// Nodes examined by full-scan candidate collection (the ungated
    /// reference path and rack-subset scans) across all attempts.
    pub nodes_scanned: u64,
    /// Attempts refused by the O(1) capacity gates before any node scan.
    pub fastpath_rejects: u64,
    /// Entries examined in the cluster's sorted free-capacity index by the
    /// gated planning paths (each probe replaces what used to be part of a
    /// full node scan + sort).
    pub free_index_probes: u64,
}

/// A placement planner: pure logic over a cluster snapshot, no state.
///
/// Returns, for a gang of `workers` each needing `per_worker`, the node of
/// every worker — or `None` if the gang cannot be placed atomically right
/// now (gang scheduling is all-or-nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Planner {
    strategy: PlacementStrategy,
}

impl Planner {
    /// Creates a planner with the given strategy.
    pub fn new(strategy: PlacementStrategy) -> Self {
        Planner { strategy }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Plans worker→node assignments for a gang, or `None` if it does not
    /// fit. Does **not** allocate; the caller commits via
    /// [`Cluster::allocate`].
    pub fn plan(
        &self,
        cluster: &Cluster,
        workers: u32,
        per_worker: ResourceVec,
    ) -> Option<Vec<NodeId>> {
        let mut stats = PlanStats::default();
        self.plan_counted(cluster, workers, per_worker, &mut stats)
    }

    /// [`Planner::plan`] with work accounting: accumulates attempt, node-scan
    /// and fast-path-reject counts into `stats`.
    ///
    /// Before scanning any node, two O(1) infeasibility gates consult the
    /// cluster's incremental capacity index. Both are *conservative*: the
    /// cached totals include drained nodes, a superset of schedulable
    /// capacity, so a gate only fires when the full scan would certainly
    /// have returned `None` — the gates never change a scheduling decision.
    pub fn plan_counted(
        &self,
        cluster: &Cluster,
        workers: u32,
        per_worker: ResourceVec,
        stats: &mut PlanStats,
    ) -> Option<Vec<NodeId>> {
        if workers == 0 {
            return Some(Vec::new());
        }
        stats.attempts += 1;
        // Gate 1: aggregate GPU demand exceeds every free GPU in the
        // cluster (drained ones included) — no assignment can exist.
        // Gate 2: a single worker needs more GPUs than the largest free
        // block on any node — no node can host even one worker.
        // Neither gate fires for CPU-only work (`per_worker.gpus == 0`).
        let total_gpus = per_worker.gpus.saturating_mul(workers);
        if total_gpus > cluster.free_gpus() || per_worker.gpus > cluster.largest_free_block() {
            stats.fastpath_rejects += 1;
            return None;
        }
        match self.strategy {
            PlacementStrategy::Pack => {
                self.plan_greedy_indexed(cluster, workers, per_worker, false, stats)
            }
            PlacementStrategy::Spread => {
                self.plan_greedy_indexed(cluster, workers, per_worker, true, stats)
            }
            PlacementStrategy::TopologyAware => {
                self.plan_topology(cluster, workers, per_worker, true, stats)
            }
        }
    }

    /// [`Planner::plan`] **without** the O(1) infeasibility gates or the
    /// sorted free-capacity index: every attempt runs the full node scan
    /// and sort, exactly as the planner behaved before the capacity index
    /// existed. The naive reference scheduler plans through this so the
    /// differential tests check the gated/indexed and ungated/scanning
    /// paths against each other.
    pub fn plan_ungated(
        &self,
        cluster: &Cluster,
        workers: u32,
        per_worker: ResourceVec,
    ) -> Option<Vec<NodeId>> {
        if workers == 0 {
            return Some(Vec::new());
        }
        let mut stats = PlanStats::default();
        match self.strategy {
            PlacementStrategy::Pack => {
                self.plan_greedy(cluster, workers, per_worker, false, &mut stats)
            }
            PlacementStrategy::Spread => {
                self.plan_greedy(cluster, workers, per_worker, true, &mut stats)
            }
            PlacementStrategy::TopologyAware => {
                self.plan_topology(cluster, workers, per_worker, false, &mut stats)
            }
        }
    }

    /// Greedy fill over nodes ordered by free GPUs (ascending for packing,
    /// descending for spreading; free CPU breaks ties, node id makes the
    /// order total and deterministic).
    fn plan_greedy(
        &self,
        cluster: &Cluster,
        workers: u32,
        per_worker: ResourceVec,
        spread: bool,
        stats: &mut PlanStats,
    ) -> Option<Vec<NodeId>> {
        stats.nodes_scanned += cluster.node_count() as u64;
        let mut nodes: Vec<(NodeId, ResourceVec)> = cluster
            .nodes()
            .filter(|n| n.is_schedulable())
            .map(|n| (n.id(), n.free()))
            .filter(|(_, free)| per_worker.fits_in(free))
            .collect();
        nodes.sort_by_key(|&(id, free)| (free.gpus, free.cpu_cores, id));
        if spread {
            nodes.reverse();
        }
        let mut assignment = Vec::with_capacity(workers as usize);
        if spread {
            // Round-robin across the emptiest nodes: one worker per node
            // first, wrapping only when every node has taken one.
            let mut remaining: Vec<(NodeId, ResourceVec)> = nodes;
            let mut placed = 0;
            while placed < workers {
                let mut progressed = false;
                for (id, free) in remaining.iter_mut() {
                    if placed == workers {
                        break;
                    }
                    if per_worker.fits_in(free) {
                        assignment.push(*id);
                        *free -= per_worker;
                        placed += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    return None;
                }
            }
        } else {
            // Packing: exhaust each node before moving to the next.
            for (id, mut free) in nodes {
                while assignment.len() < workers as usize && per_worker.fits_in(&free) {
                    assignment.push(id);
                    free -= per_worker;
                }
                if assignment.len() == workers as usize {
                    break;
                }
            }
            if assignment.len() < workers as usize {
                return None;
            }
        }
        Some(assignment)
    }

    /// Index-backed greedy fill: walks the cluster's sorted free-capacity
    /// index (maintained incrementally on every grant/release) in exactly
    /// the order [`Planner::plan_greedy`] would have produced by scanning
    /// and sorting, so decisions are identical while candidate selection
    /// becomes a bounded probe. The range query skips every node whose
    /// free GPUs cannot host one worker — such nodes fail `fits_in`
    /// regardless — and packing stops as soon as the gang is complete.
    fn plan_greedy_indexed(
        &self,
        cluster: &Cluster,
        workers: u32,
        per_worker: ResourceVec,
        spread: bool,
        stats: &mut PlanStats,
    ) -> Option<Vec<NodeId>> {
        let mut assignment = Vec::with_capacity(workers as usize);
        if spread {
            // Round-robin across the emptiest nodes: one worker per node
            // first, wrapping only when every node has taken one.
            let mut remaining: Vec<(NodeId, ResourceVec)> = Vec::new();
            for (_, _, id) in cluster.free_index_from(per_worker.gpus).rev() {
                stats.free_index_probes += 1;
                // tacc-lint: allow(panic-surface, reason = "the free-capacity index holds only live node ids; a miss would mean the index desynced from the cluster it mirrors")
                let free = cluster.node(id).expect("indexed node exists").free();
                if per_worker.fits_in(&free) {
                    remaining.push((id, free));
                }
            }
            let mut placed = 0;
            while placed < workers {
                let mut progressed = false;
                for (id, free) in remaining.iter_mut() {
                    if placed == workers {
                        break;
                    }
                    if per_worker.fits_in(free) {
                        assignment.push(*id);
                        *free -= per_worker;
                        placed += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    return None;
                }
            }
        } else {
            // Packing: exhaust each node before moving to the next.
            for (_, _, id) in cluster.free_index_from(per_worker.gpus) {
                stats.free_index_probes += 1;
                // tacc-lint: allow(panic-surface, reason = "the free-capacity index holds only live node ids; a miss would mean the index desynced from the cluster it mirrors")
                let mut free = cluster.node(id).expect("indexed node exists").free();
                while assignment.len() < workers as usize && per_worker.fits_in(&free) {
                    assignment.push(id);
                    free -= per_worker;
                }
                if assignment.len() == workers as usize {
                    break;
                }
            }
            if assignment.len() < workers as usize {
                return None;
            }
        }
        Some(assignment)
    }

    /// Topology-aware: single node → single rack → fewest racks (greedy by
    /// rack free capacity), packing within each tier. With `use_index` the
    /// single-node tier and the cluster-wide fallback walk the sorted
    /// free-capacity index instead of scanning every node (identical
    /// decisions, bounded probes).
    fn plan_topology(
        &self,
        cluster: &Cluster,
        workers: u32,
        per_worker: ResourceVec,
        use_index: bool,
        stats: &mut PlanStats,
    ) -> Option<Vec<NodeId>> {
        let gang_fits_whole = |free: ResourceVec| {
            let mut free = free;
            let mut fit = 0;
            while per_worker.fits_in(&free) && fit < workers {
                free -= per_worker;
                fit += 1;
            }
            fit == workers
        };
        // Tier 1: whole gang on one node; among feasible nodes pick the
        // fullest (min free GPUs), node id breaking ties.
        if use_index {
            let total_gpus = per_worker.gpus.saturating_mul(workers);
            let mut best: Option<NodeId> = None;
            let mut best_gpus: Option<u32> = None;
            for (gpus, _, id) in cluster.free_index_from(total_gpus) {
                stats.free_index_probes += 1;
                if best_gpus.is_some_and(|g| gpus > g) {
                    // A lower-free-GPU group already produced a feasible
                    // node; later groups cannot beat it.
                    break;
                }
                // tacc-lint: allow(panic-surface, reason = "the free-capacity index holds only live node ids; a miss would mean the index desynced from the cluster it mirrors")
                let free = cluster.node(id).expect("indexed node exists").free();
                if gang_fits_whole(free) {
                    best_gpus = Some(gpus);
                    best = Some(match best {
                        Some(b) if b < id => b,
                        _ => id,
                    });
                }
            }
            if let Some(node) = best {
                return Some(vec![node; workers as usize]);
            }
        } else {
            stats.nodes_scanned += cluster.node_count() as u64;
            let mut single: Vec<NodeId> = cluster
                .nodes()
                .filter(|n| n.is_schedulable())
                .filter(|n| gang_fits_whole(n.free()))
                .map(|n| n.id())
                .collect();
            // Among feasible single nodes, pick the fullest (pack).
            single.sort_by_key(|&id| {
                let n = cluster.node(id).expect("listed node exists");
                (n.free().gpus, id)
            });
            if let Some(&node) = single.first() {
                return Some(vec![node; workers as usize]);
            }
        }

        // Tier 2: whole gang within one rack. Racks tried in ascending
        // spare capacity that still fits (pack racks too).
        let rack_count = cluster.topology().rack_count();
        let mut rack_plans: Vec<(u32, Vec<NodeId>)> = Vec::new();
        for rack in 0..rack_count {
            let in_rack: Vec<NodeId> = cluster
                .nodes()
                .filter(|n| n.rack().index() == rack)
                .map(|n| n.id())
                .collect();
            if let Some(plan) = self.plan_within(cluster, &in_rack, workers, per_worker, stats) {
                let rack_free: u32 = in_rack
                    .iter()
                    .map(|&id| cluster.node(id).expect("exists").free().gpus)
                    .sum();
                rack_plans.push((rack_free, plan));
            }
        }
        rack_plans.sort_by_key(|&(free, _)| free);
        if let Some((_, plan)) = rack_plans.into_iter().next() {
            return Some(plan);
        }

        // Tier 3: fall back to cluster-wide packing (minimizes nodes, which
        // correlates with fewer racks).
        if use_index {
            self.plan_greedy_indexed(cluster, workers, per_worker, false, stats)
        } else {
            self.plan_greedy(cluster, workers, per_worker, false, stats)
        }
    }

    /// Packs a gang into an explicit node subset, or `None`.
    fn plan_within(
        &self,
        cluster: &Cluster,
        subset: &[NodeId],
        workers: u32,
        per_worker: ResourceVec,
        stats: &mut PlanStats,
    ) -> Option<Vec<NodeId>> {
        stats.nodes_scanned += subset.len() as u64;
        let mut nodes: Vec<(NodeId, ResourceVec)> = subset
            .iter()
            .map(|&id| cluster.node(id).expect("subset node exists"))
            .filter(|n| n.is_schedulable())
            .map(|n| (n.id(), n.free()))
            .filter(|(_, free)| per_worker.fits_in(free))
            .collect();
        nodes.sort_by_key(|&(id, free)| (free.gpus, id));
        let mut assignment = Vec::with_capacity(workers as usize);
        for (id, mut free) in nodes {
            while assignment.len() < workers as usize && per_worker.fits_in(&free) {
                assignment.push(id);
                free -= per_worker;
            }
        }
        (assignment.len() == workers as usize).then_some(assignment)
    }

    /// Converts a worker→node assignment into per-node aggregate shares
    /// suitable for [`Cluster::allocate`].
    pub fn shares_for(
        assignment: &[NodeId],
        per_worker: ResourceVec,
    ) -> Vec<(NodeId, ResourceVec)> {
        assignment.iter().map(|&n| (n, per_worker)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::{ClusterSpec, GpuModel};

    fn cluster() -> Cluster {
        // 2 racks x 2 nodes x 8 GPUs.
        Cluster::new(ClusterSpec::uniform(2, 2, GpuModel::A100, 8))
    }

    fn occupy(cluster: &mut Cluster, node: usize, gpus: u32) {
        let id = NodeId::from_index(node);
        cluster
            .allocate(999, &[(id, ResourceVec::gpus_only(gpus))])
            .expect("test occupancy fits");
    }

    #[test]
    fn pack_prefers_fullest_node() {
        let mut c = cluster();
        occupy(&mut c, 1, 6); // node1 has 2 free
        let plan = Planner::new(PlacementStrategy::Pack)
            .plan(&c, 1, ResourceVec::gpus_only(2))
            .expect("fits");
        assert_eq!(plan, vec![NodeId::from_index(1)]);
    }

    #[test]
    fn spread_prefers_emptiest_nodes() {
        let mut c = cluster();
        occupy(&mut c, 0, 4);
        let plan = Planner::new(PlacementStrategy::Spread)
            .plan(&c, 2, ResourceVec::gpus_only(2))
            .expect("fits");
        // Two workers land on two different empty nodes, not node 0.
        assert_eq!(plan.len(), 2);
        assert_ne!(plan[0], plan[1]);
        assert!(!plan.contains(&NodeId::from_index(0)));
    }

    #[test]
    fn pack_colocates_gang_on_one_node() {
        let c = cluster();
        let plan = Planner::new(PlacementStrategy::Pack)
            .plan(&c, 2, ResourceVec::gpus_only(4))
            .expect("fits");
        assert_eq!(plan[0], plan[1]);
    }

    #[test]
    fn gang_is_all_or_nothing() {
        let mut c = cluster();
        // Leave 7,7,7,7 free per node by occupying 1 each: 28 total free,
        // but a 4x8 gang (needs 8 per node) cannot fit anywhere.
        for i in 0..4 {
            occupy(&mut c, i, 1);
        }
        for strategy in [
            PlacementStrategy::Pack,
            PlacementStrategy::Spread,
            PlacementStrategy::TopologyAware,
        ] {
            assert_eq!(
                Planner::new(strategy).plan(&c, 4, ResourceVec::gpus_only(8)),
                None,
                "{strategy} should refuse partial gangs"
            );
        }
    }

    #[test]
    fn topology_prefers_single_node_then_rack() {
        let mut c = cluster();
        let planner = Planner::new(PlacementStrategy::TopologyAware);
        // 8 GPUs as 2x4: fits one node.
        let plan = planner
            .plan(&c, 2, ResourceVec::gpus_only(4))
            .expect("fits");
        assert_eq!(plan[0], plan[1]);
        // Fill node0 fully, node1 partially: a 2x8 gang needs two full
        // nodes; only rack1 (nodes 2,3) has them.
        occupy(&mut c, 0, 8);
        occupy(&mut c, 1, 2);
        let plan = planner
            .plan(&c, 2, ResourceVec::gpus_only(8))
            .expect("fits");
        let racks: Vec<usize> = plan
            .iter()
            .map(|&n| c.topology().rack_of(n).index())
            .collect();
        assert_eq!(racks, vec![1, 1]);
    }

    #[test]
    fn topology_falls_back_across_racks() {
        let mut c = cluster();
        // One full node free per rack only.
        occupy(&mut c, 1, 8);
        occupy(&mut c, 3, 8);
        let plan = Planner::new(PlacementStrategy::TopologyAware)
            .plan(&c, 2, ResourceVec::gpus_only(8))
            .expect("fits across racks");
        assert_eq!(c.topology().racks_spanned(&plan), 2);
    }

    #[test]
    fn drained_nodes_are_never_planned() {
        let mut c = cluster();
        c.drain(NodeId::from_index(0));
        c.drain(NodeId::from_index(1));
        for strategy in [
            PlacementStrategy::Pack,
            PlacementStrategy::Spread,
            PlacementStrategy::TopologyAware,
        ] {
            let plan = Planner::new(strategy)
                .plan(&c, 2, ResourceVec::gpus_only(8))
                .expect("rack 1 still has two nodes");
            assert!(!plan.contains(&NodeId::from_index(0)), "{strategy}");
            assert!(!plan.contains(&NodeId::from_index(1)), "{strategy}");
        }
        // Drain everything: nothing places.
        c.drain(NodeId::from_index(2));
        c.drain(NodeId::from_index(3));
        assert_eq!(
            Planner::default().plan(&c, 1, ResourceVec::gpus_only(1)),
            None
        );
    }

    #[test]
    fn infeasible_returns_none() {
        let c = cluster();
        let planner = Planner::new(PlacementStrategy::Pack);
        assert_eq!(planner.plan(&c, 1, ResourceVec::gpus_only(9)), None);
        assert_eq!(planner.plan(&c, 5, ResourceVec::gpus_only(8)), None);
    }

    #[test]
    fn shares_align_with_assignment() {
        let c = cluster();
        let plan = Planner::new(PlacementStrategy::Pack)
            .plan(&c, 2, ResourceVec::gpus_only(4))
            .expect("fits");
        let shares = Planner::shares_for(&plan, ResourceVec::gpus_only(4));
        assert_eq!(shares.len(), 2);
        let mut c2 = c.clone();
        c2.allocate(1, &shares).expect("plan is allocatable");
    }

    /// The index-backed gated paths must make byte-identical decisions to
    /// the ungated full-scan reference across randomized occupancy,
    /// drains, and resource shapes (including CPU/memory-skewed demands
    /// that are not part of the index key).
    #[test]
    fn indexed_and_scanning_paths_agree() {
        let mut state: u64 = 0xDEAD_BEEF_CAFE_1234;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for case in 0..150u64 {
            let mut c = Cluster::new(ClusterSpec::uniform(2, 4, GpuModel::A100, 8));
            // Random occupancy, with CPU/memory-heavy shares so that
            // nodes with equal free GPUs differ in the other dimensions.
            for _ in 0..(rng() % 12) {
                let node = NodeId::from_index((rng() % 8) as usize);
                let share = ResourceVec::new(
                    (rng() % 5) as u32,
                    (rng() % 40) as u32,
                    (rng() % 300) as u32,
                );
                let _ = c.allocate(rng(), &[(node, share)]);
            }
            if case % 3 == 0 {
                c.drain(NodeId::from_index((rng() % 8) as usize));
            }
            for strategy in [
                PlacementStrategy::Pack,
                PlacementStrategy::Spread,
                PlacementStrategy::TopologyAware,
            ] {
                let planner = Planner::new(strategy);
                for (workers, per_worker) in [
                    (1, ResourceVec::gpus_only(1)),
                    (2, ResourceVec::gpus_only(4)),
                    (4, ResourceVec::gpus_only(8)),
                    (3, ResourceVec::new(1, 10, 60)),
                    (2, ResourceVec::new(0, 12, 0)),
                ] {
                    let mut stats = PlanStats::default();
                    let gated = planner.plan_counted(&c, workers, per_worker, &mut stats);
                    let ungated = planner.plan_ungated(&c, workers, per_worker);
                    assert_eq!(
                        gated, ungated,
                        "case {case}: {strategy} diverged for {workers}x{per_worker:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_gang_is_trivially_placed() {
        let c = cluster();
        assert_eq!(
            Planner::default().plan(&c, 0, ResourceVec::gpus_only(1)),
            Some(vec![])
        );
    }
}
