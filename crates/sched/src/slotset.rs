//! The slot-set temporal planner: OAR-style interval calculus over time.
//!
//! A [`SlotSet`] is a time-ordered sequence of *slots*. Each slot spans
//! `[begin, next.begin)` (the first slot opens at `-inf`, the last closes
//! at `+inf`) and holds the count of abstract GPU slots expected to be
//! free throughout that span. Placing a job *splits* the slot at the
//! job's estimated end and *subtracts* its gang size from every slot it
//! occupies; a finish adds the count back and re-merges boundaries that
//! no longer separate distinct states. Conservative-backfill reservation
//! probing then becomes a walk over a handful of slots — interval
//! intersection — instead of a collect-and-sort over the whole running
//! set each round.
//!
//! Slots once carried full [`ProcSet`] id intervals (OAR's resource
//! representation). Probing, placement and the rebuild fingerprint only
//! ever consume *counts* — the subset-chain invariant guarantees a
//! claim's ids are present in every slot it touches, so subtracting a
//! contained id block changes a slot's cardinality by exactly the block
//! size — and the id-level merges dominated the hot-path profile (union/
//! subtract were over half the contended-borrowing wall). The planner
//! therefore stores the cardinalities directly; [`SlotSet::proc_view`]
//! still exposes each slot as a canonical `[0, free)` [`ProcSet`] so the
//! property suites keep checking the (count-level) subset chain.
//!
//! Planned capacity changes ride along as OAR's `available_upto`
//! pseudo-job trick: a [`CapacityWindow`] pins boundaries at its edges and
//! removes `gpus` from each covered slot's availability, so drain and
//! maintenance windows are scenario knobs rather than special cases.
//!
//! ## Invariants
//!
//! * Slots are strictly time-sorted, non-overlapping, and exactly
//!   partition `(-inf, +inf)` — every instant belongs to exactly one slot.
//! * Claims only ever subtract a prefix-in-time (`(-inf, until)`), so free
//!   counts are monotone non-decreasing in time — the count-level image of
//!   OAR's subset chain (an earlier slot's free set is contained in every
//!   later slot's).
//! * The earliest slot's free count always equals the cluster's currently
//!   free GPU count — fresh claims draw from it.
//! * A boundary exists iff some active claim releases there or a window
//!   edge lands there; [`release`](SlotSet::release) merges everything
//!   else away, bounding the slot count by the active claim count.
//!
//! Decision-invariance with the pre-planner release-profile walk is the
//! load-bearing property: [`SlotSet::probe`] reproduces the old
//! `reserve_sorted` answers bit for bit (including its one-release-at-a-
//! time accumulation across tied end times), which the differential suite
//! and the golden experiment snapshots both enforce.

use std::collections::BTreeMap;

use tacc_workload::JobId;

use crate::backfill::Reservation;
use crate::procset::ProcSet;

/// A planned capacity change: `gpus` unavailable over
/// `[from_secs, until_secs)`. An infinite `until_secs` models a permanent
/// capacity reduction (decommissioning); a finite one a drain or
/// maintenance window. `from_secs` must be finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityWindow {
    /// GPUs unavailable during the window.
    pub gpus: u32,
    /// Window start (seconds, inclusive).
    pub from_secs: f64,
    /// Window end (seconds, exclusive; `f64::INFINITY` for open-ended).
    pub until_secs: f64,
}

/// Deterministic work counters for the temporal planner, reported through
/// [`WorkCounters`](crate::WorkCounters) and gated by the perf harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SlotStats {
    /// Slot boundary splits performed by placements.
    pub splits: u64,
    /// Slots visited or updated by probes, placements, releases and
    /// rebuilds — each visit is one interval intersection.
    pub intersections: u64,
    /// Full timeline rebuilds (a probe against a cluster state the
    /// incremental maintenance did not track).
    pub rebuilds: u64,
}

/// One time slot: the free capacity over `[begin_secs, next slot's begin)`.
#[derive(Debug, Clone, PartialEq)]
struct Slot {
    begin_secs: f64,
    /// GPU slots free throughout this slot (before window drops).
    free: u32,
    /// Capacity removed from this slot by overlapping [`CapacityWindow`]s.
    dropped_gpus: u32,
    /// Claims releasing exactly at `begin_secs`, ascending by job id —
    /// the order the legacy release-profile walk saw tied end times in.
    releases: Vec<(JobId, u32)>,
}

/// One placed job's footprint on the timeline.
#[derive(Debug, Clone, PartialEq)]
struct Claim {
    until_secs: f64,
    gpus: u32,
}

/// The temporal planner. See the module docs for the model and
/// invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSet {
    slots: Vec<Slot>,
    claims: BTreeMap<JobId, Claim>,
    windows: Vec<CapacityWindow>,
}

impl Default for SlotSet {
    fn default() -> Self {
        SlotSet::new()
    }
}

impl SlotSet {
    /// An empty timeline: one slot covering all of time, no capacity.
    pub fn new() -> SlotSet {
        SlotSet {
            slots: vec![Slot {
                begin_secs: f64::NEG_INFINITY,
                free: 0,
                dropped_gpus: 0,
                releases: Vec::new(),
            }],
            claims: BTreeMap::new(),
            windows: Vec::new(),
        }
    }

    /// Rebuilds the timeline from scratch: `free_gpus` currently free,
    /// `running` as `(id, est_end_secs, gpus)` in ascending id order, and
    /// the configured capacity windows.
    pub fn rebuild(
        &mut self,
        free_gpus: u32,
        running: impl Iterator<Item = (JobId, f64, u32)>,
        windows: &[CapacityWindow],
        stats: &mut SlotStats,
    ) {
        stats.rebuilds += 1;
        self.claims.clear();
        self.windows.clear();
        self.windows.extend_from_slice(windows);
        let mut claimed = 0u32;
        for (id, until_secs, gpus) in running {
            claimed += gpus;
            self.claims.insert(id, Claim { until_secs, gpus });
        }
        let base_end = claimed + free_gpus;

        let mut bounds: Vec<f64> = vec![f64::NEG_INFINITY];
        bounds.extend(self.claims.values().map(|c| c.until_secs));
        for w in &self.windows {
            bounds.push(w.from_secs);
            if w.until_secs.is_finite() {
                bounds.push(w.until_secs);
            }
        }
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();

        self.slots.clear();
        for &begin_secs in &bounds {
            stats.intersections += 1;
            let mut free = base_end;
            let mut releases = Vec::new();
            for (id, claim) in &self.claims {
                if claim.until_secs > begin_secs {
                    free -= claim.gpus;
                } else if claim.until_secs == begin_secs {
                    releases.push((*id, claim.gpus));
                }
            }
            let dropped_gpus = self
                .windows
                .iter()
                .filter(|w| w.from_secs <= begin_secs && begin_secs < w.until_secs)
                .map(|w| w.gpus)
                .sum();
            self.slots.push(Slot {
                begin_secs,
                free,
                dropped_gpus,
                releases,
            });
        }
    }

    /// Records a placement: `gpus` drawn from the earliest slot's free
    /// capacity, occupied on every slot before `until_secs`, released
    /// there. Splits the slot containing `until_secs` when that boundary
    /// does not exist yet.
    pub fn place(&mut self, id: JobId, gpus: u32, until_secs: f64, stats: &mut SlotStats) {
        debug_assert!(
            !self.claims.contains_key(&id),
            "duplicate timeline claim for {id}"
        );
        self.split_at(until_secs, stats);
        // Mirror the id-level take_first: never grant more than the head
        // slot holds (a shortfall is a caller bug, debug-asserted).
        let granted = match self.slots.first() {
            Some(slot) => gpus.min(slot.free),
            None => 0,
        };
        debug_assert_eq!(
            granted, gpus,
            "placement of {id} exceeds the earliest slot's free capacity"
        );
        for slot in &mut self.slots {
            if slot.begin_secs < until_secs {
                stats.intersections += 1;
                debug_assert!(slot.free >= granted, "free counts not monotone");
                slot.free -= granted;
            } else {
                if slot.begin_secs == until_secs {
                    let pos = slot.releases.partition_point(|&(rid, _)| rid < id);
                    slot.releases.insert(pos, (id, granted));
                }
                break;
            }
        }
        self.claims.insert(
            id,
            Claim {
                until_secs,
                gpus: granted,
            },
        );
    }

    /// Removes a claim: its capacity returns to every slot before its
    /// release boundary, and boundaries that no longer separate distinct
    /// states are merged away. Returns `false` (leaving the timeline
    /// unchanged) when `id` holds no claim.
    pub fn release(&mut self, id: JobId, stats: &mut SlotStats) -> bool {
        let Some(claim) = self.claims.remove(&id) else {
            return false;
        };
        for slot in &mut self.slots {
            if slot.begin_secs < claim.until_secs {
                stats.intersections += 1;
                slot.free += claim.gpus;
            } else {
                if slot.begin_secs == claim.until_secs {
                    slot.releases.retain(|&(rid, _)| rid != id);
                }
                break;
            }
        }
        self.merge_boundaries();
        true
    }

    /// Computes the reservation for a blocked job needing `demand_gpus`
    /// when `free_gpus` are free now — bit-identical to the legacy
    /// release-profile walk, including its one-release-at-a-time
    /// accumulation across tied end times.
    pub(crate) fn probe(
        &self,
        now_secs: f64,
        demand_gpus: u32,
        free_gpus: u32,
        stats: &mut SlotStats,
    ) -> Reservation {
        let (shadow_secs, extra_gpus) = self.probe_start(now_secs, demand_gpus, free_gpus, stats);
        Reservation {
            shadow_secs,
            extra_gpus,
        }
    }

    /// The reservation probe as a plain `(shadow_secs, extra_gpus)` pair
    /// (public for the property suites; the scheduler uses the
    /// crate-internal `Reservation` form of `probe`).
    pub fn probe_start(
        &self,
        now_secs: f64,
        demand_gpus: u32,
        free_gpus: u32,
        stats: &mut SlotStats,
    ) -> (f64, u32) {
        if demand_gpus <= free_gpus {
            return (now_secs, free_gpus - demand_gpus);
        }
        debug_assert_eq!(
            self.slots.first().map(|s| s.free),
            Some(free_gpus),
            "timeline head out of sync with the cluster's free capacity"
        );
        let mut prev_avail = 0u32;
        for (i, slot) in self.slots.iter().enumerate() {
            stats.intersections += 1;
            if i > 0 {
                // Releases at this boundary accumulate one at a time in
                // job-id order — a partial sum may already cover the
                // demand, and the extra capacity reported is then the
                // partial sum's leftover, not the whole slot's.
                let mut partial = prev_avail;
                for &(_, gpus) in &slot.releases {
                    partial += gpus;
                    if partial >= demand_gpus {
                        return (slot.begin_secs.max(now_secs), partial - demand_gpus);
                    }
                }
            }
            let avail = slot.free.saturating_sub(slot.dropped_gpus);
            if avail >= demand_gpus {
                return (slot.begin_secs.max(now_secs), avail - demand_gpus);
            }
            prev_avail = avail;
        }
        // Demand can never be satisfied: reserve at the far end (the last
        // boundary on the timeline) with nothing to spare.
        let shadow = match self.slots.last() {
            Some(slot) if self.slots.len() > 1 => slot.begin_secs,
            _ => now_secs,
        };
        (shadow, 0)
    }

    /// Ensures a boundary exists at `t_secs`, splitting the containing
    /// slot when needed. Window coverage is constant strictly inside a
    /// slot (window edges are permanent boundaries), so both halves keep
    /// the slot's free count and drop.
    fn split_at(&mut self, t_secs: f64, stats: &mut SlotStats) {
        let idx = self.slots.partition_point(|s| s.begin_secs <= t_secs);
        let Some(i) = idx.checked_sub(1) else {
            return;
        };
        let Some(slot) = self.slots.get(i) else {
            return;
        };
        if slot.begin_secs == t_secs {
            return;
        }
        stats.splits += 1;
        let clone = Slot {
            begin_secs: t_secs,
            free: slot.free,
            dropped_gpus: slot.dropped_gpus,
            releases: Vec::new(),
        };
        self.slots.insert(i + 1, clone);
    }

    /// Drops boundaries that no longer separate distinct states: nothing
    /// releases there and no window edge lands there. Both sides are then
    /// provably identical (debug-asserted), and removing the boundary
    /// keeps the slot count bounded by the active claim count.
    fn merge_boundaries(&mut self) {
        let mut i = 1;
        while i < self.slots.len() {
            let t = self.slots[i].begin_secs;
            let needed = !self.slots[i].releases.is_empty()
                || self
                    .windows
                    .iter()
                    .any(|w| w.from_secs == t || w.until_secs == t);
            if needed {
                i += 1;
            } else {
                debug_assert_eq!(self.slots[i - 1].free, self.slots[i].free);
                debug_assert_eq!(self.slots[i - 1].dropped_gpus, self.slots[i].dropped_gpus);
                self.slots.remove(i);
            }
        }
    }

    /// Number of slots on the timeline.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of active claims.
    pub fn claim_count(&self) -> usize {
        self.claims.len()
    }

    /// `(begin_secs, end_secs, available_gpus)` per slot, for the
    /// property suites and debugging. `end_secs` is the next slot's begin
    /// (`+inf` for the last).
    pub fn view(&self) -> Vec<(f64, f64, u32)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let end = self
                    .slots
                    .get(i + 1)
                    .map_or(f64::INFINITY, |n| n.begin_secs);
                (s.begin_secs, end, s.free.saturating_sub(s.dropped_gpus))
            })
            .collect()
    }

    /// The free capacity of each slot as a canonical `[0, free)`
    /// [`ProcSet`], in time order. The property suites check the subset
    /// chain on these: with canonical sets, containment is exactly the
    /// monotone-free-count invariant.
    pub fn proc_view(&self) -> Vec<ProcSet> {
        self.slots
            .iter()
            .map(|s| ProcSet::from_range(0, s.free))
            .collect()
    }

    /// Canonical count-level fingerprint: per-slot `(begin, free, dropped,
    /// releases)` plus per-claim `(id, until, gpus)`. Two timelines with
    /// the same fingerprint answer every probe identically — counts are
    /// the complete probe-visible state, which is also why the planner can
    /// store them directly instead of id intervals.
    #[allow(clippy::type_complexity)]
    pub fn fingerprint(
        &self,
    ) -> (
        Vec<(f64, u32, u32, Vec<(JobId, u32)>)>,
        Vec<(JobId, f64, u32)>,
    ) {
        (
            self.slots
                .iter()
                .map(|s| (s.begin_secs, s.free, s.dropped_gpus, s.releases.clone()))
                .collect(),
            self.claims
                .iter()
                .map(|(id, c)| (*id, c.until_secs, c.gpus))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backfill::reserve_with_windows;

    struct XorShift(u64);

    impl XorShift {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }
    }

    fn job(v: u64) -> JobId {
        JobId::from_value(v)
    }

    #[test]
    fn place_splits_and_release_merges() {
        let mut tl = SlotSet::new();
        let mut stats = SlotStats::default();
        tl.rebuild(8, std::iter::empty(), &[], &mut stats);
        assert_eq!(tl.slot_count(), 1);

        tl.place(job(1), 3, 100.0, &mut stats);
        assert_eq!(tl.slot_count(), 2);
        assert_eq!(stats.splits, 1);
        assert_eq!(tl.view()[0].2, 5);
        assert_eq!(tl.view()[1].2, 8);

        // A second claim ending at the same boundary does not split again.
        tl.place(job(2), 2, 100.0, &mut stats);
        assert_eq!(tl.slot_count(), 2);
        assert_eq!(stats.splits, 1);
        assert_eq!(tl.view()[0].2, 3);

        assert!(tl.release(job(1), &mut stats));
        assert_eq!(tl.slot_count(), 2, "job 2 still releases at t=100");
        assert!(tl.release(job(2), &mut stats));
        assert_eq!(tl.slot_count(), 1, "all boundaries merged away");
        assert_eq!(tl.view()[0].2, 8);
        assert!(!tl.release(job(2), &mut stats), "double release is a no-op");
    }

    #[test]
    fn probe_matches_legacy_reserve() {
        // The three claims release 4, 4 and 8 GPUs at t=50, 80, 200 with
        // 2 free now: identical fixture to the backfill unit tests.
        let mut tl = SlotSet::new();
        let mut stats = SlotStats::default();
        let running = [(job(1), 200.0, 8u32), (job(2), 50.0, 4), (job(3), 80.0, 4)];
        tl.rebuild(2, running.iter().copied(), &[], &mut stats);
        assert_eq!(tl.probe_start(0.0, 8, 2, &mut stats), (80.0, 2));
        assert_eq!(tl.probe_start(0.0, 1, 2, &mut stats), (0.0, 1));
        assert_eq!(tl.probe_start(0.0, 64, 2, &mut stats), (200.0, 0));
        assert_eq!(tl.probe_start(90.0, 8, 2, &mut stats), (90.0, 2));
    }

    #[test]
    fn tied_end_times_accumulate_one_release_at_a_time() {
        // Two 4-GPU claims both end at t=100 with 2 free; a demand of 5 is
        // covered by the *first* release alone, so the legacy walk reports
        // extra = (2+4)-5 = 1, not the full-boundary (2+8)-5 = 5.
        let mut tl = SlotSet::new();
        let mut stats = SlotStats::default();
        let running = [(job(1), 100.0, 4u32), (job(2), 100.0, 4)];
        tl.rebuild(2, running.iter().copied(), &[], &mut stats);
        assert_eq!(tl.probe_start(0.0, 5, 2, &mut stats), (100.0, 1));
        assert_eq!(tl.probe_start(0.0, 10, 2, &mut stats), (100.0, 0));
    }

    #[test]
    fn windows_pin_boundaries_and_drop_capacity() {
        // A 6-GPU maintenance window over [100, 200) with a 6-GPU job
        // releasing at t=150 and 2 GPUs free now.
        let mut tl = SlotSet::new();
        let mut stats = SlotStats::default();
        let windows = [CapacityWindow {
            gpus: 6,
            from_secs: 100.0,
            until_secs: 200.0,
        }];
        let running = [(job(1), 150.0, 6u32)];
        tl.rebuild(2, running.iter().copied(), &windows, &mut stats);
        assert_eq!(
            tl.view(),
            vec![
                (f64::NEG_INFINITY, 100.0, 2),
                (100.0, 150.0, 0),
                (150.0, 200.0, 2),
                (200.0, f64::INFINITY, 8),
            ]
        );
        // Fits now: windows shape the future profile, not admission.
        assert_eq!(tl.probe_start(0.0, 1, 2, &mut stats), (0.0, 1));
        // The t=150 release covers a demand of 4 mid-window (partial
        // accumulation on top of the window-saturated availability).
        assert_eq!(tl.probe_start(0.0, 4, 2, &mut stats), (150.0, 2));
        // A demand of 7 must outwait the maintenance window.
        assert_eq!(tl.probe_start(0.0, 7, 2, &mut stats), (200.0, 1));

        // Claim boundaries merge away on release; window edges never do.
        tl.place(job(2), 2, 120.0, &mut stats);
        assert_eq!(tl.slot_count(), 5);
        assert!(tl.release(job(2), &mut stats));
        assert_eq!(tl.slot_count(), 4);
    }

    #[test]
    fn random_walk_matches_naive_sweep_and_rebuild() {
        // Random place/release/probe sequences: the incrementally
        // maintained timeline must agree with (a) a fresh rebuild and
        // (b) the naive event-sweep facade, on every probe.
        let windows_cases: [&[CapacityWindow]; 3] = [
            &[],
            &[CapacityWindow {
                gpus: 16,
                from_secs: 2_000.0,
                until_secs: 9_000.0,
            }],
            &[
                CapacityWindow {
                    gpus: 8,
                    from_secs: 1_000.0,
                    until_secs: f64::INFINITY,
                },
                CapacityWindow {
                    gpus: 24,
                    from_secs: 500.0,
                    until_secs: 5_000.0,
                },
            ],
        ];
        for (case, windows) in windows_cases.iter().enumerate() {
            let mut rng = XorShift(0x5EED_0000 + case as u64);
            let total = 64u32;
            let mut free = total;
            let mut running: Vec<(JobId, f64, u32)> = Vec::new();
            let mut tl = SlotSet::new();
            let mut stats = SlotStats::default();
            tl.rebuild(free, running.iter().copied(), windows, &mut stats);
            let mut now = 0.0f64;
            for step in 0..400u64 {
                now += rng.below(200) as f64;
                match rng.below(3) {
                    0 if free > 0 => {
                        let gpus = (rng.below(9)) as u32 % (free + 1);
                        let id = job(1000 + step);
                        let until = now + 1.0 + rng.below(4_000) as f64;
                        running.push((id, until, gpus));
                        running.sort_by_key(|r| r.0);
                        free -= gpus;
                        tl.place(id, gpus, until, &mut stats);
                    }
                    1 if !running.is_empty() => {
                        let i = rng.below(running.len() as u64) as usize;
                        let (id, _, gpus) = running.remove(i);
                        free += gpus;
                        assert!(tl.release(id, &mut stats));
                    }
                    _ => {}
                }
                // Probe equivalence against the naive sweep.
                let demand = 1 + rng.below(80) as u32;
                let mut profile: Vec<(f64, u32)> =
                    running.iter().map(|&(_, e, g)| (e, g)).collect();
                let naive = reserve_with_windows(now, demand, free, &mut profile, windows);
                let got = tl.probe_start(now, demand, free, &mut stats);
                assert_eq!(
                    got,
                    (naive.shadow_secs, naive.extra_gpus),
                    "probe diverged from the naive sweep (case {case}, step {step})"
                );
                // Structural equivalence against a fresh rebuild.
                let mut fresh = SlotSet::new();
                let mut scratch = SlotStats::default();
                fresh.rebuild(free, running.iter().copied(), windows, &mut scratch);
                assert_eq!(
                    fresh.fingerprint(),
                    tl.fingerprint(),
                    "incremental timeline diverged from rebuild (case {case}, step {step})"
                );
            }
        }
    }
}
