//! The scheduling-layer facade.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use tacc_cluster::{Cluster, ResourceVec};
use tacc_obs::{
    Counter, DecisionTraceLog, Gauge, Histogram, JobSkip, MetricsRegistry, RoundTrace, SkipReason,
};
use tacc_workload::{GroupRoster, JobId, QosClass};

use crate::backfill::{may_backfill, reserve_sorted, BackfillMode, Reservation};
use crate::placement::{PlacementStrategy, PlanStats, Planner};
use crate::policy::{compare, order_queue, PolicyContext, PolicyKind};
use crate::quota::{QuotaMode, QuotaTable};
use crate::request::{Decision, RunningTask, SchedOutcome, StartedTask, TaskRequest};

/// Configuration of a [`Scheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Queue-ordering policy.
    pub policy: PolicyKind,
    /// Gang placement strategy.
    pub placement: PlacementStrategy,
    /// Backfill variant.
    pub backfill: BackfillMode,
    /// Quota enforcement mode.
    pub quota: QuotaMode,
    /// Per-group GPU quotas (indexed by group). May be empty when quotas
    /// are [`QuotaMode::Disabled`]; groups beyond the vector get quota 0.
    pub quotas: Vec<u32>,
    /// Number of groups the scheduler will see (sizes fair-share state).
    pub group_count: usize,
    /// Gang time-slicing quantum (Slurm's "gang scheduling (time-slicing
    /// jobs)"): when set, a best-effort task that has run a full quantum
    /// can be rotated out in favour of queued work via
    /// [`Scheduler::rotate`]. `None` disables rotation.
    pub time_slice_secs: Option<f64>,
    /// How many [`RoundTrace`]s the decision trace ring retains. The
    /// latest per-job skip reason survives ring eviction regardless.
    pub decision_trace_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: PolicyKind::Fifo,
            placement: PlacementStrategy::Pack,
            backfill: BackfillMode::Easy,
            quota: QuotaMode::Disabled,
            quotas: Vec::new(),
            group_count: 8,
            time_slice_secs: None,
            decision_trace_capacity: 2048,
        }
    }
}

impl SchedulerConfig {
    /// Derives quotas and group count from a roster.
    pub fn with_roster(mut self, roster: &GroupRoster) -> Self {
        self.quotas = roster.ids().map(|g| roster.quota(g)).collect();
        self.group_count = roster.len();
        self
    }
}

/// The scheduling layer: a queue, the policy suite, and the bookkeeping
/// linking running jobs to their cluster leases.
///
/// Drive it with four calls:
///
/// 1. [`Scheduler::submit`] when the compiler layer finishes a task;
/// 2. [`Scheduler::schedule`] whenever state changed (submission,
///    completion, or a timer) — it commits placements and returns them;
/// 3. [`Scheduler::task_finished`] when the execution layer reports
///    completion (releases the lease and quota charge);
/// 4. [`Scheduler::cancel`] for user kills of queued tasks.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    planner: Planner,
    quota: QuotaTable,
    /// The pending queue. Kept *sorted* under the policy comparator
    /// whenever that order is provable (`queue_dirty == false`):
    /// `queue_push` binary-inserts and `queue_remove_request` removes in
    /// place, so steady-state rounds never re-sort at all.
    queue: Vec<TaskRequest>,
    /// Ids currently queued (duplicate-submission guard and O(log n)
    /// membership for removals).
    queue_members: BTreeSet<JobId>,
    /// Set when the queue's physical order stopped being the sorted
    /// permutation (an append under an invalid comparator context, or a
    /// swap-remove on the fallback path); policies with
    /// static per-request keys (FIFO/SJF) skip re-sorting while clean.
    queue_dirty: bool,
    /// Bumped on every quota charge/release. FairShare/DRF keys depend on
    /// group usage, so those policies also re-sort when this moved.
    usage_epoch: u64,
    /// `usage_epoch` at the last sort.
    sorted_usage_epoch: u64,
    /// Cluster capacity at the last sort. DRF keys divide by capacity, so
    /// a capacity change (node failures, drains) invalidates the sorted
    /// order the same way a usage change does.
    sorted_capacity: ResourceVec,
    /// The previous round's walk ledger: one `(job, verdict)` entry per
    /// examined queue position, in walk order. A job re-examined at the
    /// same position with the same verdict was already traced — at steady
    /// state a deeply blocked queue contributes nothing to the trace (and
    /// pays one positional compare per job, no map) until something moves.
    scratch_verdicts: Vec<(JobId, SkipVerdict)>,
    /// The ledger being built by the current walk (swapped into
    /// `scratch_verdicts` when the round ends).
    scratch_verdicts_next: Vec<(JobId, SkipVerdict)>,
    /// Incrementally maintained per-group running resource totals (the
    /// recomputed-from-scratch value is debug-asserted every round).
    group_usage_vec: Vec<ResourceVec>,
    /// Reusable round buffers (capacity survives across rounds, so the
    /// steady-state hot path allocates nothing per round).
    scratch_snapshot: Vec<TaskRequest>,
    scratch_usage: Vec<u32>,
    scratch_skips: Vec<JobSkip>,
    scratch_started: Vec<JobId>,
    scratch_preempted: Vec<JobId>,
    /// The reclaim pre-check's hypothetical cluster (all borrowers evicted),
    /// cached with the [`Cluster::version`] it was derived from. Valid for
    /// as long as the scheduler keeps seeing that same cluster unmutated —
    /// every placement, preemption, finish or drain bumps the version — so
    /// consecutive blocked guaranteed jobs within a round share one clone.
    reclaim_cache: Option<(u64, Cluster)>,
    /// Conservative backfill's release profile — running `(est_end, gpus)`
    /// pairs sorted by end time — cached under the same version key: one
    /// sort per cluster state answers every reservation in the round.
    reserve_cache: Option<(u64, Vec<(f64, u32)>)>,
    running: BTreeMap<JobId, RunningTask>,
    backfill_starts: u64,
    preemptions: u64,
    rounds: u64,
    counters: WorkCounters,
    flushed_counters: WorkCounters,
    trace: DecisionTraceLog,
    metrics: Option<SchedMetrics>,
}

/// Deterministic algorithmic work counters for the scheduler hot path.
///
/// Every field counts *work performed or avoided* — never wall time — so
/// two runs over the same inputs produce identical values. The perf
/// harness records them in `BENCH_hotpath.json` and CI gates on exact
/// equality across runs; wall time stays informational.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounters {
    /// Rounds that early-exited because the queue was empty (the sort,
    /// snapshot and usage work was skipped entirely).
    pub empty_rounds: u64,
    /// Rounds that re-sorted the queue.
    pub queue_sorts: u64,
    /// Rounds that proved the previous order still valid and skipped the
    /// sort (clean queue, and — for usage-keyed policies — unchanged usage).
    pub queue_sorts_skipped: u64,
    /// Queue elements copied into the reusable round snapshot (the former
    /// per-round `Vec` clone this buffer replaced).
    pub snapshot_elements: u64,
    /// Skip verdicts recorded into the decision trace — a job's first
    /// evaluation, or one whose blocking reason changed.
    pub skip_records: u64,
    /// Re-evaluations whose verdict matched the one already traced and
    /// were suppressed (the steady-state cost of a deeply blocked queue).
    pub skip_suppressions: u64,
    /// Planner effort: attempts, node scans, and O(1) fast-path rejects.
    pub plan: PlanStats,
}

/// Compact fingerprint of one walk outcome for a queued job, compared
/// positionally across rounds to decide whether a re-examined job needs
/// re-tracing. Deliberately coarse: volatile payloads (current usage,
/// free-GPU counts, shadow times — all of which wobble every round in a
/// busy cluster) are excluded, so a steadily blocked job is traced once
/// per *category of reason* and its surviving record reads as "waiting
/// like this since t". Anything that invalidates the positional match —
/// a start, a cancel, queue reordering — forces a fresh record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SkipVerdict {
    /// Blocked on group quota.
    Quota,
    /// Blocked by a backfill reservation.
    Backfill,
    /// No feasible placement on current capacity.
    NoPlacement,
    /// Stalled behind a blocked head under no-backfill.
    HeadOfLine { behind: JobId },
    /// Not skipped: the job started this round (never equal to a skip, so
    /// a re-queued job is always re-traced).
    Started,
}

/// Handles into an attached [`MetricsRegistry`] (`tacc_sched_*` series).
#[derive(Debug)]
struct SchedMetrics {
    rounds: Counter,
    round_latency: Histogram,
    queue_depth: Gauge,
    running_tasks: Gauge,
    preemptions: Counter,
    backfill_starts: Counter,
    empty_rounds: Counter,
    queue_sorts: Counter,
    queue_sorts_skipped: Counter,
    snapshot_elements: Counter,
    skip_records: Counter,
    skip_suppressions: Counter,
    placement_attempts: Counter,
    node_scans: Counter,
    fastpath_rejects: Counter,
}

impl Scheduler {
    /// Creates a scheduler from a configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        let mut quotas = config.quotas.clone();
        if quotas.len() < config.group_count {
            quotas.resize(config.group_count, 0);
        }
        Scheduler {
            planner: Planner::new(config.placement),
            quota: QuotaTable::from_quotas(quotas),
            trace: DecisionTraceLog::new(config.decision_trace_capacity),
            group_usage_vec: vec![ResourceVec::ZERO; config.group_count],
            config,
            queue: Vec::new(),
            queue_members: BTreeSet::new(),
            queue_dirty: true,
            usage_epoch: 0,
            sorted_usage_epoch: 0,
            sorted_capacity: ResourceVec::ZERO,
            scratch_verdicts: Vec::new(),
            scratch_verdicts_next: Vec::new(),
            scratch_snapshot: Vec::new(),
            scratch_usage: Vec::new(),
            scratch_skips: Vec::new(),
            scratch_started: Vec::new(),
            scratch_preempted: Vec::new(),
            reclaim_cache: None,
            reserve_cache: None,
            running: BTreeMap::new(),
            backfill_starts: 0,
            preemptions: 0,
            rounds: 0,
            counters: WorkCounters::default(),
            flushed_counters: WorkCounters::default(),
            metrics: None,
        }
    }

    /// Attaches operational metrics: subsequent rounds update the
    /// `tacc_sched_*` series in `registry` (round counter, wall-clock
    /// round latency histogram, queue depth and running-task gauges,
    /// preemption and backfill counters).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(SchedMetrics {
            rounds: registry.counter("tacc_sched_rounds_total", &[]),
            round_latency: registry.histogram("tacc_sched_round_latency_seconds", &[]),
            queue_depth: registry.gauge("tacc_sched_queue_depth", &[]),
            running_tasks: registry.gauge("tacc_sched_running_tasks", &[]),
            preemptions: registry.counter("tacc_sched_preemptions_total", &[]),
            backfill_starts: registry.counter("tacc_sched_backfill_starts_total", &[]),
            empty_rounds: registry.counter("tacc_sched_empty_rounds_total", &[]),
            queue_sorts: registry.counter("tacc_sched_queue_sorts_total", &[]),
            queue_sorts_skipped: registry.counter("tacc_sched_queue_sorts_skipped_total", &[]),
            snapshot_elements: registry.counter("tacc_sched_snapshot_elements_total", &[]),
            skip_records: registry.counter("tacc_sched_skip_records_total", &[]),
            skip_suppressions: registry.counter("tacc_sched_skip_suppressions_total", &[]),
            placement_attempts: registry.counter("tacc_sched_placement_attempts_total", &[]),
            node_scans: registry.counter("tacc_sched_node_scans_total", &[]),
            fastpath_rejects: registry.counter("tacc_sched_placement_fastpath_rejects_total", &[]),
        });
    }

    /// A snapshot of the deterministic work counters accumulated so far.
    pub fn work_counters(&self) -> WorkCounters {
        self.counters
    }

    /// Mirrors the work-counter deltas since the last flush into the
    /// attached registry (no-op when no registry is attached).
    fn flush_work_metrics(&mut self) {
        let Some(m) = &self.metrics else {
            return;
        };
        let cur = self.counters;
        let prev = self.flushed_counters;
        m.empty_rounds.inc_by(cur.empty_rounds - prev.empty_rounds);
        m.queue_sorts.inc_by(cur.queue_sorts - prev.queue_sorts);
        m.queue_sorts_skipped
            .inc_by(cur.queue_sorts_skipped - prev.queue_sorts_skipped);
        m.snapshot_elements
            .inc_by(cur.snapshot_elements - prev.snapshot_elements);
        m.skip_records.inc_by(cur.skip_records - prev.skip_records);
        m.skip_suppressions
            .inc_by(cur.skip_suppressions - prev.skip_suppressions);
        m.placement_attempts
            .inc_by(cur.plan.attempts - prev.plan.attempts);
        m.node_scans
            .inc_by(cur.plan.nodes_scanned - prev.plan.nodes_scanned);
        m.fastpath_rejects
            .inc_by(cur.plan.fastpath_rejects - prev.plan.fastpath_rejects);
        self.flushed_counters = cur;
    }

    /// Whether the queue's current physical order is provably the sorted
    /// permutation under the policy comparator *with the current keys* —
    /// the precondition for binary-searching it instead of re-sorting.
    fn queue_order_valid(&self) -> bool {
        !self.queue_dirty
            && match self.config.policy {
                PolicyKind::Fifo | PolicyKind::Sjf => true,
                // Usage-keyed policies: valid only while usage (and, for
                // DRF, capacity) has not moved since the last sort.
                PolicyKind::FairShare | PolicyKind::Drf => {
                    self.usage_epoch == self.sorted_usage_epoch
                }
                // MultiFactor keys move with `now`: every round re-sorts.
                PolicyKind::MultiFactor => false,
            }
    }

    /// Adds to the queue. When the current order is provably sorted the
    /// request is binary-inserted at the position a full re-sort would
    /// give it (the comparator is a total order, so the sorted permutation
    /// is unique); otherwise it is appended and the next round sorts.
    fn queue_push(&mut self, request: TaskRequest) {
        self.queue_members.insert(request.id);
        if self.queue_order_valid() {
            self.quota.usage_by_group_into(&mut self.scratch_usage);
            let ctx = PolicyContext {
                group_gpu_usage: &self.scratch_usage,
                group_usage_vec: &self.group_usage_vec,
                group_quota: self.quota.quotas(),
                capacity: self.sorted_capacity,
            };
            let policy = self.config.policy;
            // `now`/`queue_len` feed only MultiFactor scores, which never
            // take this path.
            let pos = self
                .queue
                .partition_point(|e| compare(policy, 0.0, 0, e, &request, &ctx).is_lt());
            self.queue.insert(pos, request);
        } else {
            self.queue.push(request);
            self.queue_dirty = true;
        }
    }

    /// Removes a queued task by id (user cancel: no request to compare
    /// against, so this scans). An in-place removal preserves whatever
    /// order the queue had. Returns `false` if the id is not queued.
    fn queue_remove(&mut self, id: JobId) -> bool {
        if !self.queue_members.remove(&id) {
            return false;
        }
        if let Some(pos) = self.queue.iter().position(|r| r.id == id) {
            self.queue.remove(pos);
        }
        true
    }

    /// Removes a task we hold the full request for (a placement commit).
    /// While the sorted order is provable the position comes from a binary
    /// search; otherwise from a scan and a swap-remove (the order is
    /// already unprovable, so scrambling it further costs nothing).
    fn queue_remove_request(&mut self, request: &TaskRequest) {
        if !self.queue_members.remove(&request.id) {
            return;
        }
        if self.queue_order_valid() {
            self.quota.usage_by_group_into(&mut self.scratch_usage);
            let ctx = PolicyContext {
                group_gpu_usage: &self.scratch_usage,
                group_usage_vec: &self.group_usage_vec,
                group_quota: self.quota.quotas(),
                capacity: self.sorted_capacity,
            };
            let policy = self.config.policy;
            let pos = self
                .queue
                .partition_point(|e| compare(policy, 0.0, 0, e, request, &ctx).is_lt());
            if self.queue.get(pos).map(|r| r.id) == Some(request.id) {
                self.queue.remove(pos);
                return;
            }
            // The comparator did not land on the entry — the sorted-order
            // invariant must have been broken. Recover via the scan path.
            debug_assert!(false, "binary removal missed {}", request.id);
        }
        if let Some(pos) = self.queue.iter().position(|r| r.id == request.id) {
            self.queue.swap_remove(pos);
            self.queue_dirty = true;
        }
    }

    /// The decision trace: recent [`RoundTrace`]s plus the latest skip
    /// reason per still-waiting job ("why is my job not running").
    pub fn decision_trace(&self) -> &DecisionTraceLog {
        &self.trace
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Tasks currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tasks currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Iterates over running tasks.
    pub fn running(&self) -> impl Iterator<Item = &RunningTask> {
        self.running.values()
    }

    /// Looks up a running task.
    pub fn running_task(&self, id: JobId) -> Option<&RunningTask> {
        self.running.get(&id)
    }

    /// Total backfilled starts so far.
    pub fn backfill_starts(&self) -> u64 {
        self.backfill_starts
    }

    /// Total preemptions so far.
    pub fn preemption_count(&self) -> u64 {
        self.preemptions
    }

    /// Scheduling rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Read access to the quota table (experiment reporting).
    pub fn quota_table(&self) -> &QuotaTable {
        &self.quota
    }

    /// Gang time-slicing: if queued work exists and evicting the oldest
    /// expired best-effort tasks (those that ran at least a full quantum)
    /// would let some queued task start, rotate them out and re-run the
    /// scheduler. Rotated tasks re-enter the queue as if submitted now, so
    /// they take their turn at the back.
    ///
    /// Returns an empty outcome when time-slicing is disabled, nothing has
    /// expired, or no eviction would help.
    pub fn rotate(&mut self, now_secs: f64, cluster: &mut Cluster) -> SchedOutcome {
        // tacc-lint: allow(wall-clock, reason = "measures host-side rotation latency for the T4 round-latency histogram; reported, never fed back into decisions")
        let rotate_start = Instant::now();
        let Some(quantum) = self.config.time_slice_secs else {
            return SchedOutcome::default();
        };
        if self.queue.is_empty() {
            return SchedOutcome::default();
        }
        let mut expired: Vec<(f64, JobId)> = self
            .running
            .values()
            .filter(|t| t.request.qos == QosClass::BestEffort && now_secs - t.start_secs >= quantum)
            .map(|t| (t.start_secs, t.request.id))
            .collect();
        if expired.is_empty() {
            return SchedOutcome::default();
        }
        expired.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // How many evictions (oldest first) until some queued task fits?
        let mut hypothetical = cluster.clone();
        let mut needed = None;
        for (i, &(_, id)) in expired.iter().enumerate() {
            let lease = self.running[&id].lease_id;
            hypothetical
                .release(lease)
                .expect("running task holds a valid lease");
            let fits_someone = self.queue.iter().any(|r| {
                self.quota.admits(self.config.quota, r)
                    && self
                        .planner
                        .plan(&hypothetical, r.workers, r.per_worker)
                        .is_some()
            });
            if fits_someone {
                needed = Some(i + 1);
                break;
            }
        }
        let Some(count) = needed else {
            return SchedOutcome::default();
        };

        let mut outcome = SchedOutcome::default();
        for &(_, victim) in &expired[..count] {
            let task = self
                .task_finished(victim, cluster)
                .expect("victim is running");
            self.preemptions += 1;
            if let Some(m) = &self.metrics {
                m.preemptions.inc();
            }
            outcome.decisions.push(Decision::Preempt {
                id: victim,
                reclaimed_for: task.request.group,
            });
            // Back of the queue: the rotated task waits its turn, with its
            // originally requested gang size restored.
            self.queue_push(TaskRequest {
                submit_secs: now_secs,
                workers: task.requested_workers,
                ..task.request
            });
        }
        // Trace the rotation decision itself; the follow-up schedule call
        // records its own round (placements and skip reasons).
        self.trace.push(RoundTrace {
            round: self.rounds,
            at_secs: now_secs,
            wall_micros: rotate_start.elapsed().as_micros() as u64,
            queue_len: self.queue.len() as u64,
            started: Vec::new(),
            preempted: outcome.preemptions().map(|(id, _)| id).collect(),
            skips: Vec::new(),
        });
        let follow_up = self.schedule(now_secs, cluster);
        outcome.decisions.extend(follow_up.decisions);
        outcome
    }

    /// Whether `request` could **ever** be admitted under this scheduler's
    /// quota configuration, regardless of current usage. Platforms use this
    /// for admission control: a guaranteed request larger than its group's
    /// whole quota would otherwise queue forever.
    pub fn admissible_ever(&self, request: &TaskRequest) -> bool {
        let quota = self.quota.quota(request.group);
        match self.config.quota {
            QuotaMode::Disabled => true,
            QuotaMode::Static => request.total_gpus() <= quota,
            QuotaMode::Borrowing => {
                request.qos != QosClass::Guaranteed || request.total_gpus() <= quota
            }
        }
    }

    /// Adds a task to the queue.
    ///
    /// # Panics
    ///
    /// Panics if the task's group is outside the configured `group_count`,
    /// or a task with the same id is already queued or running.
    pub fn submit(&mut self, request: TaskRequest) {
        assert!(
            request.group.index() < self.config.group_count,
            "group {} outside configured group_count {}",
            request.group,
            self.config.group_count
        );
        assert!(
            !self.running.contains_key(&request.id) && !self.queue_members.contains(&request.id),
            "duplicate submission of {}",
            request.id
        );
        self.queue_push(request);
    }

    /// Removes a queued task. Returns `true` if it was found (running tasks
    /// are not cancelled here — stop them via the platform, then call
    /// [`Scheduler::task_finished`]).
    pub fn cancel(&mut self, id: JobId) -> bool {
        let found = self.queue_remove(id);
        if found {
            // Scrub the walk ledger so a future resubmission of this id is
            // always re-traced (its trace record was just forgotten).
            if let Some(entry) = self.scratch_verdicts.iter_mut().find(|e| e.0 == id) {
                entry.1 = SkipVerdict::Started;
            }
            self.trace.forget_job(id);
        }
        found
    }

    /// Reports that a running task finished (completed, failed or was
    /// cancelled): releases its lease and quota charge.
    ///
    /// Returns the task's record, or `None` if it was not running.
    pub fn task_finished(&mut self, id: JobId, cluster: &mut Cluster) -> Option<RunningTask> {
        let task = self.running.remove(&id)?;
        cluster
            .release(task.lease_id)
            .expect("running task holds a valid lease");
        self.quota.release(&task.request);
        self.group_usage_vec[task.request.group.index()] -= task.request.total_resources();
        self.usage_epoch += 1;
        self.trace.forget_job(id);
        Some(task)
    }

    /// Runs one scheduling round at time `now_secs`: orders the queue,
    /// starts everything that fits (subject to quota, gang placement and
    /// backfill rules), and preempts borrowers when guaranteed demand
    /// reclaims quota.
    pub fn schedule(&mut self, now_secs: f64, cluster: &mut Cluster) -> SchedOutcome {
        // tacc-lint: allow(wall-clock, reason = "measures host-side scheduling-round latency for the T4 round-latency histogram; reported, never fed back into decisions")
        let round_start = Instant::now();
        self.rounds += 1;
        let queue_len_at_start = self.queue.len() as u64;
        let mut outcome = SchedOutcome::default();

        // Empty queue: nothing can start or preempt, so the sort, snapshot
        // and usage work below is skipped entirely. The `rounds` counter,
        // gauges and the round-latency observation behave exactly as the
        // full path would, and an idle round was never traced anyway.
        if self.queue.is_empty() {
            self.counters.empty_rounds += 1;
            let wall = round_start.elapsed();
            if let Some(m) = &self.metrics {
                m.rounds.inc();
                m.round_latency.observe(wall.as_secs_f64());
                m.queue_depth.set(0.0);
                m.running_tasks.set(self.running.len() as f64);
            }
            self.flush_work_metrics();
            return outcome;
        }

        // The incremental usage vectors must always equal a recount over
        // the running set; any drift is an accounting bug.
        debug_assert_eq!(
            self.group_usage_vec,
            self.group_usage_vectors_recomputed(),
            "incremental group usage diverged from recomputation"
        );

        // Order the queue under the configured policy — but only when the
        // previous order can no longer be proven valid. Every comparator
        // ends in an id tiebreak (a total order), so a sorted queue is the
        // *unique* sorted permutation: if the keys did not change, the
        // existing order is byte-identical to what a re-sort would produce.
        //   - FIFO/SJF keys are static per request → re-sort only when
        //     membership changed.
        //   - FairShare/DRF keys also read group usage → re-sort when usage
        //     moved since the last sort.
        //   - MultiFactor scores depend on `now_secs` and the queue length
        //     → always re-sort.
        let sort_needed = match self.config.policy {
            PolicyKind::Fifo | PolicyKind::Sjf => self.queue_dirty,
            PolicyKind::FairShare | PolicyKind::Drf => {
                self.queue_dirty
                    || self.sorted_usage_epoch != self.usage_epoch
                    || self.sorted_capacity != cluster.total_capacity()
            }
            PolicyKind::MultiFactor => true,
        };
        if sort_needed {
            self.quota.usage_by_group_into(&mut self.scratch_usage);
            let ctx = PolicyContext {
                group_gpu_usage: &self.scratch_usage,
                group_usage_vec: &self.group_usage_vec,
                group_quota: self.quota.quotas(),
                capacity: cluster.total_capacity(),
            };
            order_queue(self.config.policy, now_secs, &mut self.queue, &ctx);
            self.queue_dirty = false;
            self.sorted_usage_epoch = self.usage_epoch;
            self.sorted_capacity = cluster.total_capacity();
            self.counters.queue_sorts += 1;
        } else {
            self.counters.queue_sorts_skipped += 1;
            // When the sort is skipped the queue must already be the unique
            // sorted permutation — binary inserts and in-place removals are
            // claimed to preserve it exactly.
            #[cfg(debug_assertions)]
            {
                self.quota.usage_by_group_into(&mut self.scratch_usage);
                let ctx = PolicyContext {
                    group_gpu_usage: &self.scratch_usage,
                    group_usage_vec: &self.group_usage_vec,
                    group_quota: self.quota.quotas(),
                    capacity: self.sorted_capacity,
                };
                let policy = self.config.policy;
                let queue_len = self.queue.len();
                debug_assert!(
                    self.queue.windows(2).all(|w| {
                        compare(policy, now_secs, queue_len, &w[0], &w[1], &ctx).is_lt()
                    }),
                    "sort-skip invariant violated: queue is not in sorted order"
                );
            }
        }
        debug_assert!(
            self.queue.len() == self.queue_members.len()
                && self
                    .queue
                    .iter()
                    .all(|r| self.queue_members.contains(&r.id)),
            "queue membership set diverged from the queue"
        );

        let mut reservations: Vec<Reservation> = Vec::new();
        // Skip records accumulate into a recycled buffer (handed back by
        // the trace ring at push time once it is warm).
        let mut skips = std::mem::take(&mut self.scratch_skips);
        skips.clear();
        // Reusable snapshot buffer instead of a per-round `Vec` clone
        // (`TaskRequest` is `Copy`, so this is a flat memcpy).
        let mut queue_snapshot = std::mem::take(&mut self.scratch_snapshot);
        queue_snapshot.clear();
        queue_snapshot.extend_from_slice(&self.queue);
        self.counters.snapshot_elements += queue_snapshot.len() as u64;
        self.scratch_verdicts_next.clear();

        for (pos, request) in queue_snapshot.iter().enumerate() {
            // 1. Quota gate.
            if !self.quota.admits(self.config.quota, request) {
                self.record_skip(
                    &mut skips,
                    pos,
                    JobSkip {
                        job: request.id,
                        reason: SkipReason::QuotaExhausted {
                            group: request.group,
                            used: self.quota.total_used(request.group),
                            quota: self.quota.quota(request.group),
                            demand: request.total_gpus(),
                        },
                    },
                    SkipVerdict::Quota,
                );
                // Blocked on quota, not capacity: holds no capacity
                // reservation. Under no-backfill the queue is strictly
                // ordered, so later jobs stall behind it anyway.
                if self.config.backfill == BackfillMode::None {
                    self.skip_tail(&mut skips, &queue_snapshot[pos + 1..], pos + 1, request.id);
                    break;
                }
                continue;
            }

            // 2. Backfill gate (someone ahead is capacity-blocked).
            if !reservations.is_empty() {
                let est_end = now_secs + request.est_secs;
                let permitted = match self.config.backfill {
                    BackfillMode::None => false,
                    BackfillMode::Easy => {
                        may_backfill(est_end, request.total_gpus(), &reservations[0])
                    }
                    BackfillMode::Conservative => reservations
                        .iter()
                        .all(|r| may_backfill(est_end, request.total_gpus(), r)),
                };
                if !permitted {
                    let blocking = reservations
                        .iter()
                        .find(|r| !may_backfill(est_end, request.total_gpus(), r))
                        .unwrap_or(&reservations[0]);
                    let shadow_secs = blocking.shadow_secs;
                    self.record_skip(
                        &mut skips,
                        pos,
                        JobSkip {
                            job: request.id,
                            reason: SkipReason::BackfillBlocked {
                                est_end_secs: est_end,
                                shadow_secs,
                            },
                        },
                        SkipVerdict::Backfill,
                    );
                    if self.config.backfill == BackfillMode::Conservative {
                        self.push_reservation(now_secs, request, cluster, &mut reservations);
                    }
                    continue;
                }
            }

            // 3. Placement (with quota reclaim if allowed).
            let backfilled = !reservations.is_empty();
            match self.try_place(now_secs, request, cluster, &mut outcome) {
                Some(start) => {
                    self.scratch_verdicts_next
                        .push((request.id, SkipVerdict::Started));
                    if backfilled {
                        self.backfill_starts += 1;
                        if let Some(m) = &self.metrics {
                            m.backfill_starts.inc();
                        }
                    }
                    outcome.decisions.push(Decision::Start(StartedTask {
                        backfilled,
                        ..start
                    }));
                }
                None => {
                    // Capacity-blocked.
                    self.record_skip(
                        &mut skips,
                        pos,
                        JobSkip {
                            job: request.id,
                            reason: SkipReason::NoFeasiblePlacement {
                                workers: request.workers,
                                gpus_per_worker: request.per_worker.gpus,
                                free_gpus: cluster.free_gpus(),
                                largest_free_block: cluster.largest_free_block(),
                            },
                        },
                        SkipVerdict::NoPlacement,
                    );
                    match self.config.backfill {
                        BackfillMode::None => {
                            self.skip_tail(
                                &mut skips,
                                &queue_snapshot[pos + 1..],
                                pos + 1,
                                request.id,
                            );
                            break;
                        }
                        BackfillMode::Easy => {
                            if reservations.is_empty() {
                                self.push_reservation(
                                    now_secs,
                                    request,
                                    cluster,
                                    &mut reservations,
                                );
                            }
                        }
                        BackfillMode::Conservative => {
                            self.push_reservation(now_secs, request, cluster, &mut reservations);
                        }
                    }
                }
            }
        }

        // The walk pushed exactly one ledger entry per examined position;
        // it becomes the baseline the next round's walk dedups against.
        debug_assert_eq!(
            self.scratch_verdicts_next.len(),
            queue_snapshot.len(),
            "walk ledger out of step with the snapshot"
        );
        std::mem::swap(&mut self.scratch_verdicts, &mut self.scratch_verdicts_next);
        self.scratch_snapshot = queue_snapshot;
        let wall = round_start.elapsed();
        if let Some(m) = &self.metrics {
            m.rounds.inc();
            m.round_latency.observe(wall.as_secs_f64());
            m.queue_depth.set(self.queue.len() as f64);
            m.running_tasks.set(self.running.len() as f64);
        }
        self.flush_work_metrics();
        // Idle rounds (nothing queued, nothing decided) are not traced:
        // the platform's fixpoint loop would otherwise flood the ring.
        if queue_len_at_start > 0 || !outcome.is_empty() {
            let mut started = std::mem::take(&mut self.scratch_started);
            started.clear();
            started.extend(outcome.starts().map(|t| t.request.id));
            let mut preempted = std::mem::take(&mut self.scratch_preempted);
            preempted.clear();
            preempted.extend(outcome.preemptions().map(|(id, _)| id));
            let evicted = self.trace.push(RoundTrace {
                round: self.rounds,
                at_secs: now_secs,
                wall_micros: wall.as_micros() as u64,
                queue_len: queue_len_at_start,
                started,
                preempted,
                skips,
            });
            // Once the ring is warm every push evicts a round; its vectors
            // become the next round's buffers, closing the allocation loop.
            if let Some(old) = evicted {
                self.scratch_started = old.started;
                self.scratch_preempted = old.preempted;
                self.scratch_skips = old.skips;
            }
        } else {
            self.scratch_skips = skips;
        }

        outcome
    }

    /// Attempts to place `request`, preempting borrowers if the request is
    /// guaranteed, quota-admitted, and the mode allows reclaim.
    fn try_place(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &mut Cluster,
        outcome: &mut SchedOutcome,
    ) -> Option<StartedTask> {
        if let Some(start) = self.commit_placement(now_secs, request, cluster) {
            return Some(start);
        }
        // Reclaim path: guaranteed job within quota but no room — evict
        // best-effort borrowers, youngest first, until it fits.
        if self.config.quota != QuotaMode::Borrowing || request.qos != QosClass::Guaranteed {
            return None;
        }
        // O(1) reclaim gate: evicting every borrower hands back exactly the
        // borrowed GPU total, so the hypothetical cluster below would have
        // `free + borrowed` free GPUs. When even that cannot cover the
        // aggregate demand, the planner's capacity gate is certain to
        // reject the pre-check — skip the victim scan and the clone, and
        // count the reject exactly as `plan_counted` would have.
        let borrowed = self.quota.borrowed_total();
        if request.per_worker.gpus.saturating_mul(request.workers)
            > cluster.free_gpus().saturating_add(borrowed)
        {
            self.counters.plan.attempts += 1;
            self.counters.plan.fastpath_rejects += 1;
            return None;
        }
        let mut victims: Vec<(f64, JobId)> = self
            .running
            .values()
            .filter(|t| t.request.qos == QosClass::BestEffort)
            .map(|t| (t.start_secs, t.request.id))
            .collect();
        if victims.is_empty() {
            return None;
        }
        // Pre-check on a hypothetical cluster with every borrower gone:
        // evicting is only justified if the reclaim can actually succeed.
        // (Evicting and then failing to place would destroy borrower
        // progress for nothing — and could deadlock an otherwise idle
        // cluster.) The snapshot is cached keyed by the cluster's mutation
        // version: consecutive blocked guaranteed jobs in one round see an
        // unchanged cluster and running set, so one clone serves them all.
        let version = cluster.version();
        if !matches!(&self.reclaim_cache, Some((v, _)) if *v == version) {
            let mut hypothetical = cluster.clone();
            for t in self.running.values() {
                if t.request.qos == QosClass::BestEffort {
                    hypothetical
                        .release(t.lease_id)
                        .expect("running borrower holds a valid lease");
                }
            }
            self.reclaim_cache = Some((version, hypothetical));
        }
        {
            // Freshly written above when absent; kept panic-free.
            let (_, hypothetical) = self.reclaim_cache.as_ref()?;
            self.planner.plan_counted(
                hypothetical,
                request.workers,
                request.per_worker,
                &mut self.counters.plan,
            )?;
        }

        // Youngest first: least sunk work destroyed.
        victims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, victim_id) in victims {
            let task = self
                .task_finished(victim_id, cluster)
                .expect("victim is running");
            self.preemptions += 1;
            if let Some(m) = &self.metrics {
                m.preemptions.inc();
            }
            outcome.decisions.push(Decision::Preempt {
                id: victim_id,
                reclaimed_for: request.group,
            });
            // Re-queue the victim with its original submission time and
            // its originally requested gang size.
            self.queue_push(TaskRequest {
                workers: task.requested_workers,
                ..task.request
            });
            if let Some(start) = self.commit_placement(now_secs, request, cluster) {
                return Some(start);
            }
        }
        unreachable!("pre-checked reclaim must place once all borrowers are evicted")
    }

    /// Plans and commits a placement, charging quota and recording the
    /// task. On success the request is removed from the queue immediately —
    /// a later reclaim in the same round may re-queue this very job, and
    /// that re-queued entry must survive the round.
    fn commit_placement(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &mut Cluster,
    ) -> Option<StartedTask> {
        // Elastic tasks shrink by halving the gang until it fits (down to
        // one worker); inelastic tasks place all-or-nothing.
        let mut granted = request.workers;
        let assignment = loop {
            if let Some(a) = self.planner.plan_counted(
                cluster,
                granted,
                request.per_worker,
                &mut self.counters.plan,
            ) {
                break a;
            }
            if !request.elastic || granted <= 1 {
                return None;
            }
            granted = (granted / 2).max(1);
        };
        self.queue_remove_request(request);
        let shares = Planner::shares_for(&assignment, request.per_worker);
        let lease = cluster
            .allocate(request.id.value(), &shares)
            .expect("planned placement must allocate");
        let granted_request = TaskRequest {
            workers: granted,
            ..*request
        };
        self.quota.charge(&granted_request);
        self.group_usage_vec[granted_request.group.index()] += granted_request.total_resources();
        self.usage_epoch += 1;
        // A shrunken data-parallel gang runs proportionally longer.
        let scale = f64::from(request.workers) / f64::from(granted);
        self.running.insert(
            request.id,
            RunningTask {
                request: granted_request,
                requested_workers: request.workers,
                lease_id: lease.id(),
                worker_nodes: assignment.clone(),
                start_secs: now_secs,
                est_end_secs: now_secs + request.est_secs * scale,
            },
        );
        Some(StartedTask {
            request: *request,
            granted_workers: granted,
            lease,
            worker_nodes: assignment,
            backfilled: false,
        })
    }

    /// Computes and appends the capacity reservation for a blocked request.
    ///
    /// The release profile — running tasks as `(est_end, gpus)`, ascending
    /// by end time — depends only on the running set, and every change to
    /// the running set (placement, finish, preemption) also bumps the
    /// cluster's mutation version. The sorted profile is therefore cached
    /// keyed on that version: conservative backfill asks for one
    /// reservation per blocked job per round against an unchanged running
    /// set, and all of those questions share a single collect-and-sort.
    fn push_reservation(
        &mut self,
        now_secs: f64,
        request: &TaskRequest,
        cluster: &Cluster,
        reservations: &mut Vec<Reservation>,
    ) {
        let version = cluster.version();
        if !matches!(&self.reserve_cache, Some((v, _)) if *v == version) {
            let mut profile = match self.reserve_cache.take() {
                Some((_, mut p)) => {
                    p.clear();
                    p
                }
                None => Vec::new(),
            };
            profile.extend(
                self.running
                    .values()
                    .map(|t| (t.est_end_secs, t.request.total_gpus())),
            );
            // Stable sort over the id-ordered running set: byte-identical
            // to the order the eager per-call sort used to produce.
            profile.sort_by(|a, b| a.0.total_cmp(&b.0));
            self.reserve_cache = Some((version, profile));
        }
        if let Some((_, profile)) = &self.reserve_cache {
            reservations.push(reserve_sorted(
                now_secs,
                request.total_gpus(),
                cluster.free_gpus(),
                profile,
            ));
        }
    }

    /// Appends `skip` to the round's skip list only when the previous
    /// walk examined a *different* job at this position, or the same job
    /// with a different verdict. Re-deciding the same "why not" round
    /// after round is pure work — the trace ring and `why` explanations
    /// only gain information when something changes, and in a stable
    /// blocked queue nothing does. One positional compare replaces a
    /// per-job map; suppressed repeats are counted so the work ledger
    /// still proves the gate ran.
    fn record_skip(
        &mut self,
        skips: &mut Vec<JobSkip>,
        pos: usize,
        skip: JobSkip,
        verdict: SkipVerdict,
    ) {
        let unchanged = self
            .scratch_verdicts
            .get(pos)
            .is_some_and(|&(id, v)| id == skip.job && v == verdict);
        self.scratch_verdicts_next.push((skip.job, verdict));
        if unchanged {
            self.counters.skip_suppressions += 1;
        } else {
            self.counters.skip_records += 1;
            skips.push(skip);
        }
    }

    /// Records a head-of-line skip for every request in `rest` (snapshot
    /// positions `base..`): under strict FIFO (no backfill) a blocked job
    /// stalls everything behind it.
    fn skip_tail(
        &mut self,
        skips: &mut Vec<JobSkip>,
        rest: &[TaskRequest],
        base: usize,
        behind: JobId,
    ) {
        for (i, r) in rest.iter().enumerate() {
            self.record_skip(
                skips,
                base + i,
                JobSkip {
                    job: r.id,
                    reason: SkipReason::HeadOfLineBlocked { behind },
                },
                SkipVerdict::HeadOfLine { behind },
            );
        }
    }

    /// Per-group running resource vectors recomputed from scratch — the
    /// oracle the incrementally maintained `group_usage_vec` is
    /// debug-asserted against every round.
    fn group_usage_vectors_recomputed(&self) -> Vec<ResourceVec> {
        let mut usage = vec![ResourceVec::ZERO; self.config.group_count];
        for task in self.running.values() {
            usage[task.request.group.index()] += task.request.total_resources();
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacc_cluster::{ClusterSpec, GpuModel};
    use tacc_workload::GroupId;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::uniform(1, 4, GpuModel::A100, 8))
    }

    fn sched(config: SchedulerConfig) -> Scheduler {
        Scheduler::new(config)
    }

    /// Single-worker request; `gpus` must fit one node (≤ 8 here).
    fn simple_request(id: u64, group: usize, gpus: u32, est: f64, submit: f64) -> TaskRequest {
        TaskRequest {
            id: JobId::from_value(id),
            group: GroupId::from_index(group),
            qos: QosClass::Guaranteed,
            workers: 1,
            per_worker: ResourceVec::gpus_only(gpus),
            est_secs: est,
            submit_secs: submit,
            elastic: false,
        }
    }

    /// Gang request: `workers` × `per_gpu` GPUs.
    fn gang_request(
        id: u64,
        group: usize,
        workers: u32,
        per_gpu: u32,
        est: f64,
        submit: f64,
    ) -> TaskRequest {
        TaskRequest {
            workers,
            per_worker: ResourceVec::gpus_only(per_gpu),
            ..simple_request(id, group, 0, est, submit)
        }
    }

    #[test]
    fn starts_what_fits_fifo() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        for i in 0..3 {
            s.submit(simple_request(i, 0, 8, 100.0, i as f64));
        }
        let out = s.schedule(10.0, &mut c);
        assert_eq!(out.starts().count(), 3);
        assert_eq!(s.running_len(), 3);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(c.free_gpus(), 8);
        assert!(c.check_invariants());
    }

    #[test]
    fn finish_frees_resources() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        s.submit(gang_request(1, 0, 4, 8, 100.0, 0.0));
        let out = s.schedule(0.0, &mut c);
        assert_eq!(out.starts().count(), 1);
        assert_eq!(c.free_gpus(), 0);
        let done = s.task_finished(JobId::from_value(1), &mut c).expect("ran");
        assert_eq!(done.request.id.value(), 1);
        assert_eq!(c.free_gpus(), 32);
        assert_eq!(s.running_len(), 0);
        assert!(s.task_finished(JobId::from_value(1), &mut c).is_none());
    }

    #[test]
    fn no_backfill_blocks_behind_head() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            backfill: BackfillMode::None,
            ..SchedulerConfig::default()
        });
        // Fill 3 of 4 nodes; head needs 2 nodes (blocked), tiny job behind
        // could fit but strict FIFO must stall.
        s.submit(gang_request(1, 0, 3, 8, 1000.0, 0.0));
        let filled = s.schedule(0.0, &mut c);
        assert_eq!(filled.starts().count(), 1);
        s.submit(gang_request(2, 0, 2, 8, 1000.0, 1.0));
        s.submit(simple_request(3, 0, 1, 10.0, 2.0));
        let out = s.schedule(5.0, &mut c);
        assert!(out.starts().count() == 0, "strict FIFO must stall");
    }

    #[test]
    fn easy_backfill_lets_short_jobs_through() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default()); // Easy
        s.submit(gang_request(1, 0, 3, 8, 1000.0, 0.0));
        s.schedule(0.0, &mut c);
        // Head: a 2-node gang is blocked until t≈1000 (est). A short 4-GPU
        // job finishes before the shadow: it backfills.
        s.submit(gang_request(2, 0, 2, 8, 500.0, 1.0));
        s.submit(simple_request(3, 0, 4, 100.0, 2.0));
        let out = s.schedule(5.0, &mut c);
        assert_eq!(out.starts().count(), 1);
        assert_eq!(
            out.starts().next().expect("one start").request.id.value(),
            3
        );
        assert!(out.starts().next().expect("one start").backfilled);
        assert_eq!(s.backfill_starts(), 1);
    }

    #[test]
    fn easy_backfill_respects_shadow() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        // 24 GPUs busy until est t≈100; one node (8 GPUs) free.
        s.submit(gang_request(1, 0, 3, 8, 100.0, 0.0));
        s.schedule(0.0, &mut c);
        // Head blocked: needs the whole cluster, shadow at t≈100, extra 0.
        s.submit(gang_request(2, 0, 4, 8, 1000.0, 1.0));
        // Long small job: runs past the shadow and exceeds extra → refused.
        s.submit(simple_request(3, 0, 4, 9999.0, 2.0));
        // Short small job: finishes before the shadow → backfills.
        s.submit(simple_request(4, 0, 4, 50.0, 3.0));
        let out = s.schedule(5.0, &mut c);
        let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
        assert_eq!(started, vec![4]);
    }

    #[test]
    fn conservative_respects_all_reservations() {
        let mut c = cluster();
        // Conservative: a candidate must clear every blocked job's shadow.
        let mut s = sched(SchedulerConfig {
            backfill: BackfillMode::Conservative,
            ..SchedulerConfig::default()
        });
        s.submit(gang_request(1, 0, 3, 8, 100.0, 0.0));
        s.schedule(0.0, &mut c);
        // Blocked #1: 2 nodes, shadow ≈ t=100, extra = 32-16 = 16.
        s.submit(gang_request(2, 0, 2, 8, 50.0, 1.0));
        // Blocked #2: whole cluster, shadow ≈ t=100, extra 0.
        s.submit(gang_request(3, 0, 4, 8, 50.0, 2.0));
        // Candidate: est 200s runs past both shadows; it fits in blocked
        // #1's extra (4 ≤ 16) so EASY would admit it, but blocked #2 leaves
        // zero extra ⇒ conservative refuses.
        s.submit(simple_request(4, 0, 4, 200.0, 3.0));
        let out = s.schedule(5.0, &mut c);
        assert_eq!(out.starts().count(), 0);
    }

    #[test]
    fn gang_places_atomically() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        let gang = TaskRequest {
            workers: 4,
            per_worker: ResourceVec::gpus_only(8),
            ..simple_request(1, 0, 0, 100.0, 0.0)
        };
        s.submit(gang);
        let out = s.schedule(0.0, &mut c);
        assert_eq!(out.starts().count(), 1);
        assert_eq!(
            out.starts().next().expect("one start").worker_nodes.len(),
            4
        );
        assert_eq!(c.free_gpus(), 0);
    }

    #[test]
    fn static_quota_strands_idle_capacity() {
        let mut c = cluster(); // 32 GPUs
        let mut s = sched(SchedulerConfig {
            quota: QuotaMode::Static,
            quotas: vec![8, 24],
            group_count: 2,
            ..SchedulerConfig::default()
        });
        // Group 0 wants 16 GPUs: only 8 admitted even though 32 are free.
        s.submit(simple_request(1, 0, 8, 100.0, 0.0));
        s.submit(simple_request(2, 0, 8, 100.0, 1.0));
        let out = s.schedule(0.0, &mut c);
        let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
        assert_eq!(started, vec![1]);
        assert_eq!(c.free_gpus(), 24);
    }

    #[test]
    fn borrowing_quota_lets_best_effort_use_idle() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            quota: QuotaMode::Borrowing,
            quotas: vec![8, 24],
            group_count: 2,
            ..SchedulerConfig::default()
        });
        s.submit(simple_request(1, 0, 8, 100.0, 0.0)); // guaranteed, in quota
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..gang_request(2, 0, 2, 8, 100.0, 1.0) // borrows group 1's idle
        });
        let out = s.schedule(0.0, &mut c);
        assert_eq!(out.starts().count(), 2);
        assert_eq!(c.free_gpus(), 8);
    }

    #[test]
    fn reclaim_preempts_youngest_borrower() {
        let mut c = cluster(); // 32 GPUs
        let mut s = sched(SchedulerConfig {
            quota: QuotaMode::Borrowing,
            quotas: vec![16, 16],
            group_count: 2,
            ..SchedulerConfig::default()
        });
        // Group 0 borrows the whole cluster with two 16-GPU best-effort gangs.
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..gang_request(1, 0, 2, 8, 1000.0, 0.0)
        });
        s.schedule(0.0, &mut c);
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..gang_request(2, 0, 2, 8, 1000.0, 10.0)
        });
        s.schedule(10.0, &mut c);
        assert_eq!(c.free_gpus(), 0);
        // Group 1 submits a guaranteed job: the *younger* borrower (job 2)
        // is evicted.
        s.submit(gang_request(3, 1, 2, 8, 500.0, 20.0));
        let out = s.schedule(20.0, &mut c);
        assert_eq!(out.preemptions().count(), 1);
        assert_eq!(
            out.preemptions().next().expect("one preemption").0.value(),
            2
        );
        assert_eq!(out.starts().count(), 1);
        assert_eq!(
            out.starts().next().expect("one start").request.id.value(),
            3
        );
        assert_eq!(s.preemption_count(), 1);
        // The victim went back to the queue.
        assert_eq!(s.queue_len(), 1);
        assert!(c.check_invariants());
    }

    #[test]
    fn guaranteed_never_preempted() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            quota: QuotaMode::Borrowing,
            quotas: vec![32, 32],
            group_count: 2,
            ..SchedulerConfig::default()
        });
        // Group 0 legitimately uses all 32 under guarantee (quota 32).
        s.submit(gang_request(1, 0, 4, 8, 1000.0, 0.0));
        s.schedule(0.0, &mut c);
        // Group 1's guaranteed job finds no room and nothing preemptible.
        s.submit(simple_request(2, 1, 8, 100.0, 1.0));
        let out = s.schedule(1.0, &mut c);
        assert_eq!(out.starts().count(), 0);
        assert_eq!(out.preemptions().count(), 0);
    }

    #[test]
    fn fair_share_alternates_groups() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            policy: PolicyKind::FairShare,
            quotas: vec![16, 16],
            group_count: 2,
            ..SchedulerConfig::default()
        });
        // Group 0 floods; group 1 submits one job later. With fair share,
        // group 1's job goes first once group 0 is running jobs.
        s.submit(gang_request(1, 0, 2, 8, 100.0, 0.0));
        s.schedule(0.0, &mut c);
        s.submit(gang_request(2, 0, 2, 8, 100.0, 1.0));
        s.submit(gang_request(3, 1, 2, 8, 100.0, 2.0));
        let out = s.schedule(2.0, &mut c);
        // Group 1's job jumps ahead of group 0's second job; the cluster is
        // then full, so group 0's job keeps waiting.
        let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
        assert_eq!(started, vec![3]);
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn cancel_removes_queued_only() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        s.submit(simple_request(1, 0, 8, 100.0, 0.0));
        assert!(s.cancel(JobId::from_value(1)));
        assert!(!s.cancel(JobId::from_value(1)));
        let out = s.schedule(0.0, &mut c);
        assert!(out.is_empty());
    }

    #[test]
    fn rotation_gives_queued_work_a_turn() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            time_slice_secs: Some(600.0),
            ..SchedulerConfig::default()
        });
        // A best-effort gang holds the whole cluster.
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..gang_request(1, 0, 4, 8, 10_000.0, 0.0)
        });
        s.schedule(0.0, &mut c);
        assert_eq!(c.free_gpus(), 0);
        // A guaranteed job arrives and waits.
        s.submit(simple_request(2, 1, 8, 600.0, 100.0));
        assert!(s.schedule(100.0, &mut c).is_empty());
        // Before the quantum expires, rotation is a no-op.
        assert!(s.rotate(300.0, &mut c).is_empty());
        // After the quantum, the gang rotates out and the queued job runs.
        let out = s.rotate(700.0, &mut c);
        let preempted: Vec<u64> = out.preemptions().map(|(id, _)| id.value()).collect();
        assert_eq!(preempted, vec![1]);
        let started: Vec<u64> = out.starts().map(|t| t.request.id.value()).collect();
        // The freed space admits the guaranteed job; the rotated gang may
        // restart in the remainder.
        assert!(started.contains(&2), "started: {started:?}");
        assert!(c.check_invariants());
    }

    #[test]
    fn rotation_never_evicts_in_vain() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            time_slice_secs: Some(600.0),
            ..SchedulerConfig::default()
        });
        // Best-effort job on one node only.
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..simple_request(1, 0, 8, 10_000.0, 0.0)
        });
        s.schedule(0.0, &mut c);
        // Queued gang needs the whole cluster — evicting the one BE job
        // cannot help (3 nodes free + 1 evicted = 4 nodes, it WOULD fit).
        // Use a 5-node request instead: infeasible even after eviction.
        s.submit(gang_request(2, 1, 5, 8, 600.0, 100.0));
        let out = s.rotate(700.0, &mut c);
        assert!(out.is_empty(), "eviction would not let anything start");
        assert_eq!(s.running_len(), 1);
    }

    #[test]
    fn rotation_disabled_or_idle_is_noop() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default()); // no time slice
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..simple_request(1, 0, 8, 10_000.0, 0.0)
        });
        s.schedule(0.0, &mut c);
        s.submit(gang_request(2, 1, 4, 8, 600.0, 100.0));
        assert!(s.rotate(10_000.0, &mut c).is_empty());
        // Enabled but empty queue: also a no-op.
        let mut s2 = sched(SchedulerConfig {
            time_slice_secs: Some(60.0),
            ..SchedulerConfig::default()
        });
        let mut c2 = cluster();
        s2.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..simple_request(3, 0, 8, 10_000.0, 0.0)
        });
        s2.schedule(0.0, &mut c2);
        assert!(s2.rotate(10_000.0, &mut c2).is_empty());
    }

    #[test]
    fn elastic_gang_shrinks_to_fit() {
        let mut c = cluster(); // 4 nodes x 8
        let mut s = sched(SchedulerConfig::default());
        // Occupy 3 nodes; an elastic 4x8 gang shrinks to 1 worker.
        s.submit(gang_request(1, 0, 3, 8, 10_000.0, 0.0));
        s.schedule(0.0, &mut c);
        s.submit(TaskRequest {
            elastic: true,
            ..gang_request(2, 0, 4, 8, 1000.0, 1.0)
        });
        let out = s.schedule(1.0, &mut c);
        let start = out.starts().next().expect("elastic start");
        assert_eq!(start.request.workers, 4);
        assert_eq!(start.granted_workers, 1);
        assert_eq!(c.free_gpus(), 0);
        // The running record reflects the grant; est_end is scaled 4x.
        let running = s.running_task(start.request.id).expect("running");
        assert_eq!(running.request.workers, 1);
        assert_eq!(running.requested_workers, 4);
        assert!((running.est_end_secs - (1.0 + 4000.0)).abs() < 1e-9);
        assert!(c.check_invariants());
    }

    #[test]
    fn inelastic_gang_still_all_or_nothing() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        s.submit(gang_request(1, 0, 3, 8, 10_000.0, 0.0));
        s.schedule(0.0, &mut c);
        s.submit(gang_request(2, 0, 4, 8, 1000.0, 1.0)); // not elastic
        let out = s.schedule(1.0, &mut c);
        assert_eq!(out.starts().count(), 0);
    }

    #[test]
    fn preempted_elastic_task_requeues_full_size() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            quota: QuotaMode::Borrowing,
            quotas: vec![16, 16],
            group_count: 2,
            ..SchedulerConfig::default()
        });
        // Elastic BE gang wants 4 workers, gets all 4 nodes.
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            elastic: true,
            ..gang_request(1, 0, 4, 8, 10_000.0, 0.0)
        });
        s.schedule(0.0, &mut c);
        // Guaranteed job reclaims: the elastic gang is evicted, restarts
        // shrunk in the leftover space, still requesting 4 workers.
        s.submit(gang_request(2, 1, 2, 8, 500.0, 10.0));
        s.schedule(10.0, &mut c);
        // The victim re-queued and (in a later round) restarts elastic.
        let out2 = s.schedule(11.0, &mut c);
        let restarted: Vec<_> = out2.starts().collect();
        if let Some(start) = restarted.first() {
            assert_eq!(start.request.workers, 4, "requeued at full size");
            assert!(start.granted_workers < 4, "restarted shrunk");
        }
        assert!(c.check_invariants());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_submission_panics() {
        let mut s = sched(SchedulerConfig::default());
        s.submit(simple_request(1, 0, 1, 10.0, 0.0));
        s.submit(simple_request(1, 0, 1, 10.0, 0.0));
    }

    #[test]
    fn trace_records_quota_skip_reason() {
        let mut c = cluster(); // 32 GPUs
        let mut s = sched(SchedulerConfig {
            quota: QuotaMode::Static,
            quotas: vec![8],
            group_count: 1,
            ..SchedulerConfig::default()
        });
        s.submit(simple_request(1, 0, 8, 100.0, 0.0));
        s.submit(simple_request(2, 0, 8, 100.0, 1.0));
        s.schedule(0.0, &mut c);
        // Job 1 started; job 2 is quota-blocked and must say so.
        assert!(s
            .decision_trace()
            .latest_skip(JobId::from_value(1))
            .is_none());
        let (at, reason) = s
            .decision_trace()
            .latest_skip(JobId::from_value(2))
            .expect("job 2 skipped");
        assert_eq!(at, 0.0);
        let text = reason.to_string();
        assert!(
            text.contains("quota exhausted") && text.contains("8/8"),
            "unexpected reason: {text}"
        );
    }

    #[test]
    fn trace_records_placement_and_head_of_line_skips() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            backfill: BackfillMode::None,
            ..SchedulerConfig::default()
        });
        s.submit(gang_request(1, 0, 3, 8, 1000.0, 0.0));
        s.schedule(0.0, &mut c);
        s.submit(gang_request(2, 0, 2, 8, 1000.0, 1.0));
        s.submit(simple_request(3, 0, 1, 10.0, 2.0));
        s.schedule(5.0, &mut c);
        let (_, head) = s
            .decision_trace()
            .latest_skip(JobId::from_value(2))
            .expect("head is capacity-blocked");
        assert!(
            matches!(head, SkipReason::NoFeasiblePlacement { free_gpus: 8, .. }),
            "unexpected: {head:?}"
        );
        let (_, tail) = s
            .decision_trace()
            .latest_skip(JobId::from_value(3))
            .expect("tail stalls behind head");
        assert!(
            matches!(tail, SkipReason::HeadOfLineBlocked { behind } if behind.value() == 2),
            "unexpected: {tail:?}"
        );
    }

    #[test]
    fn trace_records_backfill_blocked() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default()); // Easy backfill
        s.submit(gang_request(1, 0, 3, 8, 100.0, 0.0));
        s.schedule(0.0, &mut c);
        s.submit(gang_request(2, 0, 4, 8, 1000.0, 1.0)); // blocked head
        s.submit(simple_request(3, 0, 4, 9999.0, 2.0)); // too long to backfill
        s.schedule(5.0, &mut c);
        let (_, reason) = s
            .decision_trace()
            .latest_skip(JobId::from_value(3))
            .expect("long job refused backfill");
        assert!(
            matches!(reason, SkipReason::BackfillBlocked { .. }),
            "unexpected: {reason:?}"
        );
        // Once the job starts, the skip entry clears.
        s.task_finished(JobId::from_value(1), &mut c);
        s.schedule(100.0, &mut c);
        assert!(s
            .decision_trace()
            .latest_skip(JobId::from_value(2))
            .is_none());
    }

    #[test]
    fn trace_round_has_latency_and_queue_depth() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        s.submit(simple_request(1, 0, 8, 100.0, 0.0));
        s.schedule(0.0, &mut c);
        let rounds: Vec<_> = s.decision_trace().rounds().collect();
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].queue_len, 1);
        assert_eq!(rounds[0].started, vec![JobId::from_value(1)]);
        assert!(rounds[0].skips.is_empty());
        // Idle rounds are not traced.
        s.schedule(1.0, &mut c);
        assert_eq!(s.decision_trace().len(), 1);
    }

    #[test]
    fn attached_registry_sees_round_metrics() {
        use tacc_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let mut c = cluster();
        let mut s = sched(SchedulerConfig::default());
        s.attach_registry(&registry);
        s.submit(simple_request(1, 0, 8, 100.0, 0.0));
        s.schedule(0.0, &mut c);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tacc_sched_rounds_total"), Some(1));
        assert_eq!(
            snap.histogram("tacc_sched_round_latency_seconds")
                .map(|h| h.count),
            Some(1)
        );
        assert_eq!(snap.gauge("tacc_sched_running_tasks"), Some(1.0));
        assert_eq!(snap.gauge("tacc_sched_queue_depth"), Some(0.0));
    }

    #[test]
    fn rotation_is_traced() {
        let mut c = cluster();
        let mut s = sched(SchedulerConfig {
            time_slice_secs: Some(600.0),
            ..SchedulerConfig::default()
        });
        s.submit(TaskRequest {
            qos: QosClass::BestEffort,
            ..gang_request(1, 0, 4, 8, 10_000.0, 0.0)
        });
        s.schedule(0.0, &mut c);
        s.submit(simple_request(2, 1, 8, 600.0, 100.0));
        s.schedule(100.0, &mut c);
        s.rotate(700.0, &mut c);
        let preempted_in_trace = s
            .decision_trace()
            .rounds()
            .any(|r| r.preempted.contains(&JobId::from_value(1)));
        assert!(
            preempted_in_trace,
            "rotation eviction must appear in the trace"
        );
    }
}
