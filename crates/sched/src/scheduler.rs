//! The scheduling-layer facade: configuration, queue membership and
//! ordering invariants, and the submit/cancel/finished entry points.
//!
//! The round machinery lives in focused submodules, each an
//! `impl Scheduler` block:
//!
//! * [`rounds`](self) — the scheduling round walk (quota, backfill,
//!   placement), skip tracing with positional dedup, and the
//!   reservation/release-profile caches;
//! * [`gang`](self) — gang time-slicing rotation;
//! * [`elastic`](self) — placement commitment: elastic gang shrinking
//!   and quota reclaim with borrower eviction.

use std::collections::{BTreeMap, BTreeSet};

use tacc_cluster::{Cluster, ResourceVec};
use tacc_obs::{Counter, DecisionTraceLog, Gauge, Histogram, JobSkip, MetricsRegistry};
use tacc_workload::{GroupRoster, JobId, QosClass};

use crate::backfill::BackfillMode;
use crate::placement::{PlacementStrategy, PlanStats, Planner};
use crate::policy::{compare, PolicyContext, PolicyKind};
use crate::quota::{QuotaMode, QuotaTable};
use crate::request::{RunningTask, TaskRequest};
use crate::slotset::{CapacityWindow, SlotSet, SlotStats};

mod elastic;
mod gang;
mod rounds;

/// Configuration of a [`Scheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Queue-ordering policy.
    pub policy: PolicyKind,
    /// Gang placement strategy.
    pub placement: PlacementStrategy,
    /// Backfill variant.
    pub backfill: BackfillMode,
    /// Quota enforcement mode.
    pub quota: QuotaMode,
    /// Per-group GPU quotas (indexed by group). May be empty when quotas
    /// are [`QuotaMode::Disabled`]; groups beyond the vector get quota 0.
    pub quotas: Vec<u32>,
    /// Number of groups the scheduler will see (sizes fair-share state).
    pub group_count: usize,
    /// Gang time-slicing quantum (Slurm's "gang scheduling (time-slicing
    /// jobs)"): when set, a best-effort task that has run a full quantum
    /// can be rotated out in favour of queued work via
    /// [`Scheduler::rotate`]. `None` disables rotation.
    pub time_slice_secs: Option<f64>,
    /// How many [`RoundTrace`](tacc_obs::RoundTrace)s the decision trace ring retains. The
    /// latest per-job skip reason survives ring eviction regardless.
    pub decision_trace_capacity: usize,
    /// Planned capacity changes (drain/maintenance windows, permanent
    /// reductions) applied to the temporal planner's availability profile
    /// — OAR's `available_upto` pseudo-job trick. Windows shape backfill
    /// reservation shadows; they do not alter the physical cluster.
    pub capacity_windows: Vec<CapacityWindow>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            policy: PolicyKind::Fifo,
            placement: PlacementStrategy::Pack,
            backfill: BackfillMode::Easy,
            quota: QuotaMode::Disabled,
            quotas: Vec::new(),
            group_count: 8,
            time_slice_secs: None,
            decision_trace_capacity: 2048,
            capacity_windows: Vec::new(),
        }
    }
}

impl SchedulerConfig {
    /// Derives quotas and group count from a roster.
    pub fn with_roster(mut self, roster: &GroupRoster) -> Self {
        self.quotas = roster.ids().map(|g| roster.quota(g)).collect();
        self.group_count = roster.len();
        self
    }
}

/// The scheduling layer: a queue, the policy suite, and the bookkeeping
/// linking running jobs to their cluster leases.
///
/// Drive it with four calls:
///
/// 1. [`Scheduler::submit`] when the compiler layer finishes a task;
/// 2. [`Scheduler::schedule`] whenever state changed (submission,
///    completion, or a timer) — it commits placements and returns them;
/// 3. [`Scheduler::task_finished`] when the execution layer reports
///    completion (releases the lease and quota charge);
/// 4. [`Scheduler::cancel`] for user kills of queued tasks.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    planner: Planner,
    quota: QuotaTable,
    /// The pending queue. Kept *sorted* under the policy comparator
    /// whenever that order is provable (`queue_dirty == false`):
    /// `queue_push` binary-inserts and `queue_remove_request` removes in
    /// place, so steady-state rounds never re-sort at all.
    queue: Vec<TaskRequest>,
    /// Ids currently queued (duplicate-submission guard and O(log n)
    /// membership for removals).
    queue_members: BTreeSet<JobId>,
    /// Set when the queue's physical order stopped being the sorted
    /// permutation (an append under an invalid comparator context, or a
    /// swap-remove on the fallback path); policies with
    /// static per-request keys (FIFO/SJF) skip re-sorting while clean.
    queue_dirty: bool,
    /// Bumped on every quota charge/release. FairShare/DRF keys depend on
    /// group usage, so those policies also re-sort when this moved.
    usage_epoch: u64,
    /// `usage_epoch` at the last sort.
    sorted_usage_epoch: u64,
    /// Cluster capacity at the last sort. DRF keys divide by capacity, so
    /// a capacity change (node failures, drains) invalidates the sorted
    /// order the same way a usage change does.
    sorted_capacity: ResourceVec,
    /// The previous round's walk ledger: one `(job, verdict)` entry per
    /// examined queue position, in walk order. A job re-examined at the
    /// same position with the same verdict was already traced — at steady
    /// state a deeply blocked queue contributes nothing to the trace (and
    /// pays one positional compare per job, no map) until something moves.
    scratch_verdicts: Vec<(JobId, SkipVerdict)>,
    /// The ledger being built by the current walk (swapped into
    /// `scratch_verdicts` when the round ends).
    scratch_verdicts_next: Vec<(JobId, SkipVerdict)>,
    /// Incrementally maintained per-group running resource totals (the
    /// recomputed-from-scratch value is debug-asserted every round).
    group_usage_vec: Vec<ResourceVec>,
    /// Reusable round buffers (capacity survives across rounds, so the
    /// steady-state hot path allocates nothing per round).
    scratch_usage: Vec<u32>,
    scratch_skips: Vec<JobSkip>,
    scratch_started: Vec<JobId>,
    scratch_preempted: Vec<JobId>,
    pub(crate) scratch_reservations: Vec<crate::backfill::Reservation>,
    /// The reclaim pre-check's hypothetical cluster (all borrowers evicted),
    /// cached with the [`Cluster::version`] it was derived from. Valid for
    /// as long as the scheduler keeps seeing that same cluster unmutated —
    /// every placement, preemption, finish or drain bumps the version — so
    /// consecutive blocked guaranteed jobs within a round share one clone.
    reclaim_cache: Option<(u64, Cluster)>,
    /// The slot-set temporal planner: the future availability profile as
    /// time slots over [`ProcSet`](crate::ProcSet)s, maintained
    /// incrementally (split on placement, merge on release) and keyed by
    /// the [`Cluster::version`] it mirrors. A probe against any other
    /// version rebuilds it from the running set first.
    timeline: SlotSet,
    /// The cluster mutation version `timeline` reflects (`None` forces a
    /// rebuild on the next reservation probe).
    timeline_version: Option<u64>,
    /// Test-only claim-boundary skew (see [`Scheduler::debug_set_boundary_skew`]).
    boundary_skew_secs: f64,
    /// In-place round-walk state: `schedule` walks the live queue by
    /// cursor instead of copying a snapshot. Mid-walk mutations
    /// compensate the cursor so the examined sequence is exactly the
    /// queue as it stood when the walk began.
    walk_active: bool,
    walk_cursor: usize,
    /// Set when the currently examined entry was removed (its placement
    /// committed); the walk then re-reads the cursor instead of advancing.
    walk_removed_current: bool,
    /// Ids inserted mid-walk (re-queued reclaim victims) — skipped by the
    /// walk, exactly as they were absent from the old per-round snapshot.
    walk_inserted: Vec<JobId>,
    running: BTreeMap<JobId, RunningTask>,
    backfill_starts: u64,
    preemptions: u64,
    rounds: u64,
    counters: WorkCounters,
    flushed_counters: WorkCounters,
    trace: DecisionTraceLog,
    metrics: Option<SchedMetrics>,
}

/// Deterministic algorithmic work counters for the scheduler hot path.
///
/// Every field counts *work performed or avoided* — never wall time — so
/// two runs over the same inputs produce identical values. The perf
/// harness records them in `BENCH_hotpath.json` and CI gates on exact
/// equality across runs; wall time stays informational.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkCounters {
    /// Rounds that early-exited because the queue was empty (the sort,
    /// snapshot and usage work was skipped entirely).
    pub empty_rounds: u64,
    /// Rounds that re-sorted the queue.
    pub queue_sorts: u64,
    /// Rounds that proved the previous order still valid and skipped the
    /// sort (clean queue, and — for usage-keyed policies — unchanged usage).
    pub queue_sorts_skipped: u64,
    /// Queue elements copied into per-round snapshot buffers. Zero since
    /// the in-place cursor walk removed the snapshot copy entirely; the
    /// counter stays so `BENCH_hotpath.json` history remains comparable
    /// across that change.
    pub snapshot_elements: u64,
    /// Skip verdicts recorded into the decision trace — a job's first
    /// evaluation, or one whose blocking reason changed.
    pub skip_records: u64,
    /// Re-evaluations whose verdict matched the one already traced and
    /// were suppressed (the steady-state cost of a deeply blocked queue).
    pub skip_suppressions: u64,
    /// Planner effort: attempts, node scans, and O(1) fast-path rejects.
    pub plan: PlanStats,
    /// Temporal-planner effort: slot splits, interval intersections, and
    /// full timeline rebuilds.
    pub slots: SlotStats,
    /// Arena slots newly allocated (job slots plus lease slots). The
    /// scheduler itself reports zero; `Platform::work_counters()` fills
    /// these platform-layer structural counters when merging.
    pub arena_alloc: u64,
    /// Lease-arena slots recycled from the free list instead of grown.
    pub arena_reuse: u64,
    /// Incremental re-keyings of the cluster's sorted free-capacity
    /// index (lease grant/release/drain/undrain). Platform-filled.
    pub free_index_updates: u64,
    /// Events placed directly into a calendar-wheel bucket. Platform-filled.
    pub wheel_insert: u64,
    /// Events migrated from the wheel's overflow heap into buckets when
    /// the cursor advanced past its window. Platform-filled.
    pub wheel_cascade: u64,
}

/// Compact fingerprint of one walk outcome for a queued job, compared
/// positionally across rounds to decide whether a re-examined job needs
/// re-tracing. Deliberately coarse: volatile payloads (current usage,
/// free-GPU counts, shadow times — all of which wobble every round in a
/// busy cluster) are excluded, so a steadily blocked job is traced once
/// per *category of reason* and its surviving record reads as "waiting
/// like this since t". Anything that invalidates the positional match —
/// a start, a cancel, queue reordering — forces a fresh record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SkipVerdict {
    /// Blocked on group quota.
    Quota,
    /// Blocked by a backfill reservation.
    Backfill,
    /// No feasible placement on current capacity.
    NoPlacement,
    /// Stalled behind a blocked head under no-backfill.
    HeadOfLine { behind: JobId },
    /// Not skipped: the job started this round (never equal to a skip, so
    /// a re-queued job is always re-traced).
    Started,
}

/// Handles into an attached [`MetricsRegistry`] (`tacc_sched_*` series).
#[derive(Debug)]
struct SchedMetrics {
    rounds: Counter,
    round_latency: Histogram,
    queue_depth: Gauge,
    running_tasks: Gauge,
    preemptions: Counter,
    backfill_starts: Counter,
    empty_rounds: Counter,
    queue_sorts: Counter,
    queue_sorts_skipped: Counter,
    snapshot_elements: Counter,
    skip_records: Counter,
    skip_suppressions: Counter,
    placement_attempts: Counter,
    node_scans: Counter,
    fastpath_rejects: Counter,
    slot_splits: Counter,
    slot_intersections: Counter,
    slot_rebuilds: Counter,
}

impl Scheduler {
    /// Creates a scheduler from a configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        let mut quotas = config.quotas.clone();
        if quotas.len() < config.group_count {
            quotas.resize(config.group_count, 0);
        }
        Scheduler {
            planner: Planner::new(config.placement),
            quota: QuotaTable::from_quotas(quotas),
            trace: DecisionTraceLog::new(config.decision_trace_capacity),
            group_usage_vec: vec![ResourceVec::ZERO; config.group_count],
            config,
            queue: Vec::new(),
            queue_members: BTreeSet::new(),
            queue_dirty: true,
            usage_epoch: 0,
            sorted_usage_epoch: 0,
            sorted_capacity: ResourceVec::ZERO,
            scratch_verdicts: Vec::new(),
            scratch_verdicts_next: Vec::new(),
            scratch_usage: Vec::new(),
            scratch_skips: Vec::new(),
            scratch_started: Vec::new(),
            scratch_preempted: Vec::new(),
            scratch_reservations: Vec::new(),
            reclaim_cache: None,
            timeline: SlotSet::new(),
            timeline_version: None,
            boundary_skew_secs: 0.0,
            walk_active: false,
            walk_cursor: 0,
            walk_removed_current: false,
            walk_inserted: Vec::new(),
            running: BTreeMap::new(),
            backfill_starts: 0,
            preemptions: 0,
            rounds: 0,
            counters: WorkCounters::default(),
            flushed_counters: WorkCounters::default(),
            metrics: None,
        }
    }

    /// Attaches operational metrics: subsequent rounds update the
    /// `tacc_sched_*` series in `registry` (round counter, wall-clock
    /// round latency histogram, queue depth and running-task gauges,
    /// preemption and backfill counters).
    pub fn attach_registry(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(SchedMetrics {
            rounds: registry.counter("tacc_sched_rounds_total", &[]),
            round_latency: registry.histogram("tacc_sched_round_latency_seconds", &[]),
            queue_depth: registry.gauge("tacc_sched_queue_depth", &[]),
            running_tasks: registry.gauge("tacc_sched_running_tasks", &[]),
            preemptions: registry.counter("tacc_sched_preemptions_total", &[]),
            backfill_starts: registry.counter("tacc_sched_backfill_starts_total", &[]),
            empty_rounds: registry.counter("tacc_sched_empty_rounds_total", &[]),
            queue_sorts: registry.counter("tacc_sched_queue_sorts_total", &[]),
            queue_sorts_skipped: registry.counter("tacc_sched_queue_sorts_skipped_total", &[]),
            snapshot_elements: registry.counter("tacc_sched_snapshot_elements_total", &[]),
            skip_records: registry.counter("tacc_sched_skip_records_total", &[]),
            skip_suppressions: registry.counter("tacc_sched_skip_suppressions_total", &[]),
            placement_attempts: registry.counter("tacc_sched_placement_attempts_total", &[]),
            node_scans: registry.counter("tacc_sched_node_scans_total", &[]),
            fastpath_rejects: registry.counter("tacc_sched_placement_fastpath_rejects_total", &[]),
            slot_splits: registry.counter("tacc_sched_slot_splits_total", &[]),
            slot_intersections: registry.counter("tacc_sched_slot_intersections_total", &[]),
            slot_rebuilds: registry.counter("tacc_sched_slot_rebuilds_total", &[]),
        });
    }

    /// A snapshot of the deterministic work counters accumulated so far.
    pub fn work_counters(&self) -> WorkCounters {
        self.counters
    }

    /// Registers an advance reservation: `window.gpus` GPUs are withheld
    /// from the temporal planner's availability profile over
    /// `[from_secs, until_secs)` — the OAR `available_upto` pseudo-job
    /// trick, now reachable from a live client request
    /// (`tcloud reserve`). Backfill shadows immediately respect the
    /// window; the physical cluster is untouched. The slot-set timeline
    /// is invalidated so the next reservation probe rebuilds against the
    /// updated profile.
    pub fn reserve_capacity(&mut self, window: CapacityWindow) {
        self.config.capacity_windows.push(window);
        self.timeline_version = None;
    }

    /// The capacity windows currently shaping the availability profile
    /// (config-supplied plus live reservations, in registration order).
    pub fn capacity_windows(&self) -> &[CapacityWindow] {
        &self.config.capacity_windows
    }

    /// Mirrors the work-counter deltas since the last flush into the
    /// attached registry (no-op when no registry is attached).
    fn flush_work_metrics(&mut self) {
        let Some(m) = &self.metrics else {
            return;
        };
        let cur = self.counters;
        let prev = self.flushed_counters;
        m.empty_rounds.inc_by(cur.empty_rounds - prev.empty_rounds);
        m.queue_sorts.inc_by(cur.queue_sorts - prev.queue_sorts);
        m.queue_sorts_skipped
            .inc_by(cur.queue_sorts_skipped - prev.queue_sorts_skipped);
        m.snapshot_elements
            .inc_by(cur.snapshot_elements - prev.snapshot_elements);
        m.skip_records.inc_by(cur.skip_records - prev.skip_records);
        m.skip_suppressions
            .inc_by(cur.skip_suppressions - prev.skip_suppressions);
        m.placement_attempts
            .inc_by(cur.plan.attempts - prev.plan.attempts);
        m.node_scans
            .inc_by(cur.plan.nodes_scanned - prev.plan.nodes_scanned);
        m.fastpath_rejects
            .inc_by(cur.plan.fastpath_rejects - prev.plan.fastpath_rejects);
        m.slot_splits.inc_by(cur.slots.splits - prev.slots.splits);
        m.slot_intersections
            .inc_by(cur.slots.intersections - prev.slots.intersections);
        m.slot_rebuilds
            .inc_by(cur.slots.rebuilds - prev.slots.rebuilds);
        self.flushed_counters = cur;
    }

    /// Whether the queue's current physical order is provably the sorted
    /// permutation under the policy comparator *with the current keys* —
    /// the precondition for binary-searching it instead of re-sorting.
    fn queue_order_valid(&self) -> bool {
        !self.queue_dirty
            && match self.config.policy {
                PolicyKind::Fifo | PolicyKind::Sjf => true,
                // Usage-keyed policies: valid only while usage (and, for
                // DRF, capacity) has not moved since the last sort.
                PolicyKind::FairShare | PolicyKind::Drf => {
                    self.usage_epoch == self.sorted_usage_epoch
                }
                // MultiFactor keys move with `now`: every round re-sorts.
                PolicyKind::MultiFactor => false,
            }
    }

    /// Adds to the queue. When the current order is provably sorted the
    /// request is binary-inserted at the position a full re-sort would
    /// give it (the comparator is a total order, so the sorted permutation
    /// is unique); otherwise it is appended and the next round sorts.
    fn queue_push(&mut self, request: TaskRequest) {
        self.queue_members.insert(request.id);
        let pos = if self.queue_order_valid() {
            self.quota.usage_by_group_into(&mut self.scratch_usage);
            let ctx = PolicyContext {
                group_gpu_usage: &self.scratch_usage,
                group_usage_vec: &self.group_usage_vec,
                group_quota: self.quota.quotas(),
                capacity: self.sorted_capacity,
            };
            let policy = self.config.policy;
            // `now`/`queue_len` feed only MultiFactor scores, which never
            // take this path.
            let pos = self
                .queue
                .partition_point(|e| compare(policy, 0.0, 0, e, &request, &ctx).is_lt());
            self.queue.insert(pos, request);
            pos
        } else {
            self.queue.push(request);
            self.queue_dirty = true;
            self.queue.len() - 1
        };
        if self.walk_active {
            // A mid-walk insertion (a re-queued reclaim victim): invisible
            // to the current walk, exactly as it was absent from the old
            // per-round snapshot. Landing at or before the cursor shifts
            // the unexamined region right by one.
            if pos <= self.walk_cursor {
                self.walk_cursor += 1;
            }
            self.walk_inserted.push(request.id);
        }
    }

    /// Removes a queued task by id (user cancel: no request to compare
    /// against, so this scans). An in-place removal preserves whatever
    /// order the queue had. Returns `false` if the id is not queued.
    fn queue_remove(&mut self, id: JobId) -> bool {
        debug_assert!(!self.walk_active, "cancel during a scheduling round");
        if !self.queue_members.remove(&id) {
            return false;
        }
        if let Some(pos) = self.queue.iter().position(|r| r.id == id) {
            self.queue.remove(pos);
        }
        true
    }

    /// Removes a task we hold the full request for (a placement commit).
    /// While the sorted order is provable the position comes from a binary
    /// search; otherwise from a scan. Both paths remove in place — the
    /// in-place round walk depends on the relative order of the remaining
    /// entries surviving a removal.
    fn queue_remove_request(&mut self, request: &TaskRequest) {
        if !self.queue_members.remove(&request.id) {
            return;
        }
        let mut removed = None;
        if self.queue_order_valid() {
            self.quota.usage_by_group_into(&mut self.scratch_usage);
            let ctx = PolicyContext {
                group_gpu_usage: &self.scratch_usage,
                group_usage_vec: &self.group_usage_vec,
                group_quota: self.quota.quotas(),
                capacity: self.sorted_capacity,
            };
            let policy = self.config.policy;
            let pos = self
                .queue
                .partition_point(|e| compare(policy, 0.0, 0, e, request, &ctx).is_lt());
            if self.queue.get(pos).map(|r| r.id) == Some(request.id) {
                self.queue.remove(pos);
                removed = Some(pos);
            } else {
                // The comparator did not land on the entry — the sorted-
                // order invariant must have been broken. Recover below.
                debug_assert!(false, "binary removal missed {}", request.id);
            }
        }
        if removed.is_none() {
            if let Some(pos) = self.queue.iter().position(|r| r.id == request.id) {
                self.queue.remove(pos);
                self.queue_dirty = true;
                removed = Some(pos);
            }
        }
        if self.walk_active {
            if let Some(pos) = removed {
                match pos.cmp(&self.walk_cursor) {
                    std::cmp::Ordering::Less => self.walk_cursor -= 1,
                    std::cmp::Ordering::Equal => self.walk_removed_current = true,
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
    }

    /// The decision trace: recent [`RoundTrace`](tacc_obs::RoundTrace)s plus the latest skip
    /// reason per still-waiting job ("why is my job not running").
    pub fn decision_trace(&self) -> &DecisionTraceLog {
        &self.trace
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Tasks currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tasks currently running.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Iterates over running tasks.
    pub fn running(&self) -> impl Iterator<Item = &RunningTask> {
        self.running.values()
    }

    /// Looks up a running task.
    pub fn running_task(&self, id: JobId) -> Option<&RunningTask> {
        self.running.get(&id)
    }

    /// Total backfilled starts so far.
    pub fn backfill_starts(&self) -> u64 {
        self.backfill_starts
    }

    /// Total preemptions so far.
    pub fn preemption_count(&self) -> u64 {
        self.preemptions
    }

    /// Scheduling rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Read access to the quota table (experiment reporting).
    pub fn quota_table(&self) -> &QuotaTable {
        &self.quota
    }

    /// Whether `request` could **ever** be admitted under this scheduler's
    /// quota configuration, regardless of current usage. Platforms use this
    /// for admission control: a guaranteed request larger than its group's
    /// whole quota would otherwise queue forever.
    pub fn admissible_ever(&self, request: &TaskRequest) -> bool {
        let quota = self.quota.quota(request.group);
        match self.config.quota {
            QuotaMode::Disabled => true,
            QuotaMode::Static => request.total_gpus() <= quota,
            QuotaMode::Borrowing => {
                request.qos != QosClass::Guaranteed || request.total_gpus() <= quota
            }
        }
    }

    /// Adds a task to the queue.
    ///
    /// # Panics
    ///
    /// Panics if the task's group is outside the configured `group_count`,
    /// or a task with the same id is already queued or running.
    pub fn submit(&mut self, request: TaskRequest) {
        assert!(
            request.group.index() < self.config.group_count,
            "group {} outside configured group_count {}",
            request.group,
            self.config.group_count
        );
        assert!(
            !self.running.contains_key(&request.id) && !self.queue_members.contains(&request.id),
            "duplicate submission of {}",
            request.id
        );
        self.queue_push(request);
    }

    /// Removes a queued task. Returns `true` if it was found (running tasks
    /// are not cancelled here — stop them via the platform, then call
    /// [`Scheduler::task_finished`]).
    pub fn cancel(&mut self, id: JobId) -> bool {
        let found = self.queue_remove(id);
        if found {
            // Scrub the walk ledger so a future resubmission of this id is
            // always re-traced (its trace record was just forgotten).
            if let Some(entry) = self.scratch_verdicts.iter_mut().find(|e| e.0 == id) {
                entry.1 = SkipVerdict::Started;
            }
            self.trace.forget_job(id);
        }
        found
    }

    /// Reports that a running task finished (completed, failed or was
    /// cancelled): releases its lease and quota charge.
    ///
    /// Returns the task's record, or `None` if it was not running.
    pub fn task_finished(&mut self, id: JobId, cluster: &mut Cluster) -> Option<RunningTask> {
        let task = self.running.remove(&id)?;
        let pre_version = cluster.version();
        cluster
            .release(task.lease_id)
            .expect("running task holds a valid lease");
        // Keep the temporal planner synced incrementally: when it mirrored
        // the pre-release cluster state, a slot-level release carries it to
        // the post-release version without a rebuild.
        if self.timeline_version == Some(pre_version) {
            self.timeline_version = if self.timeline.release(id, &mut self.counters.slots) {
                Some(cluster.version())
            } else {
                None
            };
        }
        self.quota.release(&task.request);
        self.group_usage_vec[task.request.group.index()] -= task.request.total_resources();
        self.usage_epoch += 1;
        self.trace.forget_job(id);
        Some(task)
    }

    /// Test-only fault injection for the differential red-flip suite:
    /// shifts every temporal-planner claim boundary by `skew_secs`,
    /// simulating an off-by-one interval-boundary bug in the slot-split
    /// logic. With any non-zero skew, reservation shadows move and the
    /// backfill decisions diverge from [`ReferenceScheduler`](crate::reference::ReferenceScheduler)
    /// — the differential suite proves it would catch such a bug.
    #[doc(hidden)]
    pub fn debug_set_boundary_skew(&mut self, skew_secs: f64) {
        self.boundary_skew_secs = skew_secs;
        // Force the next probe to rebuild under the new (skewed) geometry.
        self.timeline_version = None;
    }
}
