//! Ratchet assertions on the committed panic-surface baseline: the core
//! lifecycle refactor must *shrink* the core layer's panic budget, not
//! merely shuffle it between files. CI runs this test, so re-blessing
//! the baseline upward for `crates/core` fails the build.

use tacc_lint::baseline;

const COMMITTED: &str = include_str!("../../../lint-baseline.json");

/// Budget of the pre-refactor monolithic `core/src/platform.rs` — the
/// ceiling the split must stay strictly under.
const PRE_REFACTOR_CORE_BUDGET: u64 = 8;

/// Ceiling after the tacc-lint v2 typed-error conversion: the lifecycle
/// engine reports `LifecycleError::UnknownJob` instead of panicking, so
/// the whole core crate is down to two invariant `expect`s (accounting
/// and admission), and re-blessing upward fails here.
const POST_TYPED_ERROR_CORE_BUDGET: u64 = 2;

#[test]
fn core_panic_budget_shrank_with_the_lifecycle_split() {
    let parsed = baseline::parse(COMMITTED).expect("committed baseline parses");
    let core_total: u64 = parsed
        .panic_surface
        .iter()
        .filter(|(file, _)| file.starts_with("crates/core/src/"))
        .map(|(_, budget)| budget)
        .sum();
    assert!(
        core_total < PRE_REFACTOR_CORE_BUDGET,
        "core panic-surface budget must stay strictly below the \
         pre-refactor {PRE_REFACTOR_CORE_BUDGET}, got {core_total}"
    );
    assert!(
        core_total <= POST_TYPED_ERROR_CORE_BUDGET,
        "core panic-surface budget must stay at or below the \
         post-typed-error {POST_TYPED_ERROR_CORE_BUDGET}, got {core_total}"
    );
    // The event-loop orchestrator itself carries no panic budget at all:
    // every invariant `expect` lives in a named lifecycle module.
    assert_eq!(
        parsed.panic_surface.get("crates/core/src/platform.rs"),
        None,
        "platform.rs must keep a zero panic budget"
    );
    // The lifecycle engine's job-table lookups now return typed errors:
    // the module the single-writer rules center on carries no panic
    // budget at all, so the reachability roots replay panic-free.
    assert_eq!(
        parsed.panic_surface.get("crates/core/src/lifecycle.rs"),
        None,
        "lifecycle.rs must keep a zero panic budget"
    );
}

/// Workspace-wide ratchet: reachability-scoped budgeting (tacc-lint v2)
/// brought the committed baseline from 69 sites down to 53; it must
/// never be re-blessed back up.
#[test]
fn workspace_panic_budget_stays_at_or_below_the_v2_bless() {
    let parsed = baseline::parse(COMMITTED).expect("committed baseline parses");
    let total: u64 = parsed.panic_surface.values().sum();
    assert!(total <= 53, "workspace panic budget grew to {total}");
}

#[test]
fn scheduler_split_did_not_grow_the_sched_budget() {
    let parsed = baseline::parse(COMMITTED).expect("committed baseline parses");
    let sched_total: u64 = parsed
        .panic_surface
        .iter()
        .filter(|(file, _)| file.starts_with("crates/sched/src/scheduler"))
        .map(|(_, budget)| budget)
        .sum();
    // 6 sites in the monolith before the split; relocation is fine,
    // growth is not.
    assert!(sched_total <= 6, "scheduler budget grew to {sched_total}");
}
