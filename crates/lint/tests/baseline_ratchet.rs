//! Ratchet assertions on the committed panic-surface baseline: the core
//! lifecycle refactor must *shrink* the core layer's panic budget, not
//! merely shuffle it between files. CI runs this test, so re-blessing
//! the baseline upward for `crates/core` fails the build.

use tacc_lint::baseline;

const COMMITTED: &str = include_str!("../../../lint-baseline.json");

/// Budget of the pre-refactor monolithic `core/src/platform.rs` — the
/// ceiling the split must stay strictly under.
const PRE_REFACTOR_CORE_BUDGET: u64 = 8;

#[test]
fn core_panic_budget_shrank_with_the_lifecycle_split() {
    let parsed = baseline::parse(COMMITTED).expect("committed baseline parses");
    let core_total: u64 = parsed
        .panic_surface
        .iter()
        .filter(|(file, _)| file.starts_with("crates/core/src/"))
        .map(|(_, budget)| budget)
        .sum();
    assert!(
        core_total < PRE_REFACTOR_CORE_BUDGET,
        "core panic-surface budget must stay strictly below the \
         pre-refactor {PRE_REFACTOR_CORE_BUDGET}, got {core_total}"
    );
    // The event-loop orchestrator itself carries no panic budget at all:
    // every invariant `expect` lives in a named lifecycle module.
    assert_eq!(
        parsed.panic_surface.get("crates/core/src/platform.rs"),
        None,
        "platform.rs must keep a zero panic budget"
    );
}

#[test]
fn scheduler_split_did_not_grow_the_sched_budget() {
    let parsed = baseline::parse(COMMITTED).expect("committed baseline parses");
    let sched_total: u64 = parsed
        .panic_surface
        .iter()
        .filter(|(file, _)| file.starts_with("crates/sched/src/scheduler"))
        .map(|(_, budget)| budget)
        .sum();
    // 6 sites in the monolith before the split; relocation is fine,
    // growth is not.
    assert!(sched_total <= 6, "scheduler budget grew to {sched_total}");
}
