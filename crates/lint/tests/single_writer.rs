//! Successor to the retired grep-based `crates/core/tests/state_write_sites.rs`:
//! the single-writer guarantee ("only the lifecycle engine mutates job
//! state") is now enforced by the `single-writer` lint family driven by
//! `lint-owners.toml`. This red-flip harness seeds the exact bug the old
//! grep test hunted — a rogue `job.state = …` assignment and a rogue
//! `job.apply_event(…)` call outside the owning modules, using the
//! repo's real owner rules — and proves `lint --check` flips red with
//! the correct `file:line` for each.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The repo's production rules, verbatim in shape: raw `state` writes
/// belong to the workload transition engine, `apply_event` calls to the
/// core lifecycle module.
const REPO_STYLE_OWNERS: &str = "\
[[owner]]
name = \"job-state-field\"
fields = [\"state\"]
writers = [\"crates/workload/src/job.rs\"]
why = \"raw `state` assignment exists only inside the checked transition engine\"

[[owner]]
name = \"job-state-transition\"
methods = [\"apply_event\"]
writers = [\"crates/core/src/lifecycle.rs\"]
why = \"Platform::apply_lifecycle_event is the single production caller\"
";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tacc-lint-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn write(path: &Path, content: &str) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("mkdir");
    }
    fs::write(path, content).expect("write fixture");
}

fn run_lint(root: &Path, json: &Path) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root"])
        .arg(root)
        .args(["--check", "--quiet", "--json"])
        .arg(json)
        .status()
        .expect("spawn lint binary")
}

fn seed_workspace(root: &Path) {
    write(&root.join("lint-owners.toml"), REPO_STYLE_OWNERS);
    write(
        &root.join("crates/workload/Cargo.toml"),
        "[package]\nname = \"tacc-workload\"\n",
    );
    // The legitimate owner: the transition engine assigns `state` and is
    // the method's home.
    write(
        &root.join("crates/workload/src/job.rs"),
        "impl Job {\n\
         \x20   pub fn apply_event(&mut self, to: JobState) -> JobState {\n\
         \x20       self.state = to;\n\
         \x20       to\n\
         \x20   }\n\
         }\n",
    );
    write(
        &root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"tacc-core\"\n\n[dependencies]\ntacc-workload.workspace = true\n",
    );
    // The legitimate caller: the lifecycle engine routes events through
    // the checked transition API.
    write(
        &root.join("crates/core/src/lifecycle.rs"),
        "pub fn apply(job: &mut Job, to: JobState) -> JobState {\n\
         \x20   job.apply_event(to)\n\
         }\n",
    );
}

/// A clean tree — both writes inside their owning modules — passes.
#[test]
fn owning_modules_writes_are_green() {
    let root = scratch("sw-green");
    seed_workspace(&root);
    let json_path = root.join("report.json");
    assert!(
        run_lint(&root, &json_path).success(),
        "owner-module writes must pass --check"
    );
    fs::remove_dir_all(&root).expect("cleanup");
}

/// The seeded bug: a scheduler-side module assigns `job.state` directly
/// and replays an event itself. Both rogue sites flip `--check` red,
/// each located at its exact `file:line`.
#[test]
fn rogue_state_write_and_apply_event_call_flip_red() {
    let root = scratch("sw-red");
    seed_workspace(&root);
    write(
        &root.join("crates/core/src/rogue.rs"),
        "pub fn shortcut(job: &mut Job) {\n\
         \x20   job.state = JobState::Running;\n\
         }\n\
         pub fn replay(job: &mut Job) {\n\
         \x20   job.apply_event(JobState::Failed);\n\
         }\n",
    );

    let json_path = root.join("report.json");
    let status = run_lint(&root, &json_path);
    assert!(!status.success(), "rogue writes must fail --check");
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    for line in [2, 5] {
        let needle = format!(
            "{{\"lint\": \"single-writer\", \"file\": \"crates/core/src/rogue.rs\", \"line\": {line},"
        );
        assert!(
            json.contains(&needle),
            "single-writer must locate the rogue site at rogue.rs:{line}\n{json}"
        );
    }
    // The owners' own writes stay unflagged even while the tree is red.
    assert!(!json.contains("\"file\": \"crates/workload/src/job.rs\""));
    assert!(!json.contains("\"file\": \"crates/core/src/lifecycle.rs\""));

    fs::remove_dir_all(&root).expect("cleanup");
}

/// The arena rules added with the million-job scale pass: lease-arena
/// mutators (`insert_with`, `note_free_change`) belong to the cluster
/// allocator, and job-slot run-state fields (`last_nodes`, `token`)
/// to the lifecycle engine. A rogue call and a rogue field write flip
/// red at their exact lines; the owners' own sites stay green.
#[test]
fn rogue_arena_mutations_flip_red() {
    let root = scratch("sw-arena");
    write(
        &root.join("lint-owners.toml"),
        "[[owner]]\n\
         name = \"lease-arena-mutation\"\n\
         methods = [\"insert_with\", \"note_free_change\"]\n\
         writers = [\"crates/cluster/src/allocator.rs\"]\n\
         why = \"arena slots and the free-capacity index move together\"\n\
         \n\
         [[owner]]\n\
         name = \"job-arena-run-state\"\n\
         fields = [\"last_nodes\", \"token\"]\n\
         writers = [\"crates/core/src/lifecycle.rs\"]\n\
         why = \"run state is written only by the lifecycle engine\"\n",
    );
    write(
        &root.join("crates/cluster/Cargo.toml"),
        "[package]\nname = \"tacc-cluster\"\n",
    );
    // The owner: grants run through the arena and renotify the index.
    write(
        &root.join("crates/cluster/src/allocator.rs"),
        "impl Cluster {\n\
         \x20   fn grant(&mut self, lease: Lease) -> LeaseId {\n\
         \x20       let id = self.arena.insert_with(|_| lease);\n\
         \x20       self.note_free_change(0, old, new);\n\
         \x20       id\n\
         \x20   }\n\
         }\n",
    );
    write(
        &root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"tacc-core\"\n\n[dependencies]\ntacc-cluster.workspace = true\n",
    );
    write(
        &root.join("crates/core/src/lifecycle.rs"),
        "pub fn started(slot: &mut JobSlot, nodes: Vec<NodeId>) {\n\
         \x20   slot.last_nodes = nodes;\n\
         \x20   slot.token += 1;\n\
         }\n",
    );

    let json_path = root.join("report.json");
    assert!(
        run_lint(&root, &json_path).success(),
        "owner-module arena mutations must pass --check"
    );

    // Rogue sites: a fault handler forging a lease outside the allocator
    // and a status module bumping a liveness token.
    write(
        &root.join("crates/core/src/rogue.rs"),
        "pub fn forge(c: &mut Cluster, lease: Lease) {\n\
         \x20   c.arena.insert_with(|_| lease);\n\
         }\n\
         pub fn stomp(slot: &mut JobSlot) {\n\
         \x20   slot.token += 1;\n\
         }\n",
    );
    let status = run_lint(&root, &json_path);
    assert!(!status.success(), "rogue arena mutations must fail --check");
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    for line in [2, 5] {
        let needle = format!(
            "{{\"lint\": \"single-writer\", \"file\": \"crates/core/src/rogue.rs\", \"line\": {line},"
        );
        assert!(
            json.contains(&needle),
            "single-writer must locate the rogue arena site at rogue.rs:{line}\n{json}"
        );
    }
    assert!(!json.contains("\"file\": \"crates/cluster/src/allocator.rs\""));
    assert!(!json.contains("\"file\": \"crates/core/src/lifecycle.rs\""));

    fs::remove_dir_all(&root).expect("cleanup");
}

/// A reasoned inline allow suppresses a single rogue site — visible in
/// the report's suppression list, not fatal.
#[test]
fn reasoned_allow_suppresses_a_rogue_write() {
    let root = scratch("sw-allow");
    seed_workspace(&root);
    write(
        &root.join("crates/core/src/migration.rs"),
        "pub fn backfill(job: &mut Job) {\n\
         \x20   // tacc-lint: allow(single-writer, reason = \"one-shot trace-import backfill\")\n\
         \x20   job.state = JobState::Completed;\n\
         }\n",
    );

    let json_path = root.join("report.json");
    assert!(
        run_lint(&root, &json_path).success(),
        "a reasoned allow must keep --check green"
    );
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    assert!(
        json.contains("\"reason\": \"one-shot trace-import backfill\""),
        "the suppression must be visible in the report\n{json}"
    );
    fs::remove_dir_all(&root).expect("cleanup");
}
