//! Red-flip proof: seed one violation of each lint family into a
//! scratch workspace and assert the `lint` binary fails `--check` with
//! the correct `file:line` in its JSON report — i.e. every family
//! actually gates CI. A companion green run proves a clean tree passes.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tacc-lint-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn write(path: &Path, content: &str) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("mkdir");
    }
    fs::write(path, content).expect("write fixture");
}

fn run_lint(root: &Path, json: &Path) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(["--root"])
        .arg(root)
        .args(["--check", "--quiet", "--json"])
        .arg(json)
        .status()
        .expect("spawn lint binary")
}

#[test]
fn one_violation_of_each_family_flips_check_red() {
    let root = scratch("red");
    // `tacc-core` must not depend upward on `tacc-tcloud` (layer-dag,
    // manifest line 5).
    write(
        &root.join("crates/alpha/Cargo.toml"),
        "[package]\nname = \"tacc-core\"\n\n[dependencies]\ntacc-tcloud.workspace = true\n",
    );
    // One violation per family, one per line, lines 1-8 (metric-name is
    // seeded twice: the call-literal form and the const-declaration form).
    // Line 7 seeds a concurrency primitive in a deterministic-layer crate
    // (`tacc-core`); line 8 a bare `_` arm over a lifecycle enum.
    write(
        &root.join("crates/alpha/src/lib.rs"),
        "use std::collections::HashMap;\n\
         fn clock() -> std::time::Instant { std::time::Instant::now() }\n\
         fn roll() -> u8 { thread_rng().gen() }\n\
         fn risky(o: Option<u8>) -> u8 { o.unwrap() }\n\
         fn register(r: &Registry) { r.counter(\"bad_metric\", &[]); }\n\
         pub const GOODPUT_METRIC: &str = \"tacc_obs_BadName\";\n\
         fn guard(_m: &std::sync::Mutex<u8>) {}\n\
         fn wild(s: JobState) -> u8 { match s { JobState::Queued => 1, _ => 0 } }\n",
    );

    let json_path = root.join("report.json");
    let status = run_lint(&root, &json_path);
    assert!(
        !status.success(),
        "--check must exit nonzero on a tree with violations"
    );
    let json = fs::read_to_string(&json_path).expect("JSON report written");

    let expected = [
        ("hash-iter", "crates/alpha/src/lib.rs", 1),
        ("wall-clock", "crates/alpha/src/lib.rs", 2),
        ("ambient-rng", "crates/alpha/src/lib.rs", 3),
        ("panic-surface", "crates/alpha/src/lib.rs", 4),
        ("metric-name", "crates/alpha/src/lib.rs", 5),
        ("metric-name", "crates/alpha/src/lib.rs", 6),
        ("concurrency", "crates/alpha/src/lib.rs", 7),
        ("match-wildcard", "crates/alpha/src/lib.rs", 8),
        ("layer-dag", "crates/alpha/Cargo.toml", 5),
    ];
    for (lint, file, line) in expected {
        let needle = format!("{{\"lint\": \"{lint}\", \"file\": \"{file}\", \"line\": {line},");
        assert!(
            json.contains(&needle),
            "JSON report must locate the {lint} violation at {file}:{line}\n{json}"
        );
    }

    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn clean_tree_passes_and_reasoned_allows_are_reported_not_fatal() {
    let root = scratch("green");
    write(
        &root.join("crates/beta/Cargo.toml"),
        "[package]\nname = \"tacc-sched\"\n\n[dependencies]\ntacc-cluster.workspace = true\n",
    );
    write(
        &root.join("crates/beta/src/lib.rs"),
        "// tacc-lint: allow(wall-clock, reason = \"round-latency measurement only\")\n\
         fn measure() -> std::time::Instant { std::time::Instant::now() }\n\
         fn register(r: &Registry) { r.counter(\"tacc_sched_rounds_total\", &[]); }\n\
         pub const DEPTH_METRIC: &str = \"tacc_sched_queue_depth\";\n",
    );

    let json_path = root.join("report.json");
    let status = run_lint(&root, &json_path);
    assert!(status.success(), "a clean tree must pass --check");
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    assert!(json.contains("\"findings\": [],"));
    assert!(
        json.contains("\"reason\": \"round-latency measurement only\""),
        "suppressions must be visible in the report\n{json}"
    );

    fs::remove_dir_all(&root).expect("cleanup");
}

/// Single-writer ownership (`lint-owners.toml` `[[owner]]` rules): a
/// mutation of an owned target outside the owning module flips red with
/// the exact `file:line`; the same write inside the owner stays green.
#[test]
fn single_writer_violation_flips_red_owner_write_stays_green() {
    let root = scratch("owner");
    write(
        &root.join("lint-owners.toml"),
        "[[owner]]\n\
         name = \"job-state-field\"\n\
         fields = [\"state\"]\n\
         writers = [\"crates/delta/src/owner.rs\"]\n\
         why = \"red-flip fixture\"\n",
    );
    write(
        &root.join("crates/delta/Cargo.toml"),
        "[package]\nname = \"tacc-obs\"\n",
    );
    write(
        &root.join("crates/delta/src/owner.rs"),
        "pub fn set(job: &mut Job) { job.state = JobState::Running; }\n",
    );
    write(
        &root.join("crates/delta/src/rogue.rs"),
        "pub fn poke(job: &mut Job) { job.state = JobState::Failed; }\n",
    );

    let json_path = root.join("report.json");
    let status = run_lint(&root, &json_path);
    assert!(!status.success(), "rogue write must fail --check");
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    let needle =
        "{\"lint\": \"single-writer\", \"file\": \"crates/delta/src/rogue.rs\", \"line\": 1,";
    assert!(
        json.contains(needle),
        "single-writer must locate the rogue write\n{json}"
    );
    assert!(
        !json.contains("\"file\": \"crates/delta/src/owner.rs\""),
        "the owning module's own write must not be flagged\n{json}"
    );

    // Delete the rogue file: the owner's write alone is green.
    fs::remove_file(root.join("crates/delta/src/rogue.rs")).expect("rm rogue");
    assert!(run_lint(&root, &json_path).success());

    fs::remove_dir_all(&root).expect("cleanup");
}

/// Panic reachability (`[reachability] roots`): a panic site inside a
/// function reachable from a root consumes budget and flips red; a site
/// in dead code is skipped (counted in `panic_sites_skipped`).
#[test]
fn reachable_panic_flips_red_unreachable_is_skipped() {
    let root = scratch("reach");
    write(
        &root.join("lint-owners.toml"),
        "[reachability]\nroots = [\"gamma::entry\"]\n",
    );
    write(
        &root.join("crates/gamma/Cargo.toml"),
        "[package]\nname = \"tacc-gamma\"\n",
    );
    write(
        &root.join("crates/gamma/src/lib.rs"),
        "pub fn entry(o: Option<u8>) -> u8 { helper(o) }\n\
         fn helper(o: Option<u8>) -> u8 { o.unwrap() }\n\
         fn dead() { panic!(\"never runs\") }\n",
    );

    let json_path = root.join("report.json");
    let status = run_lint(&root, &json_path);
    assert!(
        !status.success(),
        "a reachable panic site must fail --check"
    );
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    assert!(
        json.contains(
            "{\"lint\": \"panic-surface\", \"file\": \"crates/gamma/src/lib.rs\", \"line\": 2,"
        ),
        "the reachable unwrap must be budgeted\n{json}"
    );
    assert!(
        !json.contains("\"line\": 3,"),
        "the dead panic must be filtered by reachability\n{json}"
    );
    assert!(
        json.contains("\"panic_sites_skipped\": 1"),
        "the skipped site must be visible in the symbols stats\n{json}"
    );

    // Remove the reachable site: only dead code panics remain — green.
    write(
        &root.join("crates/gamma/src/lib.rs"),
        "pub fn entry(o: Option<u8>) -> u8 { helper(o) }\n\
         fn helper(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n\
         fn dead() { panic!(\"never runs\") }\n",
    );
    assert!(
        run_lint(&root, &json_path).success(),
        "unreachable panic sites alone must pass --check"
    );

    fs::remove_dir_all(&root).expect("cleanup");
}

/// Concurrency confinement after the service split: a rogue
/// `thread::spawn` in the deterministic core still flips red, while the
/// identical source under `taccd` — the one crate whose threads and
/// channels are load-bearing by design — passes clean.
#[test]
fn thread_spawn_in_core_flips_red_but_taccd_is_exempt_by_design() {
    let src = "use std::sync::{mpsc, Mutex};\n\
               pub fn serve() { std::thread::spawn(|| {}); }\n";

    let red = scratch("spawn-core");
    write(
        &red.join("crates/eps/Cargo.toml"),
        "[package]\nname = \"tacc-core\"\n",
    );
    write(&red.join("crates/eps/src/lib.rs"), src);
    let json_path = red.join("report.json");
    let status = run_lint(&red, &json_path);
    assert!(
        !status.success(),
        "thread::spawn in the deterministic core must fail --check"
    );
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    assert!(
        json.contains(
            "{\"lint\": \"concurrency\", \"file\": \"crates/eps/src/lib.rs\", \"line\": 2,"
        ),
        "the rogue spawn must be located\n{json}"
    );
    fs::remove_dir_all(&red).expect("cleanup");

    let green = scratch("spawn-taccd");
    write(
        &green.join("crates/zeta/Cargo.toml"),
        "[package]\nname = \"tacc-taccd\"\n\n[dependencies]\ntacc-core.workspace = true\n",
    );
    write(&green.join("crates/zeta/src/lib.rs"), src);
    let json_path = green.join("report.json");
    assert!(
        run_lint(&green, &json_path).success(),
        "taccd's threads and channels are exempt by design"
    );
    fs::remove_dir_all(&green).expect("cleanup");
}

#[test]
fn panic_budget_growth_flips_red_but_within_budget_passes() {
    let root = scratch("budget");
    write(
        &root.join("crates/gamma/Cargo.toml"),
        "[package]\nname = \"tacc-metrics\"\n",
    );
    write(
        &root.join("crates/gamma/src/lib.rs"),
        "fn a(o: Option<u8>) -> u8 { o.unwrap() }\n\
         fn b(o: Option<u8>) -> u8 { o.expect(\"b\") }\n",
    );
    // Budget of 2 covers the current sites: green.
    write(
        &root.join("lint-baseline.json"),
        "{\n  \"panic-surface\": {\n    \"crates/gamma/src/lib.rs\": 2\n  }\n}\n",
    );
    let json_path = root.join("report.json");
    assert!(run_lint(&root, &json_path).success());

    // A third site exceeds the budget: red.
    write(
        &root.join("crates/gamma/src/lib.rs"),
        "fn a(o: Option<u8>) -> u8 { o.unwrap() }\n\
         fn b(o: Option<u8>) -> u8 { o.expect(\"b\") }\n\
         fn c() { panic!(\"new\") }\n",
    );
    let status = run_lint(&root, &json_path);
    assert!(!status.success(), "baseline growth must fail --check");
    let json = fs::read_to_string(&json_path).expect("JSON report written");
    assert!(json.contains("exceed the committed baseline budget of 2"));

    fs::remove_dir_all(&root).expect("cleanup");
}
