//! Workspace symbol-graph coverage: the cross-crate call graph built
//! from the dep-free lexer is deterministic (two scans of the same tree
//! produce byte-identical dumps) and resolves the shapes that matter —
//! nested impls, generic functions, `cfg(test)` regions, and cross-crate
//! calls gated by the layer DAG.

use std::fs;
use std::path::{Path, PathBuf};

use tacc_lint::{run, Options};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tacc-lint-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn write(path: &Path, content: &str) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("mkdir");
    }
    fs::write(path, content).expect("write fixture");
}

/// Two crates joined by a DAG-legal edge (`core -> workload`), with a
/// generic fn, a nested impl, a test-only fn, and a bin target.
fn seed_workspace(root: &Path) {
    write(
        &root.join("crates/workload/Cargo.toml"),
        "[package]\nname = \"tacc-workload\"\n",
    );
    write(
        &root.join("crates/workload/src/lib.rs"),
        "pub struct Job;\n\
         impl Job {\n\
         \x20   pub fn advance(&mut self) { self.tick() }\n\
         \x20   fn tick(&mut self) {}\n\
         }\n\
         pub fn lookup<K: Ord, V>(map: &std::collections::BTreeMap<K, V>, k: &K) -> Option<&V> {\n\
         \x20   map.get(k)\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn advances() { super::Job.advance() }\n\
         }\n",
    );
    write(
        &root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"tacc-core\"\n\n[dependencies]\ntacc-workload.workspace = true\n",
    );
    write(
        &root.join("crates/core/src/lib.rs"),
        "pub fn drive(job: &mut Job) { Job::advance(job) }\n",
    );
    write(
        &root.join("crates/core/src/bin/drvcli.rs"),
        "fn main() { println!(\"cli\") }\n",
    );
}

#[test]
fn two_scans_produce_byte_identical_graph_dumps() {
    let root = scratch("graph-det");
    seed_workspace(&root);
    let opts = Options {
        dump_graph: true,
        ..Options::default()
    };
    let first = run(&root, &opts).expect("first scan");
    let second = run(&root, &opts).expect("second scan");
    let a = first.graph_dump.expect("dump requested");
    let b = second.graph_dump.expect("dump requested");
    assert_eq!(a, b, "graph dump must be byte-stable across scans");
    assert_eq!(first.symbols.fns, second.symbols.fns);
    assert_eq!(first.symbols.call_edges, second.symbols.call_edges);
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn graph_resolves_impls_generics_tests_and_cross_crate_calls() {
    let root = scratch("graph-shape");
    seed_workspace(&root);
    let opts = Options {
        dump_graph: true,
        ..Options::default()
    };
    let report = run(&root, &opts).expect("scan");
    let dump = report.graph_dump.expect("dump requested");

    // Impl methods carry their type, generics lose their params, test
    // fns and bin fns are marked with trailing flags.
    let fn_line = |path: &str| {
        dump.lines()
            .find(|l| l.starts_with("fn ") && l.contains(&format!(" {path} ")))
            .unwrap_or_else(|| panic!("{path} not in dump\n{dump}"))
    };
    fn_line("core::drive");
    fn_line("workload::Job::advance");
    fn_line("workload::lookup");
    assert!(
        fn_line("workload::advances").ends_with(" test"),
        "cfg(test) fn must carry the test flag\n{dump}"
    );
    assert!(
        fn_line("core::bin::drvcli::main").ends_with(" bin"),
        "bin target fn must carry the bin flag\n{dump}"
    );

    // Edges: same-impl method call and the qualified cross-crate call
    // resolve; test fns contribute no edges.
    assert!(
        dump.contains("edge workload::Job::advance -> workload::Job::tick"),
        "same-impl method call resolves\n{dump}"
    );
    assert!(
        dump.contains("edge core::drive -> workload::Job::advance"),
        "qualified cross-crate call resolves along the DAG edge\n{dump}"
    );
    assert!(
        !dump.contains("edge workload::advances -> "),
        "test fns contribute no edges\n{dump}"
    );
    fs::remove_dir_all(&root).expect("cleanup");
}
