//! Reachability over the workspace graph.
//!
//! The panic-surface ratchet only cares about panics that can fire
//! during a deterministic replay or a CI experiment run, not about
//! `expect`s buried in CLI plumbing or test scaffolding. Roots come from
//! `lint-owners.toml` (`[reachability] roots = [...]`) as path patterns
//! — `core::Platform::*` roots every `Platform` method, `bench::hotpath::*`
//! every function in the hot-path module — and a BFS over resolved call
//! edges marks everything transitively callable. Functions in test
//! regions and binary targets never root (bins are the CLI edge the
//! budget deliberately ignores).
//!
//! Panic sites whose innermost enclosing function is unreachable are
//! dropped before budgeting; a site outside any extracted function is
//! conservatively kept.

use crate::graph::{GraphFn, WorkspaceGraph};

/// Whether `f` matches a root pattern. A pattern is a `::`-path; a
/// trailing `::*` prefix-matches any of the function's candidate paths
/// (`crate::name`, `crate::Type::name`, `crate::module::name`,
/// `crate::module::Type::name`); without the star it must equal one
/// exactly.
pub fn matches_root(f: &GraphFn, pattern: &str) -> bool {
    let candidates = candidate_paths(f);
    if let Some(prefix) = pattern.strip_suffix("::*") {
        let with_sep = format!("{prefix}::");
        candidates.iter().any(|c| c.starts_with(&with_sep))
    } else {
        candidates.iter().any(|c| c == pattern)
    }
}

fn candidate_paths(f: &GraphFn) -> Vec<String> {
    let mut out = Vec::with_capacity(4);
    let push = |out: &mut Vec<String>, parts: &[&str]| {
        let parts: Vec<&str> = parts.iter().copied().filter(|p| !p.is_empty()).collect();
        let path = parts.join("::");
        if !out.contains(&path) {
            out.push(path);
        }
    };
    let ty = f.impl_type.as_deref().unwrap_or("");
    push(&mut out, &[&f.crate_name, &f.name]);
    push(&mut out, &[&f.crate_name, ty, &f.name]);
    push(&mut out, &[&f.crate_name, &f.module, &f.name]);
    push(&mut out, &[&f.crate_name, &f.module, ty, &f.name]);
    out
}

/// BFS from every root-matching, non-test, non-bin function. Returns one
/// flag per `graph.fns` entry.
pub fn compute(graph: &WorkspaceGraph, roots: &[String]) -> Vec<bool> {
    let n = graph.fns.len();
    let mut reachable = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.is_test && !f.is_bin && roots.iter().any(|r| matches_root(f, r)) {
            reachable[i] = true;
            queue.push(i as u32);
        }
    }
    // Adjacency from the sorted edge list via binary search on the
    // caller column.
    let adj_start = |caller: u32| graph.edges.partition_point(|&(a, _)| a < caller);
    while let Some(cur) = queue.pop() {
        let mut k = adj_start(cur);
        while k < graph.edges.len() && graph.edges[k].0 == cur {
            let callee = graph.edges[k].1 as usize;
            if !reachable[callee] {
                reachable[callee] = true;
                queue.push(callee as u32);
            }
            k += 1;
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, FileEntry};
    use crate::lexer::lex;
    use crate::symbols::extract;

    fn entry(crate_name: &str, rel_path: &str, src: &str) -> FileEntry {
        let lexed = lex(src);
        let ranges = crate::lints::test_ranges(&lexed.tokens);
        FileEntry {
            crate_name: crate_name.to_owned(),
            rel_path: rel_path.to_owned(),
            bin: false,
            symbols: extract(&lexed.tokens, &ranges),
        }
    }

    #[test]
    fn star_pattern_roots_impl_methods() {
        let g = build(
            &[entry(
                "core",
                "crates/core/src/platform.rs",
                "pub struct Platform;\n\
                 impl Platform {\n\
                 pub fn step(&mut self) { helper(); }\n\
                 }\n\
                 fn helper() { leaf(); }\n\
                 fn leaf() {}\n\
                 fn orphan() {}\n",
            )],
            &|_, _| true,
        );
        let reach = compute(&g, &["core::Platform::*".to_owned()]);
        let flag = |name: &str| {
            let i = g.fns.iter().position(|f| f.name == name).expect(name);
            reach[i]
        };
        assert!(flag("step"));
        assert!(flag("helper"));
        assert!(flag("leaf"));
        assert!(!flag("orphan"));
    }

    #[test]
    fn exact_pattern_and_module_candidates() {
        let g = build(
            &[entry(
                "bench",
                "crates/bench/src/registry.rs",
                "pub fn all() { f01(); }\nfn f01() {}\n",
            )],
            &|_, _| true,
        );
        let by_exact = compute(&g, &["bench::registry::all".to_owned()]);
        assert_eq!(by_exact, vec![true, true]);
        let by_star = compute(&g, &["bench::registry::*".to_owned()]);
        assert_eq!(by_star, vec![true, true]);
        let miss = compute(&g, &["bench::other::*".to_owned()]);
        assert_eq!(miss, vec![false, false]);
    }
}
