//! Finding types plus deterministic text and JSON rendering.
//!
//! The JSON writer follows the same contract as `tacc-bench`'s golden
//! serializer: insertion-ordered keys, byte-stable output for identical
//! findings, trailing newline — so a CI artifact diff is always a real
//! behavior change, never formatting noise.

use std::fmt::Write as _;

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable lint family name (`hash-iter`, `wall-clock`, …).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// A finding silenced by a well-formed `tacc-lint: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The justification from the allow comment.
    pub reason: String,
}

/// The full scan outcome.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Hard findings, sorted by (file, line, lint, message).
    pub findings: Vec<Finding>,
    /// Suppressed findings with their reasons, same order.
    pub suppressed: Vec<Suppressed>,
    /// Baseline entries whose budget exceeds the current count:
    /// `(file, found, budget)` — an invitation to re-bless tighter.
    pub baseline_shrunk: Vec<(String, u64, u64)>,
    /// Fresh baseline content when blessing was requested.
    pub blessed_baseline: Option<String>,
}

impl Report {
    /// True when the workspace passes (no hard findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
        }
        for (file, found, budget) in &self.baseline_shrunk {
            let _ = writeln!(
                out,
                "note: {file}: panic-surface count {found} is below the baseline budget \
                 {budget} — run with --bless-baseline to ratchet down"
            );
        }
        let _ = writeln!(
            out,
            "tacc-lint: {} file(s) scanned, {} finding(s), {} suppression(s)",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len()
        );
        out
    }

    /// Renders the byte-stable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);

        out.push_str("  \"findings\": [");
        write_findings(&mut out, self.findings.iter().map(|f| (f, None)));
        out.push_str("],\n");

        out.push_str("  \"suppressed\": [");
        write_findings(
            &mut out,
            self.suppressed
                .iter()
                .map(|s| (&s.finding, Some(s.reason.as_str()))),
        );
        out.push_str("],\n");

        out.push_str("  \"summary\": {");
        let mut first = true;
        for lint in crate::lints::ALL_LINTS {
            let n = self
                .findings
                .iter()
                .filter(|f| f.lint == lint.name())
                .count();
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {n}", lint.name());
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn write_findings<'a>(
    out: &mut String,
    items: impl Iterator<Item = (&'a Finding, Option<&'a str>)>,
) {
    let mut any = false;
    let mut it = items.peekable();
    while let Some((f, reason)) = it.next() {
        any = true;
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}",
            json_str(f.lint),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        );
        if let Some(reason) = reason {
            let _ = write!(out, ", \"reason\": {}", json_str(reason));
        }
        out.push('}');
        if it.peek().is_some() {
            out.push(',');
        }
    }
    if any {
        out.push_str("\n  ");
    }
}

/// Escapes a string as a JSON literal (same escape set as the bench
/// golden serializer).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            findings: vec![Finding {
                file: "crates/core/src/lib.rs".into(),
                line: 7,
                lint: "hash-iter",
                message: "HashMap in simulation-path crate".into(),
            }],
            suppressed: vec![Suppressed {
                finding: Finding {
                    file: "crates/sched/src/scheduler.rs".into(),
                    line: 200,
                    lint: "wall-clock",
                    message: "Instant::now()".into(),
                },
                reason: "measurement-only".into(),
            }],
            baseline_shrunk: Vec::new(),
            blessed_baseline: None,
        }
    }

    #[test]
    fn json_is_byte_stable_and_shaped() {
        let r = sample();
        let a = r.to_json();
        assert_eq!(a, r.to_json());
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"lint\": \"hash-iter\""));
        assert!(a.contains("\"line\": 7"));
        assert!(a.contains("\"reason\": \"measurement-only\""));
        assert!(a.contains("\"hash-iter\": 1"));
        assert!(a.contains("\"wall-clock\": 0"));
    }

    #[test]
    fn text_report_lists_findings_and_counts() {
        let text = sample().to_text();
        assert!(text.contains("crates/core/src/lib.rs:7: [hash-iter]"));
        assert!(text.contains("2 file(s) scanned, 1 finding(s), 1 suppression(s)"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
